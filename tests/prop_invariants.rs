//! Property-based tests (proptest) over randomly generated weighted graphs.
//!
//! These exercise the invariants that the paper's correctness rests on:
//!
//! * Δ-stepping and Bellman-Ford agree with Dijkstra for every `Δ`;
//! * `CLUSTER` produces a partition whose recorded distances upper-bound the
//!   true distances to the centers;
//! * the quotient-based estimate `Φ(G_C) + 2R` never underestimates the true
//!   diameter;
//! * the graph builder and the MR primitives behave like their sequential
//!   specifications.

use proptest::prelude::*;

use cldiam::prelude::*;
use cldiam::sssp::{bellman_ford, exact_diameter};
use cldiam_core::cluster;
use cldiam_mr::{primitives, MrConfig, MrEngine};

/// Strategy: a connected-ish random weighted graph with `n` in 2..=24 nodes.
/// A spanning path guarantees connectivity so diameters are finite.
///
/// The `extra_edges` generator deliberately over-draws (endpoints in
/// `0..2n`, self-loops allowed) and the strategy sanitizes before
/// `GraphBuilder::add_edge`: endpoints are wrapped into `0..n` (modulo, which
/// stays uniform — a min-clamp would pile half of all draws onto node `n-1`)
/// so a stray id can never silently grow the node set (which would break the
/// spanning-path connectivity guarantee), and self-loops — drawn or produced
/// by wrapping — are skipped rather than relying on the builder to drop them.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24).prop_flat_map(|n| {
        let path_weights = proptest::collection::vec(1u32..=50, n - 1);
        let extra_edges =
            proptest::collection::vec((0..2 * n as u32, 0..2 * n as u32, 1u32..=50), 0..(2 * n));
        (path_weights, extra_edges).prop_map(move |(pw, extra)| {
            let mut builder = GraphBuilder::new(n);
            for (i, w) in pw.iter().enumerate() {
                builder.add_edge(i as u32, (i + 1) as u32, *w);
            }
            let wrap = |x: u32| x % n as u32;
            for (u, v, w) in extra {
                let (u, v) = (wrap(u), wrap(v));
                if u != v {
                    builder.add_edge(u, v, w);
                }
            }
            builder.build()
        })
    })
}

// 64 cases per property keeps the whole suite well under a minute (it runs in
// seconds) while still covering every `n` in the strategy's range many times.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_stepping_agrees_with_dijkstra(graph in arbitrary_graph(), delta in 1u32..200, source_sel in 0usize..24) {
        let source = (source_sel % graph.num_nodes()) as u32;
        let expected = dijkstra(&graph, source);
        let outcome = delta_stepping(&graph, source, delta, None);
        prop_assert_eq!(outcome.dist, expected.dist);
    }

    #[test]
    fn bellman_ford_agrees_with_dijkstra(graph in arbitrary_graph(), source_sel in 0usize..24) {
        let source = (source_sel % graph.num_nodes()) as u32;
        prop_assert_eq!(bellman_ford(&graph, source).dist, dijkstra(&graph, source).dist);
    }

    #[test]
    fn clustering_is_a_valid_partition_with_distance_upper_bounds(
        graph in arbitrary_graph(),
        tau in 1usize..4,
        seed in 0u64..1000,
    ) {
        let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
        let clustering = cluster(&graph, &config);
        prop_assert!(clustering.validate(&graph).is_ok());
        for &c in &clustering.centers {
            let sp = dijkstra(&graph, c);
            for u in 0..graph.num_nodes() {
                if clustering.assignment[u] == c {
                    prop_assert!(clustering.dist[u] >= sp.dist[u]);
                }
            }
        }
    }

    #[test]
    fn diameter_estimate_is_conservative(
        graph in arbitrary_graph(),
        tau in 1usize..4,
        seed in 0u64..1000,
    ) {
        let exact = exact_diameter(&graph);
        let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
        let estimate = approximate_diameter(&graph, &config);
        prop_assert!(estimate.upper_bound >= exact,
            "estimate {} below exact {}", estimate.upper_bound, exact);
        // The diameter lower bound never exceeds the exact value.
        let lower = diameter_lower_bound(&graph, 3, seed);
        prop_assert!(lower <= exact);
    }

    #[test]
    fn builder_is_idempotent_under_edge_duplication(graph in arbitrary_graph()) {
        // Re-adding every edge (in both orientations) must reproduce the graph.
        let mut builder = GraphBuilder::new(graph.num_nodes());
        for (u, v, w) in graph.edges() {
            builder.add_edge(u, v, w);
            builder.add_edge(v, u, w);
        }
        prop_assert_eq!(builder.build(), graph.clone());
    }

    #[test]
    fn mr_sort_and_prefix_sum_match_sequential(values in proptest::collection::vec(0u64..1000, 0..300), machines in 1usize..6) {
        let engine = MrEngine::new(MrConfig::with_machines(machines));
        let mut expected_sorted = values.clone();
        expected_sorted.sort_unstable();
        prop_assert_eq!(primitives::sort(&engine, values.clone()), expected_sorted);

        let scan = primitives::prefix_sum(&engine, &values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += v;
        }
    }
}
