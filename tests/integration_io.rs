//! End-to-end ingestion: the bundled fixtures flow from file to diameter
//! estimate, snapshots round-trip, and parsing is thread-count independent.

use proptest::prelude::*;

use cldiam::graph::io::{binary, dimacs, edgelist};
use cldiam::graph::{detect_format, largest_component, load_graph, FileFormat, Graph};
use cldiam::prelude::*;
use cldiam::sssp::{diameter_lower_bound, exact_diameter, sssp_diameter_upper_bound};

const ROADS_GR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/roads.gr");
const SOCIAL_TSV: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/social.tsv");

#[test]
fn dimacs_fixture_flows_to_a_diameter_estimate() {
    let raw = load_graph(ROADS_GR).expect("fixture parses");
    assert_eq!(raw.num_nodes(), 14);
    assert_eq!(raw.num_edges(), 19);
    // The fixture carries a detached 2-node spur, as real datasets do.
    assert!(!cldiam::graph::connected_components(&raw).is_connected());
    let (graph, _) = largest_component(&raw);
    assert_eq!(graph.num_nodes(), 12);

    let config = ClusterConfig::default().with_tau(4).with_seed(1);
    let estimate = approximate_diameter(&graph, &config);
    let exact = exact_diameter(&graph);
    let lower = diameter_lower_bound(&graph, 4, 1);
    assert!(estimate.upper_bound >= exact, "estimate {} < exact {exact}", estimate.upper_bound);
    assert!(lower <= exact);
    assert!(estimate.upper_bound > 0);
}

#[test]
fn snap_fixture_flows_to_a_diameter_estimate() {
    let graph = load_graph(SOCIAL_TSV).expect("fixture parses");
    assert_eq!(graph.num_nodes(), 12);
    assert_eq!(graph.num_edges(), 17);
    // Unweighted SNAP lines default to weight 1.
    assert_eq!(graph.edge_weight(0, 1), Some(1));
    let estimate = approximate_diameter(&graph, &ClusterConfig::default().with_tau(4));
    assert!(estimate.upper_bound >= exact_diameter(&graph));
}

#[test]
fn fixture_formats_are_auto_detected() {
    let head = std::fs::read(ROADS_GR).unwrap();
    assert_eq!(detect_format(ROADS_GR.as_ref(), &head), FileFormat::Dimacs);
    let head = std::fs::read(SOCIAL_TSV).unwrap();
    assert_eq!(detect_format(SOCIAL_TSV.as_ref(), &head), FileFormat::EdgeList);
}

#[test]
fn fixtures_survive_disconnection_in_the_sssp_bounds() {
    // The raw (unextracted) DIMACS fixture is disconnected: the SSSP bounds
    // must bracket the per-component diameter from every source.
    let raw = load_graph(ROADS_GR).unwrap();
    let exact = exact_diameter(&raw);
    for source in [0, 12, 13] {
        assert!(sssp_diameter_upper_bound(&raw, source) >= exact, "source {source}");
    }
    for seed in 0..4 {
        assert!(diameter_lower_bound(&raw, 4, seed) <= exact);
    }
}

#[test]
fn binary_snapshot_round_trips_the_fixtures() {
    for path in [ROADS_GR, SOCIAL_TSV] {
        let graph = load_graph(path).unwrap();
        let mut buf = Vec::new();
        binary::write_binary(&graph, &mut buf).unwrap();
        assert_eq!(binary::parse_binary(&buf).unwrap(), graph, "{path}");
    }
}

#[test]
fn parallel_parsing_is_identical_across_thread_counts() {
    let bytes = std::fs::read(ROADS_GR).unwrap();
    // A larger synthetic body to actually spread across chunks.
    let mut big = String::from("# big\n");
    for i in 0..3_000u32 {
        big.push_str(&format!("{}\t{}\t{}\n", i, (i * 7 + 1) % 3_001, 1 + i % 50));
    }
    let with_pool = |threads: usize, op: &(dyn Fn() -> Graph + Sync)| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
            .install(op)
    };
    for parse in [
        &(|| dimacs::parse_dimacs_bytes(&bytes).unwrap()) as &(dyn Fn() -> Graph + Sync),
        &(|| edgelist::parse_edge_list(&big).unwrap()),
    ] {
        let reference = with_pool(1, parse);
        for threads in [2, 4, 8] {
            assert_eq!(with_pool(threads, parse), reference, "diverged at {threads} threads");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// text → Graph → binary snapshot → Graph is the identity, for arbitrary
    /// graphs (isolated nodes, parallel-edge collapses and all).
    #[test]
    fn text_and_binary_round_trip_identity(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40, 1u32..1000), 0..120),
    ) {
        let mut builder = GraphBuilder::new(n);
        for (u, v, w) in edges {
            if u != v {
                builder.add_edge(u % n as u32, v % n as u32, w);
            }
        }
        let graph = builder.build();

        // Edge-list text round trip.
        let mut text = Vec::new();
        edgelist::write_edge_list(&graph, &mut text).unwrap();
        let mut reparsed = edgelist::parse_edge_list_bytes(&text).unwrap();
        // The text form drops trailing isolated nodes (no edges mention
        // them); pad the builder the way a consumer with a node count would.
        if reparsed.num_nodes() < graph.num_nodes() {
            let mut b = GraphBuilder::new(graph.num_nodes());
            b.extend_edges(reparsed.edges());
            reparsed = b.build();
        }
        prop_assert_eq!(&reparsed, &graph);

        // DIMACS text round trip (header keeps isolated nodes exactly).
        let mut gr = Vec::new();
        dimacs::write_dimacs(&graph, &mut gr).unwrap();
        prop_assert_eq!(&dimacs::parse_dimacs_bytes(&gr).unwrap(), &graph);

        // Binary snapshot round trip.
        let mut bin = Vec::new();
        binary::write_binary(&graph, &mut bin).unwrap();
        prop_assert_eq!(&binary::parse_binary(&bin).unwrap(), &graph);
    }
}
