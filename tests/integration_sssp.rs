//! Integration tests for the SSSP substrate against the generator families:
//! Δ-stepping must agree with Dijkstra everywhere, and the diameter bounds
//! must bracket the exact value.

use cldiam::gen::{GraphSpec, WeightModel};
use cldiam::prelude::*;
use cldiam::sssp::{
    bellman_ford, diameter_lower_bound, ell_delta, exact_diameter, sssp_diameter_upper_bound,
    suggest_delta, unweighted_diameter,
};
use cldiam_mr::CostTracker;

fn specs() -> Vec<(GraphSpec, u64)> {
    vec![
        (GraphSpec::Mesh { side: 14 }, 1),
        (GraphSpec::RoadNetwork { rows: 16, cols: 16 }, 2),
        (GraphSpec::PreferentialAttachment { nodes: 400, edges_per_node: 3 }, 3),
        (GraphSpec::RMat { scale: 8 }, 4),
        (GraphSpec::Gnm { nodes: 300, edges: 900 }, 5),
    ]
}

#[test]
fn delta_stepping_matches_dijkstra_on_every_family() {
    for (spec, seed) in specs() {
        let graph = spec.generate_connected(seed);
        let source = (graph.num_nodes() / 2) as u32;
        let expected = dijkstra(&graph, source);
        for delta in [suggest_delta(&graph), suggest_delta(&graph) * 8, 1_000_000] {
            let outcome = delta_stepping(&graph, source, delta, None);
            assert_eq!(outcome.dist, expected.dist, "{} with delta {delta}", spec.label());
        }
    }
}

#[test]
fn bellman_ford_matches_dijkstra_on_every_family() {
    for (spec, seed) in specs() {
        let graph = spec.generate_connected(seed);
        let bf = bellman_ford(&graph, 0);
        let dj = dijkstra(&graph, 0);
        assert_eq!(bf.dist, dj.dist, "{}", spec.label());
    }
}

#[test]
fn diameter_bounds_bracket_the_exact_value() {
    for (spec, seed) in specs() {
        let graph = spec.generate_connected(seed);
        let exact = exact_diameter(&graph);
        let lower = diameter_lower_bound(&graph, 4, seed);
        let upper = sssp_diameter_upper_bound(&graph, 0);
        assert!(lower <= exact, "{}: lower {lower} > exact {exact}", spec.label());
        assert!(upper >= exact, "{}: upper {upper} < exact {exact}", spec.label());
        assert!(upper <= exact * 2, "{}: upper {upper} > 2x exact {exact}", spec.label());
    }
}

#[test]
fn delta_tradeoff_rounds_versus_work() {
    // The Δ-stepping design parameter trades parallel rounds for work: a tiny
    // Δ behaves like Dijkstra (many phases), a huge Δ like Bellman-Ford
    // (few phases, more relaxations).
    let graph = GraphSpec::Mesh { side: 20 }.generate_connected(7);
    let fine = delta_stepping(&graph, 0, 2_000, None);
    let coarse = delta_stepping(&graph, 0, 2_000_000, None);
    assert!(fine.phases > coarse.phases);
    assert!(coarse.relaxations >= fine.relaxations);
}

#[test]
fn tracker_accumulates_across_runs() {
    let graph = GraphSpec::Mesh { side: 10 }.generate_connected(9);
    let tracker = CostTracker::new();
    let a = delta_stepping(&graph, 0, 500_000, Some(&tracker));
    let b = delta_stepping(&graph, 5, 500_000, Some(&tracker));
    let snapshot = tracker.snapshot();
    assert_eq!(snapshot.rounds, a.phases + b.phases);
    assert_eq!(snapshot.messages, a.relaxations + b.relaxations);
}

#[test]
fn hop_metrics_behave_on_mesh() {
    // For a mesh with uniform (0,1] weights, Ψ(G) = 2(S-1) and ℓ_Δ grows with
    // Δ but never exceeds the number of nodes.
    let side = 12;
    let graph = cldiam::gen::mesh(side, WeightModel::UniformUnit, 3);
    assert_eq!(unweighted_diameter(&graph, 4, 1) as usize, 2 * (side - 1));
    let small = ell_delta(&graph, 100_000, 4, 1);
    let large = ell_delta(&graph, 10_000_000, 4, 1);
    assert!(small <= large);
    assert!((large as usize) < graph.num_nodes());
}

#[test]
fn unweighted_diameter_lower_bounds_delta_stepping_rounds_on_unit_weights() {
    // With unit weights and Δ = 1, every Δ-stepping bucket phase advances one
    // hop: the number of phases is at least the eccentricity of the source,
    // which is at least half the unweighted diameter — the paper's argument
    // for why Δ-stepping needs Ω(Ψ) rounds under linear space.
    let graph = cldiam::gen::mesh(16, WeightModel::Unit, 2);
    let psi = unweighted_diameter(&graph, 4, 3) as u64;
    let outcome = delta_stepping(&graph, 0, 1, None);
    assert!(
        outcome.phases * 2 >= psi,
        "phases {} too small for unweighted diameter {psi}",
        outcome.phases
    );
}
