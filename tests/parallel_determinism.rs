//! Determinism across thread counts.
//!
//! The vendored rayon is a real threaded executor; these tests pin down the
//! contract every algorithm in the workspace relies on: running the same
//! seeded computation on pools of 1, 2, and 8 workers produces bit-identical
//! results — same graphs, same clusterings, same distances, same estimates,
//! and same MapReduce cost metrics. A regression here means some reduction
//! started depending on scheduling order.

use cldiam::gen::{mesh, rmat, RmatParams, WeightModel};
use cldiam::prelude::*;
use cldiam_core::{cluster, quotient_graph};
use cldiam_mr::{MrConfig, MrEngine};
use cldiam_sssp::diameter::all_eccentricities;
use cldiam_sssp::{bounds_diameter, delta_stepping, suggest_delta, BoundsConfig, NO_ORACLE};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn with_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(op)
}

/// Runs `op` on every thread count and asserts all results equal the
/// 1-thread reference.
fn assert_identical<R: PartialEq + std::fmt::Debug + Send>(op: impl Fn() -> R + Send + Sync) {
    let reference = with_pool(THREAD_COUNTS[0], &op);
    for &threads in &THREAD_COUNTS[1..] {
        let result = with_pool(threads, &op);
        assert_eq!(result, reference, "result diverged at {threads} threads");
    }
}

#[test]
fn full_pipeline_is_bit_identical_across_thread_counts() {
    // generate → CLUSTER → quotient → estimate, everything inside the pool.
    assert_identical(|| {
        let graph = mesh(12, WeightModel::UniformUnit, 7);
        let config = ClusterConfig::default().with_tau(4).with_seed(7);
        let clustering = cluster(&graph, &config);
        let quotient = quotient_graph(&graph, &clustering);
        let estimate = approximate_diameter(&graph, &config);
        (
            graph,
            clustering,
            quotient.graph,
            quotient.cluster_centers,
            quotient.boundary_edges,
            // `estimate` carries the MrMetrics (rounds, messages, node
            // updates, peak memory) — all compared bit-for-bit.
            estimate,
        )
    });
}

#[test]
fn rmat_generation_is_identical_across_thread_counts() {
    // The generator chunks by GEN_CHUNKS, never by pool size.
    assert_identical(|| rmat(RmatParams::paper(8), WeightModel::UniformUnit, 11));
}

#[test]
fn delta_stepping_is_identical_across_thread_counts() {
    assert_identical(|| {
        let graph = mesh(14, WeightModel::UniformUnit, 3);
        let delta = suggest_delta(&graph);
        let fine = delta_stepping(&graph, 0, delta, None);
        let coarse = delta_stepping(&graph, 5, delta.saturating_mul(16), None);
        (fine, coarse)
    });
}

#[test]
fn all_eccentricities_are_identical_across_thread_counts() {
    assert_identical(|| {
        let graph = mesh(9, WeightModel::UniformUnit, 4);
        all_eccentricities(&graph)
    });
}

#[test]
fn mr_engine_rounds_are_identical_across_thread_counts() {
    // The engine's own pool is sized to its machine count; the outer pool
    // must not leak into round outputs, loads, or metrics. Output order is
    // also exact: the engine groups with a fixed-seed hasher.
    assert_identical(|| {
        let engine = MrEngine::new(MrConfig::with_machines(4));
        let pairs: Vec<(u32, u64)> = (0..500u32).map(|i| (i % 37, u64::from(i))).collect();
        let sums = engine.run_round(pairs, |&k, vs| vec![(k, vs.iter().sum::<u64>())]);
        let total = engine.run_round(sums, |_, vs| vec![((), vs.iter().sum::<u64>())]);
        (total, engine.history(), engine.metrics())
    });
}

#[test]
fn bounds_engine_is_identical_across_thread_counts() {
    // The anytime engine splits disconnected graphs and bounds the
    // components in parallel; the combined outcome — bounds, SSSP counts and
    // the full iteration trace — must not depend on the pool size.
    assert_identical(|| {
        let connected = mesh(10, WeightModel::UniformUnit, 5);
        let disconnected = rmat(RmatParams::paper(7), WeightModel::UniformUnit, 13);
        let config = BoundsConfig::default().with_max_sssp(12);
        (
            bounds_diameter(&connected, &config, NO_ORACLE),
            bounds_diameter(&disconnected, &config, NO_ORACLE),
        )
    });
}

#[test]
fn parallel_components_are_identical_across_thread_counts() {
    assert_identical(|| {
        let graph = rmat(RmatParams::paper(7), WeightModel::Unit, 5);
        cldiam::graph::components::connected_components_parallel(&graph)
    });
}
