//! Smoke test: the full CL-DIAM pipeline, end to end, on one small seeded
//! graph per benchmark family.
//!
//! Each run exercises every stage the paper composes — generate →
//! `CLUSTER` → quotient graph → `approximate_diameter` — and checks the
//! paper's headline guarantees:
//!
//! * the SSSP lower bound never exceeds the CL-DIAM upper bound
//!   (`lower ≤ upper`);
//! * the approximation ratio `upper / lower` stays below `2 + ε` (Theorem 1's
//!   practical regime; the paper observes ratios well below 1.4);
//! * on a path graph with singleton clusters the estimate is *exactly* the
//!   diameter.

use cldiam::gen::GraphSpec;
use cldiam::prelude::*;
use cldiam::sssp::exact_diameter;
use cldiam_core::{cluster, quotient_graph};

/// `ε` of the smoke-level ratio check. The theory bound is `2 + ε` for small
/// `ε`; the instances here are tiny, so we keep a generous-but-meaningful
/// margin over the observed ratios (all below 1.6).
const EPSILON: f64 = 0.25;

fn smoke(spec: GraphSpec, tau: usize, seed: u64) {
    let graph = spec.generate_connected(seed);
    let label = spec.label();
    assert!(graph.num_nodes() > 16, "{label}: generated graph too small");

    // Stage 1+2: CLUSTER decomposition, validated as a genuine partition.
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    let clustering = cluster(&graph, &config);
    clustering.validate(&graph).unwrap_or_else(|e| panic!("{label}: invalid clustering: {e}"));

    // Stage 3: quotient graph — one node per cluster.
    let quotient = quotient_graph(&graph, &clustering);
    assert_eq!(
        quotient.graph.num_nodes(),
        clustering.num_clusters(),
        "{label}: quotient must have one node per cluster"
    );

    // Stage 4: the full driver (same decomposition logic) and the bounds.
    let estimate = approximate_diameter(&graph, &config);
    let lower = diameter_lower_bound(&graph, 4, seed);
    assert!(
        lower <= estimate.upper_bound,
        "{label}: lower bound {lower} exceeds upper bound {}",
        estimate.upper_bound
    );
    let ratio = estimate.ratio_against(lower);
    assert!(
        ratio < 2.0 + EPSILON,
        "{label}: ratio {ratio} breaches the 2 + ε bound (lower {lower}, upper {})",
        estimate.upper_bound
    );

    // The lower bound itself must be sound: never above the exact diameter
    // (cheap to verify at smoke-test sizes).
    let exact = exact_diameter(&graph);
    assert!(lower <= exact, "{label}: lower bound {lower} above exact diameter {exact}");
    assert!(
        estimate.upper_bound >= exact,
        "{label}: upper bound {} below exact diameter {exact}",
        estimate.upper_bound
    );
}

#[test]
fn mesh_pipeline_smokes() {
    smoke(GraphSpec::Mesh { side: 14 }, 4, 7);
}

#[test]
fn rmat_pipeline_smokes() {
    smoke(GraphSpec::RMat { scale: 8 }, 8, 11);
}

#[test]
fn road_network_pipeline_smokes() {
    smoke(GraphSpec::RoadNetwork { rows: 15, cols: 15 }, 4, 13);
}

#[test]
fn path_graph_estimate_is_exact() {
    // With τ ≫ n every node becomes a singleton cluster (radius 0) and the
    // quotient is the path itself, so Φ(G_C) + 2R is the exact diameter.
    let graph = cldiam::gen::path(40, 3);
    let exact = exact_diameter(&graph);
    assert_eq!(exact, 39 * 3);
    let config = ClusterConfig::default().with_tau(1024).with_seed(1);
    let estimate = approximate_diameter(&graph, &config);
    assert_eq!(estimate.upper_bound, exact, "singleton clustering must be exact");
    assert_eq!(estimate.radius, 0);
    assert!(estimate.quotient_exact);
}
