//! End-to-end integration tests for the diameter-approximation pipeline,
//! spanning the generator, graph, SSSP and core crates.
//!
//! Every test follows the structure of the paper's evaluation: generate a
//! benchmark-family graph, compute a trustworthy reference (the exact diameter
//! on these test-sized instances), and check that `CL-DIAM` returns a
//! conservative estimate with a practical approximation ratio — the paper
//! observes ratios below 1.4 against a *lower bound*, which translates into a
//! modest constant against the exact value.

use cldiam::gen::{GraphSpec, WeightModel};
use cldiam::prelude::*;
use cldiam::sssp::{exact_diameter, sssp_diameter_upper_bound};
use cldiam_core::InitialDelta;

/// Runs CL-DIAM on the given spec and checks the estimate against the exact
/// diameter. Returns (exact, estimate ratio).
fn check_spec(spec: GraphSpec, tau: usize, seed: u64, max_ratio: f64) {
    let graph = spec.generate_connected(seed);
    assert!(graph.num_nodes() > 10, "{}: generated graph too small", spec.label());
    let exact = exact_diameter(&graph);
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    let estimate = approximate_diameter(&graph, &config);
    assert!(
        estimate.upper_bound >= exact,
        "{}: estimate {} below exact diameter {exact}",
        spec.label(),
        estimate.upper_bound
    );
    let ratio = estimate.ratio_against(exact);
    assert!(
        ratio <= max_ratio,
        "{}: approximation ratio {ratio:.3} exceeds {max_ratio}",
        spec.label()
    );
}

#[test]
fn mesh_family_is_well_approximated() {
    check_spec(GraphSpec::Mesh { side: 20 }, 4, 3, 1.8);
}

#[test]
fn road_family_is_well_approximated() {
    check_spec(GraphSpec::RoadNetwork { rows: 24, cols: 24 }, 4, 7, 1.8);
}

#[test]
fn social_family_is_well_approximated() {
    check_spec(GraphSpec::PreferentialAttachment { nodes: 700, edges_per_node: 3 }, 8, 5, 2.2);
}

#[test]
fn rmat_family_is_well_approximated() {
    check_spec(GraphSpec::RMat { scale: 9 }, 8, 11, 2.2);
}

#[test]
fn roads_product_family_is_well_approximated() {
    check_spec(GraphSpec::RoadsProduct { s: 3, rows: 10, cols: 10 }, 4, 2, 1.8);
}

#[test]
fn estimate_is_conservative_across_seeds_and_taus() {
    let graph = GraphSpec::Mesh { side: 16 }.generate_connected(9);
    let exact = exact_diameter(&graph);
    for seed in [1u64, 2, 3] {
        for tau in [1usize, 4, 16] {
            let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
            let estimate = approximate_diameter(&graph, &config);
            assert!(
                estimate.upper_bound >= exact,
                "seed {seed} tau {tau}: {} < {exact}",
                estimate.upper_bound
            );
        }
    }
}

#[test]
fn cldiam_beats_sssp_bound_quality_on_high_diameter_graphs() {
    // On road-like graphs the SSSP 2-approximation from an arbitrary node is
    // typically much looser than the cluster-based estimate.
    let graph = GraphSpec::RoadNetwork { rows: 22, cols: 22 }.generate_connected(13);
    let exact = exact_diameter(&graph);
    let config = ClusterConfig::default().with_tau(4).with_seed(13);
    let estimate = approximate_diameter(&graph, &config);
    let sssp_bound = sssp_diameter_upper_bound(&graph, 0);
    assert!(estimate.upper_bound >= exact);
    assert!(sssp_bound >= exact);
    assert!(
        estimate.upper_bound <= sssp_bound + exact / 4,
        "CL-DIAM {} much worse than SSSP bound {sssp_bound}",
        estimate.upper_bound
    );
}

#[test]
fn cluster2_pipeline_is_also_conservative() {
    let graph = GraphSpec::Mesh { side: 14 }.generate_connected(4);
    let exact = exact_diameter(&graph);
    let config = ClusterConfig::default().with_tau(2).with_seed(4).with_cluster2(true);
    let estimate = approximate_diameter(&graph, &config);
    assert!(estimate.upper_bound >= exact);
}

#[test]
fn bimodal_weights_with_small_initial_delta_stay_tight() {
    // Integration version of the §5 experiment: with the self-tuned Δ the
    // estimate stays within a small factor of the truth.
    let graph = cldiam::gen::mesh(32, WeightModel::paper_bimodal(), 17);
    let exact = exact_diameter(&graph);
    let config = ClusterConfig::default()
        .with_tau(8)
        .with_seed(17)
        .with_initial_delta(InitialDelta::MinWeight);
    let estimate = approximate_diameter(&graph, &config);
    assert!(estimate.upper_bound >= exact);
    assert!(
        estimate.ratio_against(exact) < 1.6,
        "self-tuned Δ should stay tight, got {:.3}",
        estimate.ratio_against(exact)
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let graph = GraphSpec::Mesh { side: 20 }.generate_connected(6);
    let config = ClusterConfig::default().with_tau(4).with_seed(6);
    let estimate = approximate_diameter(&graph, &config);
    // Rounds include at least one per growing step plus the per-stage and
    // quotient rounds; work is positive; the quotient is non-trivial.
    assert!(estimate.metrics.rounds >= estimate.growing_steps);
    assert!(estimate.metrics.work() > 0);
    assert!(estimate.num_clusters > 1);
    assert!(estimate.quotient_edges > 0);
    assert!(estimate.radius > 0);
}
