//! Integration tests for the decomposition pipeline: clustering invariants
//! across configurations and graph families, quotient-graph structure, and
//! the equivalence between the logical and the MapReduce execution paths.

use cldiam::gen::GraphSpec;
use cldiam::prelude::*;
use cldiam_core::{cluster, cluster2, quotient_graph, ClDiam};
use cldiam_mr::{MrConfig, MrEngine};

fn families() -> Vec<(GraphSpec, u64)> {
    vec![
        (GraphSpec::Mesh { side: 16 }, 1),
        (GraphSpec::RoadNetwork { rows: 18, cols: 18 }, 2),
        (GraphSpec::PreferentialAttachment { nodes: 500, edges_per_node: 3 }, 3),
        (GraphSpec::RMat { scale: 8 }, 4),
    ]
}

#[test]
fn clustering_invariants_hold_on_every_family() {
    for (spec, seed) in families() {
        let graph = spec.generate_connected(seed);
        for tau in [1usize, 4] {
            let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
            let clustering = cluster(&graph, &config);
            clustering.validate(&graph).unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            // Distances must upper-bound the true distance to the center.
            for &c in clustering.centers.iter().take(20) {
                let sp = dijkstra(&graph, c);
                for u in 0..graph.num_nodes() {
                    if clustering.assignment[u] == c {
                        assert!(
                            clustering.dist[u] >= sp.dist[u],
                            "{} tau {tau}: node {u} dist {} < true {}",
                            spec.label(),
                            clustering.dist[u],
                            sp.dist[u]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn cluster2_invariants_hold_on_every_family() {
    for (spec, seed) in families() {
        let graph = spec.generate_connected(seed);
        let config = ClusterConfig::default().with_tau(2).with_seed(seed);
        let clustering = cluster2(&graph, &config);
        clustering.validate(&graph).unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
    }
}

#[test]
fn quotient_graph_structure_matches_clustering() {
    for (spec, seed) in families() {
        let graph = spec.generate_connected(seed);
        let config = ClusterConfig::default().with_tau(4).with_seed(seed);
        let clustering = cluster(&graph, &config);
        let quotient = quotient_graph(&graph, &clustering);
        assert_eq!(quotient.graph.num_nodes(), clustering.num_clusters(), "{}", spec.label());
        // Every quotient edge connects two distinct clusters and its weight is
        // at least the weight of some original boundary edge.
        let min_weight = graph.min_weight().unwrap();
        for (a, b, w) in quotient.graph.edges() {
            assert_ne!(a, b);
            assert!(w >= min_weight);
        }
        // The quotient cannot have more edges than the original graph.
        assert!(quotient.graph.num_edges() <= graph.num_edges());
    }
}

#[test]
fn tau_controls_cluster_count_monotonically_in_expectation() {
    let graph = GraphSpec::Mesh { side: 24 }.generate_connected(5);
    let mut last = 0usize;
    for tau in [1usize, 2, 4, 8] {
        let config = ClusterConfig::default().with_tau(tau).with_seed(5);
        let clustering = cluster(&graph, &config);
        let count = clustering.num_clusters();
        assert!(
            count + count / 2 >= last,
            "tau {tau}: cluster count {count} dropped sharply from {last}"
        );
        last = count;
    }
}

#[test]
fn step_cap_reduces_growing_steps() {
    let graph = GraphSpec::RoadNetwork { rows: 20, cols: 20 }.generate_connected(8);
    let unbounded = cluster(&graph, &ClusterConfig::default().with_tau(2).with_seed(8));
    let capped =
        cluster(&graph, &ClusterConfig::default().with_tau(2).with_seed(8).with_step_cap(4));
    capped.validate(&graph).expect("capped clustering is valid");
    // The capped variant still terminates, covers everything, and performs
    // work of the same order (the cap bounds steps *per phase*, so the total
    // can shift either way — §4.1 trades approximation for round complexity).
    assert!(capped.growing_steps > 0);
    assert!(unbounded.growing_steps > 0);
}

#[test]
fn decomposition_reuse_is_consistent_with_full_run() {
    let graph = GraphSpec::Mesh { side: 14 }.generate_connected(2);
    let driver = ClDiam::new(ClusterConfig::default().with_tau(4).with_seed(2));
    let clustering = driver.decompose(&graph);
    let via_reuse = driver.estimate_from_clustering(&graph, &clustering);
    let via_run = driver.run(&graph);
    assert_eq!(via_reuse.upper_bound, via_run.upper_bound);
    assert_eq!(via_reuse.num_clusters, via_run.num_clusters);
    assert_eq!(via_reuse.radius, via_run.radius);
}

#[test]
fn mapreduce_growth_matches_shared_memory_growth() {
    use cldiam_core::{mr_impl::mr_partial_growth, partial_growth, GrowScratch, GrowState};

    let graph = GraphSpec::RoadNetwork { rows: 12, cols: 12 }.generate_connected(6);
    let centers = [0u32, (graph.num_nodes() / 2) as u32, (graph.num_nodes() - 1) as u32];
    let threshold = 4_000u64;

    let mut fast = GrowState::new(graph.num_nodes());
    let mut slow = GrowState::new(graph.num_nodes());
    for &c in &centers {
        fast.set_center(c);
        slow.set_center(c);
    }
    let mut scratch = GrowScratch::new();
    partial_growth(&graph, threshold, threshold, &mut fast, None, None, None, &mut scratch);
    let engine = MrEngine::new(MrConfig::with_machines(3));
    mr_partial_growth(&engine, &graph, threshold, threshold, &mut slow);
    assert_eq!(fast.eff, slow.eff);
    assert_eq!(fast.center, slow.center);
    assert_eq!(fast.true_dist, slow.true_dist);
}
