//! Storage-layer properties: varint coding laws, compressed-snapshot
//! identity across thread counts, and snapshot-cache staleness handling.

use proptest::prelude::*;

use cldiam::graph::io::snapshot::{
    parse_snapshot_bytes, snapshot_version, write_snapshot, SnapshotGraph, SnapshotPayload,
};
use cldiam::graph::io::{binary, edgelist, snapshot_path, varint};
use cldiam::graph::{
    load_graph, load_graph_cached, load_graph_cached_with, CacheOptions, CompressedGraph, Graph,
};

const ROADS_GR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/roads.gr");

fn temp_file(name: &str, ext: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cldiam-storage-{}-{name}.{ext}", std::process::id()))
}

/// Removes a text fixture and its snapshot companion.
fn cleanup(text: &std::path::Path) {
    std::fs::remove_file(snapshot_path(text)).ok();
    std::fs::remove_file(text).ok();
}

fn with_pool<T>(threads: usize, op: impl FnOnce() -> T + Send) -> T
where
    T: Send,
{
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(op)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `decode ∘ encode` is the identity for any `u64`, under both the
    /// strict and the fast decoder, and the strict decoder consumes exactly
    /// the bytes the encoder produced.
    #[test]
    fn varint_encode_decode_is_identity(value in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, value);
        prop_assert!(buf.len() <= varint::MAX_VARINT_LEN);
        let mut pos = 0;
        prop_assert_eq!(varint::decode_u64(&buf, &mut pos), Ok(value));
        prop_assert_eq!(pos, buf.len());
        pos = 0;
        prop_assert_eq!(varint::decode_u64_fast(&buf, &mut pos), value);
        prop_assert_eq!(pos, buf.len());
    }

    /// A concatenated stream of varints decodes back to the source values;
    /// cutting the stream anywhere strictly inside the last varint is
    /// reported as truncation.
    #[test]
    fn varint_streams_roundtrip_and_reject_truncation(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..20),
    ) {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for &v in &values {
            varint::encode_u64(&mut buf, v);
            ends.push(buf.len());
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(varint::decode_u64(&buf, &mut pos), Ok(v));
        }
        prop_assert_eq!(pos, buf.len());
        // Truncation inside the final varint.
        let last_start = ends[ends.len() - 1] - 1;
        let start_of_last = if ends.len() >= 2 { ends[ends.len() - 2] } else { 0 };
        for cut in start_of_last..=last_start {
            let mut p = start_of_last;
            prop_assert_eq!(
                varint::decode_u64(&buf[..cut], &mut p),
                Err(varint::VarintError::Truncated)
            );
        }
    }

    /// Padding a canonical encoding with redundant zero continuation groups
    /// must be rejected (each value has exactly one byte representation).
    #[test]
    fn varint_overlong_encodings_are_rejected(value in 0u64..(1 << 56)) {
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, value);
        let last = buf.len() - 1;
        buf[last] |= 0x80;
        buf.push(0x00);
        let mut pos = 0;
        prop_assert_eq!(
            varint::decode_u64(&buf, &mut pos),
            Err(varint::VarintError::NonCanonical)
        );
    }

    /// text → Graph → compressed v2 snapshot → Graph is the identity, for
    /// arbitrary graphs and shard counts.
    #[test]
    fn text_to_compressed_snapshot_identity(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40, 1u32..1000), 0..120),
        shards in 1usize..6,
    ) {
        let mut builder = cldiam::graph::GraphBuilder::new(n);
        for (u, v, w) in edges {
            if u != v {
                builder.add_edge(u % n as u32, v % n as u32, w);
            }
        }
        let graph = builder.build();
        let mut text = Vec::new();
        edgelist::write_edge_list(&graph, &mut text).unwrap();
        let reparsed = edgelist::parse_edge_list_bytes(&text).unwrap();
        let compressed = CompressedGraph::from_graph(&reparsed, shards);
        let mut snap = Vec::new();
        write_snapshot(&SnapshotPayload::Compressed(&compressed), &mut snap).unwrap();
        let back = parse_snapshot_bytes(&snap).unwrap().graph;
        prop_assert_eq!(back.into_dense(), reparsed);
    }
}

#[test]
fn compressed_snapshot_pipeline_is_identical_across_thread_counts() {
    // text parse → compress → snapshot bytes → reload, at 1, 2 and 8
    // threads: the snapshot bytes and the reloaded graph must be
    // bit-identical to the single-threaded run.
    let bytes = std::fs::read(ROADS_GR).unwrap();
    let mut big = String::from("# big\n");
    for i in 0..3_000u32 {
        big.push_str(&format!("{}\t{}\t{}\n", i, (i * 7 + 1) % 3_001, 1 + i % 50));
    }
    let pipeline = |threads: usize, text: &[u8]| -> (Vec<u8>, Graph) {
        with_pool(threads, || {
            let graph = cldiam::graph::io::load_graph_bytes("input.txt".as_ref(), text).unwrap();
            let compressed = CompressedGraph::from_graph(&graph, 4);
            let mut snap = Vec::new();
            write_snapshot(&SnapshotPayload::Compressed(&compressed), &mut snap).unwrap();
            let back = parse_snapshot_bytes(&snap).unwrap().graph.into_dense();
            assert_eq!(back, graph);
            (snap, back)
        })
    };
    for text in [bytes.as_slice(), big.as_bytes()] {
        let reference = pipeline(1, text);
        for threads in [2, 8] {
            assert_eq!(pipeline(threads, text), reference, "diverged at {threads} threads");
        }
    }
}

/// Writes a small edge-list text fixture and returns its path.
fn write_text_fixture(name: &str) -> std::path::PathBuf {
    let path = temp_file(name, "tsv");
    std::fs::write(&path, "0\t1\t5\n1\t2\t3\n2\t3\t4\n0\t3\t9\n").unwrap();
    path
}

#[test]
fn cache_is_written_then_reused() {
    let text = write_text_fixture("reuse");
    let (first, from_snapshot) = load_graph_cached(&text).unwrap();
    assert!(!from_snapshot, "first load must parse the text");
    assert!(snapshot_path(&text).exists(), "cache written next to the input");
    let (second, from_snapshot) = load_graph_cached(&text).unwrap();
    assert!(from_snapshot, "second load must hit the cache");
    assert_eq!(first, second);
    cleanup(&text);
}

#[test]
fn stale_cache_is_transparently_regenerated() {
    let text = write_text_fixture("stale");
    load_graph_cached(&text).unwrap();
    // The text grows an edge and its mtime moves past the cache's.
    std::fs::write(&text, "0\t1\t5\n1\t2\t3\n2\t3\t4\n0\t3\t9\n3\t4\t2\n").unwrap();
    let future = std::time::SystemTime::now() + std::time::Duration::from_secs(60);
    std::fs::OpenOptions::new().append(true).open(&text).unwrap().set_modified(future).unwrap();
    let (graph, from_snapshot) = load_graph_cached(&text).unwrap();
    assert!(!from_snapshot, "stale cache must fall back to the text");
    assert_eq!(graph.num_nodes(), 5, "the reparse must see the new edge");
    cleanup(&text);
}

#[test]
fn future_version_cache_is_transparently_regenerated() {
    let text = write_text_fixture("future");
    let expected = load_graph(&text).unwrap();
    // Forge a cache stamped with a version this build does not know.
    let mut forged = binary::MAGIC.to_vec();
    forged.extend_from_slice(&99u32.to_le_bytes());
    forged.extend_from_slice(&[0u8; 56]);
    let cache = snapshot_path(&text);
    std::fs::write(&cache, &forged).unwrap();
    let future = std::time::SystemTime::now() + std::time::Duration::from_secs(60);
    std::fs::OpenOptions::new().append(true).open(&cache).unwrap().set_modified(future).unwrap();
    let (graph, from_snapshot) = load_graph_cached(&text).unwrap();
    assert!(!from_snapshot, "unreadable cache must fall back to the text");
    assert_eq!(graph, expected);
    assert_eq!(
        snapshot_version(&std::fs::read(&cache).unwrap()),
        Some(2),
        "the unreadable cache must be replaced by a v2 snapshot"
    );
    cleanup(&text);
}

#[test]
fn v1_cache_is_upgraded_to_v2_in_place() {
    let text = write_text_fixture("upgrade");
    let expected = load_graph(&text).unwrap();
    let cache = snapshot_path(&text);
    binary::write_binary_file(&expected, &cache).unwrap();
    let future = std::time::SystemTime::now() + std::time::Duration::from_secs(60);
    std::fs::OpenOptions::new().append(true).open(&cache).unwrap().set_modified(future).unwrap();
    assert_eq!(snapshot_version(&std::fs::read(&cache).unwrap()), Some(1));
    let (graph, from_snapshot) = load_graph_cached(&text).unwrap();
    assert!(from_snapshot, "a valid v1 cache still serves the load");
    assert_eq!(graph, expected);
    assert_eq!(
        snapshot_version(&std::fs::read(&cache).unwrap()),
        Some(2),
        "the v1 cache must be upgraded to v2 in place"
    );
    cleanup(&text);
}

#[test]
fn cache_tier_follows_the_requested_options() {
    let text = write_text_fixture("tier");
    let dense = load_graph(&text).unwrap();
    let compressed_options = CacheOptions { compress: true, shards: 3, mmap: false, verify: true };
    let (graph, _) = load_graph_cached_with(&text, &compressed_options).unwrap();
    match &graph {
        SnapshotGraph::Compressed(c) => assert_eq!(c.to_graph(), dense),
        other => panic!("expected a compressed payload, got {other:?}"),
    }
    // The cache on disk now holds the compressed tier; asking for the dense
    // tier converts (and rewrites) without reparsing the text.
    let (graph, from_snapshot) = load_graph_cached_with(&text, &CacheOptions::default()).unwrap();
    assert!(from_snapshot);
    assert_eq!(graph, SnapshotGraph::Dense(dense.clone()));
    // And the mmap path serves the same bits.
    for threads in [1, 2, 8] {
        let options = CacheOptions { compress: true, shards: 3, mmap: true, verify: false };
        let loaded =
            with_pool(threads, || load_graph_cached_with(&text, &options).unwrap().0.into_dense());
        assert_eq!(loaded, dense, "mmap load diverged at {threads} threads");
    }
    cleanup(&text);
}
