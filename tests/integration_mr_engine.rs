//! Integration tests for the MapReduce substrate driven by graph workloads:
//! classic graph computations expressed as key-value rounds on the simulated
//! engine, checked against the shared-memory oracles, plus the strict
//! `MR(M_T, M_L)` accounting of Fact 1.

use cldiam::gen::{mesh, preferential_attachment, WeightModel};
use cldiam::graph::traversal::bfs_hops;
use cldiam::graph::{Graph, NodeId};
use cldiam::prelude::*;
use cldiam_mr::{primitives, MrEngine};

/// Unweighted BFS expressed as MapReduce rounds: each round maps the frontier
/// to (neighbor, level + 1) pairs and reduces by keeping the first level at
/// which a node is reached.
fn mr_bfs(engine: &MrEngine, graph: &Graph, source: NodeId) -> Vec<u32> {
    let mut level = vec![u32::MAX; graph.num_nodes()];
    level[source as usize] = 0;
    let mut frontier = vec![source];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        let pairs: Vec<(NodeId, u32)> = frontier
            .iter()
            .flat_map(|&u| graph.neighbors(u).map(move |(v, _)| (v, depth + 1)))
            .collect();
        let reduced = engine.run_round(pairs, |&v, levels| {
            vec![(v, levels.into_iter().min().expect("non-empty group"))]
        });
        frontier = reduced
            .into_iter()
            .filter_map(|(v, l)| {
                if l < level[v as usize] {
                    level[v as usize] = l;
                    Some(v)
                } else {
                    None
                }
            })
            .collect();
        depth += 1;
    }
    level
}

#[test]
fn mr_bfs_matches_sequential_bfs() {
    let graph = mesh(12, WeightModel::Unit, 3);
    let engine = MrEngine::new(MrConfig::with_machines(4));
    let levels = mr_bfs(&engine, &graph, 0);
    assert_eq!(levels, bfs_hops(&graph, 0));
    // One MR round per BFS level (the hop eccentricity of the corner is 22),
    // plus the final empty-frontier check.
    assert!(engine.metrics().rounds >= 22);
}

#[test]
fn mr_degree_count_matches_graph_degrees() {
    let graph = preferential_attachment(400, 3, WeightModel::UniformUnit, 7);
    let engine = MrEngine::new(MrConfig::with_machines(8));
    let pairs: Vec<(NodeId, u64)> = graph.arcs().map(|(u, _, _)| (u, 1u64)).collect();
    let mut degrees = engine.run_round(pairs, |&u, ones| vec![(u, ones.len() as u64)]);
    degrees.sort_unstable();
    for (u, d) in degrees {
        assert_eq!(d as usize, graph.degree(u), "node {u}");
    }
}

#[test]
fn mr_sort_orders_edges_by_weight() {
    let graph = mesh(10, WeightModel::UniformUnit, 5);
    let engine = MrEngine::new(MrConfig::with_machines(4));
    let weights: Vec<u32> = graph.edges().map(|(_, _, w)| w).collect();
    let sorted = primitives::sort(&engine, weights.clone());
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(sorted.len(), weights.len());
    assert_eq!(sorted.first().copied(), graph.min_weight());
    assert_eq!(sorted.last().copied(), graph.max_weight());
}

#[test]
fn strict_mode_charges_fact1_round_counts() {
    // Fact 1: sorting n items costs O(log_{M_L} n) rounds. With M_L = 64 and
    // n = 200 000 values that is ⌈log_64 n⌉ = 3 rounds; the loose (Spark-like)
    // accounting charges a single round.
    let values: Vec<u64> = (0..200_000u64).rev().collect();
    let loose = MrEngine::new(MrConfig::with_machines(4).with_local_memory(1 << 6));
    primitives::sort(&loose, values.clone());
    assert_eq!(loose.metrics().rounds, 1);

    let strict = MrEngine::new(MrConfig::with_machines(4).with_local_memory(1 << 6).strict());
    primitives::sort(&strict, values);
    assert_eq!(strict.metrics().rounds, 3);
}

#[test]
fn machine_count_does_not_change_results_only_load() {
    let graph = mesh(8, WeightModel::UniformUnit, 2);
    let mut outputs = Vec::new();
    let mut peaks = Vec::new();
    for machines in [1usize, 2, 8] {
        let engine = MrEngine::new(MrConfig::with_machines(machines));
        let mut levels = mr_bfs(&engine, &graph, 0);
        levels.shrink_to_fit();
        outputs.push(levels);
        peaks.push(engine.metrics().peak_local_items);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    // More machines never increases the peak per-machine load.
    assert!(peaks[2] <= peaks[0]);
}

#[test]
fn cost_accounting_charges_rounds_and_messages_exactly() {
    // Every run_round charges exactly one round and `input_items` messages;
    // chaining rounds accumulates both, with no hidden charges.
    let engine = MrEngine::new(MrConfig::with_machines(4));
    let first: Vec<(u32, u64)> = (0..120u32).map(|i| (i % 10, 1u64)).collect();
    let mid = engine.run_round(first, |&k, vs| vec![(k, vs.len() as u64)]);
    let mid_len = mid.len();
    engine.run_round(mid, |_, vs| vec![((), vs.into_iter().sum::<u64>())]);

    let metrics = engine.metrics();
    assert_eq!(metrics.rounds, 2);
    assert_eq!(metrics.messages, 120 + mid_len as u64);
    let history = engine.history();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].input_items, 120);
    assert_eq!(history[1].input_items, mid_len);
    // Work is messages plus node updates; run_round itself applies none.
    assert_eq!(metrics.work(), metrics.messages);
}

#[test]
fn tiny_local_memory_flags_every_overloaded_round() {
    // With M_L = 8 items and all pairs hashed to one key, one machine holds
    // the whole input: the violation must be flagged and the peak recorded.
    let engine = MrEngine::new(MrConfig::with_machines(4).with_local_memory(8));
    let pairs: Vec<(u8, u32)> = (0..100u32).map(|i| (1u8, i)).collect();
    engine.run_round(pairs, |&k, vs| vec![(k, vs.len() as u32)]);

    let history = engine.history();
    assert!(history[0].local_memory_exceeded, "100 items on one machine must exceed M_L = 8");
    assert_eq!(engine.metrics().peak_local_items, 100);

    // The follow-up round (one key-count pair) fits comfortably.
    let engine2 = MrEngine::new(MrConfig::with_machines(4).with_local_memory(8));
    let small: Vec<(u8, u32)> = (0..5u32).map(|i| (i as u8, i)).collect();
    engine2.run_round(small, |&k, vs| vec![(k, vs.len() as u32)]);
    assert!(!engine2.history()[0].local_memory_exceeded);
}

#[test]
fn round_count_is_independent_of_machine_count() {
    // The Figure-4 invariant: varying the number of machines changes the
    // per-machine load (and wall-clock time on a real platform) but never the
    // round structure of the computation.
    let graph = mesh(10, WeightModel::UniformUnit, 4);
    let mut round_counts = Vec::new();
    let mut message_counts = Vec::new();
    for machines in [1usize, 2, 4, 16] {
        let engine = MrEngine::new(MrConfig::with_machines(machines));
        mr_bfs(&engine, &graph, 0);
        primitives::sort(&engine, graph.edges().map(|(_, _, w)| w).collect::<Vec<_>>());
        let metrics = engine.metrics();
        round_counts.push(metrics.rounds);
        message_counts.push(metrics.messages);
    }
    assert!(
        round_counts.windows(2).all(|w| w[0] == w[1]),
        "round counts varied with machine count: {round_counts:?}"
    );
    assert!(
        message_counts.windows(2).all(|w| w[0] == w[1]),
        "message counts varied with machine count: {message_counts:?}"
    );
}

#[test]
fn strict_fact1_rounds_are_also_machine_independent() {
    // Fact 1 charges ⌈log_{M_L} n⌉ rounds as a function of n and M_L only;
    // the machine count must not leak into the charge.
    let values: Vec<u64> = (0..50_000u64).rev().collect();
    let mut rounds = Vec::new();
    for machines in [2usize, 8, 32] {
        let engine =
            MrEngine::new(MrConfig::with_machines(machines).with_local_memory(1 << 6).strict());
        primitives::sort(&engine, values.clone());
        rounds.push(engine.metrics().rounds);
    }
    assert_eq!(rounds[0], rounds[1]);
    assert_eq!(rounds[1], rounds[2]);
    assert!(rounds[0] >= 2, "50k items with M_L = 64 must charge multiple rounds");
}

#[test]
fn delta_stepping_work_dominates_cldiam_work_on_mesh() {
    // Cross-substrate sanity check of the cost model feeding Figure 3: on a
    // high-diameter graph, the clustering-based estimator charges less work
    // than a full Δ-stepping SSSP.
    let graph = mesh(40, WeightModel::UniformUnit, 6);
    let config = ClusterConfig::default().with_tau(4).with_seed(6);
    let estimate = approximate_diameter(&graph, &config);
    let sssp = delta_stepping(&graph, 0, 500_000, None);
    assert!(
        estimate.metrics.work() < sssp.work(),
        "CL-DIAM work {} not below Δ-stepping work {}",
        estimate.metrics.work(),
        sssp.work()
    );
}
