//! A MapReduce-like round engine and the paper's cost model.
//!
//! The paper analyses its algorithms on the `MR(M_T, M_L)` model of
//! Pietracaprina et al.: a computation is a sequence of *rounds*; in a round a
//! multiset of key-value pairs is transformed by applying a *reducer*
//! independently to every group of pairs sharing a key; `M_T` bounds the total
//! memory and `M_L` the memory local to any single reducer. The cost of an
//! algorithm is its number of rounds, and the experimental section
//! additionally reports *work* — the number of node updates plus messages
//! generated.
//!
//! The paper's experiments run on Apache Spark over a 16-node cluster. This
//! crate is the single-process substitute:
//!
//! * [`CostTracker`] / [`CostMetrics`] — thread-safe accounting of rounds,
//!   messages, node updates and peak per-reducer memory. Both the fast
//!   shared-memory implementations (in `cldiam-core` / `cldiam-sssp`) and the
//!   literal engine below charge the same model, so the platform-independent
//!   metrics of Table 2 and Figures 2–3 are reproduced exactly.
//! * [`MrEngine`] — a literal round executor: pairs are hash-partitioned to a
//!   configurable number of simulated machines, and the machines execute
//!   concurrently on a dedicated thread pool sized to the machine count, with
//!   per-machine results and load statistics merged back in machine order so
//!   every round is deterministic. `M_L` violations are detected and
//!   reported.
//! * [`primitives`] — the sorting and (segmented) prefix-sum primitives of
//!   Fact 1, with their `O(log_{M_L} n)` round accounting.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod primitives;

pub use config::MrConfig;
pub use engine::{MachineLoad, MrEngine, RoundStats};
pub use metrics::{CostMetrics, CostTracker};
