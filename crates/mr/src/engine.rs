//! A literal executor for MapReduce rounds on simulated machines.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, DefaultHasher, Hash, Hasher};

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::config::MrConfig;
use crate::metrics::{CostMetrics, CostTracker};

/// Load observed on one simulated machine during a round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineLoad {
    /// Machine index in `0..num_machines`.
    pub machine: usize,
    /// Key-value items assigned to the machine in the round.
    pub items: usize,
    /// Distinct keys reduced on the machine.
    pub keys: usize,
}

/// Summary of one executed round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of input key-value pairs.
    pub input_items: usize,
    /// Number of key-value pairs produced by the reducers.
    pub output_items: usize,
    /// Per-machine loads.
    pub machine_loads: Vec<MachineLoad>,
    /// `true` if some machine exceeded the configured `M_L`.
    pub local_memory_exceeded: bool,
}

/// The round executor.
///
/// Key-value pairs are hash-partitioned over [`MrConfig::num_machines`]
/// simulated machines; each machine groups its pairs by key and applies the
/// reducer to every group. Machines execute concurrently on a dedicated
/// thread pool sized to the machine count (real OS threads since the PR that
/// made the vendored rayon a genuine executor), which is how the scalability
/// experiment (Figure 4) varies the degree of parallelism. Per-machine
/// outputs and [`MachineLoad`] accumulators are collected in machine order —
/// never in completion order — so round results and metrics are identical at
/// any thread count.
///
/// Cost accounting per round: one round, `input_items` messages (the pairs
/// shuffled into the round), and the largest per-machine item count as peak
/// local memory. Node updates are the responsibility of the reducer authors
/// (see [`CostTracker::add_node_updates`]).
pub struct MrEngine {
    config: MrConfig,
    tracker: CostTracker,
    pool: rayon::ThreadPool,
    history: Mutex<Vec<RoundStats>>,
}

impl MrEngine {
    /// Creates an engine with the given platform configuration.
    ///
    /// # Panics
    ///
    /// Panics if the rayon thread pool cannot be created.
    pub fn new(config: MrConfig) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.num_machines.max(1))
            .thread_name(|i| format!("mr-machine-{i}"))
            .build()
            .expect("failed to build MR thread pool");
        MrEngine { config, tracker: CostTracker::new(), pool, history: Mutex::new(Vec::new()) }
    }

    /// Creates an engine with the default configuration (16 machines).
    pub fn with_default_config() -> Self {
        Self::new(MrConfig::default())
    }

    /// The platform configuration.
    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// The cost tracker charged by this engine (and shared with algorithm
    /// implementations that want to charge additional node updates).
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }

    /// Snapshot of the accumulated cost metrics.
    pub fn metrics(&self) -> CostMetrics {
        self.tracker.snapshot()
    }

    /// Per-round statistics of every round executed so far.
    pub fn history(&self) -> Vec<RoundStats> {
        self.history.lock().clone()
    }

    /// Runs the thread pool sized to the simulated machine count; algorithm
    /// crates use this to execute their shared-memory parallel loops with the
    /// same degree of parallelism as the simulated platform.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        self.pool.install(op)
    }

    /// Executes one MapReduce round.
    ///
    /// The reducer receives each key together with all values that share it
    /// and emits an arbitrary number of output pairs, which are returned (and
    /// typically fed to the next round).
    pub fn run_round<K, V, K2, V2, R>(&self, pairs: Vec<(K, V)>, reducer: R) -> Vec<(K2, V2)>
    where
        K: Hash + Eq + Send,
        V: Send,
        K2: Send,
        V2: Send,
        R: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        let machines = self.config.num_machines.max(1);
        let input_items = pairs.len();

        // Shuffle: hash-partition pairs to machines. Buckets are pre-sized to
        // the balanced share so large rounds do not regrow them repeatedly.
        let per_machine = input_items / machines + 1;
        let mut buckets: Vec<Vec<(K, V)>> =
            (0..machines).map(|_| Vec::with_capacity(per_machine)).collect();
        for (k, v) in pairs {
            let mut hasher = DefaultHasher::new();
            k.hash(&mut hasher);
            let machine = (hasher.finish() % machines as u64) as usize;
            buckets[machine].push((k, v));
        }

        // Reduce: every machine groups by key and applies the reducer.
        let results: Vec<(MachineLoad, Vec<(K2, V2)>)> = self.pool.install(|| {
            buckets
                .into_par_iter()
                .enumerate()
                .map(|(machine, bucket)| {
                    let items = bucket.len();
                    // Fixed-seed hasher: group iteration order (and therefore
                    // the order of the round's output pairs) is a pure
                    // function of the input, not of a per-process random
                    // state. Sized to the machine's item count up front (an
                    // upper bound on its distinct keys) so grouping a large
                    // round never rehashes.
                    let mut groups: HashMap<K, Vec<V>, BuildHasherDefault<DefaultHasher>> =
                        HashMap::with_capacity_and_hasher(items, BuildHasherDefault::default());
                    for (k, v) in bucket {
                        groups.entry(k).or_default().push(v);
                    }
                    let keys = groups.len();
                    let mut out = Vec::with_capacity(keys);
                    for (k, vs) in groups {
                        out.extend(reducer(&k, vs));
                    }
                    (MachineLoad { machine, items, keys }, out)
                })
                .collect()
        });

        let mut machine_loads = Vec::with_capacity(machines);
        let mut output = Vec::with_capacity(results.iter().map(|(_, out)| out.len()).sum());
        let mut peak = 0usize;
        for (load, out) in results {
            peak = peak.max(load.items);
            machine_loads.push(load);
            output.extend(out);
        }
        // Chunk-ordered recombination delivers the loads already in machine
        // order; the determinism tests rely on this invariant.
        debug_assert!(machine_loads.windows(2).all(|pair| pair[0].machine < pair[1].machine));

        let stats = RoundStats {
            input_items,
            output_items: output.len(),
            machine_loads,
            local_memory_exceeded: peak > self.config.local_memory_items,
        };

        self.tracker.add_round();
        self.tracker.add_messages(input_items as u64);
        self.tracker.record_local_items(peak as u64);
        self.history.lock().push(stats);

        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(machines: usize) -> MrEngine {
        MrEngine::new(MrConfig::with_machines(machines))
    }

    #[test]
    fn word_count_round() {
        let e = engine(4);
        let pairs: Vec<(String, u64)> =
            ["a", "b", "a", "c", "a", "b"].iter().map(|s| (s.to_string(), 1u64)).collect();
        let mut counts = e.run_round(pairs, |k, vs| vec![(k.clone(), vs.iter().sum::<u64>())]);
        counts.sort();
        assert_eq!(counts, vec![("a".to_string(), 3), ("b".to_string(), 2), ("c".to_string(), 1)]);
        let m = e.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, 6);
    }

    #[test]
    fn chained_rounds_accumulate_rounds() {
        let e = engine(2);
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 10, 1u64)).collect();
        let sums = e.run_round(pairs, |&k, vs| vec![(k % 2, vs.iter().sum::<u64>())]);
        let total = e.run_round(sums, |_, vs| vec![((), vs.iter().sum::<u64>())]);
        assert_eq!(total.len(), 2); // one output pair per parity key
        assert_eq!(total.iter().map(|&(_, v)| v).sum::<u64>(), 100);
        assert_eq!(e.metrics().rounds, 2);
        assert_eq!(e.history().len(), 2);
    }

    #[test]
    fn reducer_sees_all_values_of_a_key() {
        let e = engine(3);
        let pairs: Vec<(u8, u8)> = vec![(1, 10), (1, 20), (1, 30), (2, 5)];
        let out = e.run_round(pairs, |&k, vs| {
            if k == 1 {
                assert_eq!(vs.len(), 3);
            } else {
                assert_eq!(vs.len(), 1);
            }
            vec![(k, vs.len() as u8)]
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn local_memory_violation_is_flagged() {
        let e = MrEngine::new(MrConfig::with_machines(1).with_local_memory(4));
        let pairs: Vec<(u8, u8)> = (0..10).map(|i| (0u8, i)).collect();
        e.run_round(pairs, |_, vs| vec![(0u8, vs.len() as u8)]);
        let history = e.history();
        assert!(history[0].local_memory_exceeded);
        assert_eq!(history[0].input_items, 10);
    }

    #[test]
    fn machine_loads_cover_all_items() {
        let e = engine(4);
        let pairs: Vec<(u32, u32)> = (0..1000).map(|i| (i, i)).collect();
        e.run_round(pairs, |&k, _| vec![(k, ())]);
        let history = e.history();
        let total: usize = history[0].machine_loads.iter().map(|l| l.items).sum();
        assert_eq!(total, 1000);
        assert_eq!(history[0].machine_loads.len(), 4);
        assert!(e.metrics().peak_local_items >= 250);
    }

    #[test]
    fn install_runs_on_engine_pool() {
        let e = engine(3);
        let sum: u64 = e.install(|| (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn empty_round_still_counts() {
        let e = engine(2);
        let out: Vec<(u8, u8)> = e.run_round(Vec::<(u8, u8)>::new(), |_, _| Vec::new());
        assert!(out.is_empty());
        assert_eq!(e.metrics().rounds, 1);
        assert_eq!(e.metrics().messages, 0);
    }
}
