//! The paper's platform-independent cost model: rounds, messages, node
//! updates, and peak per-reducer (local) memory.

use std::sync::atomic::{AtomicU64, Ordering};

/// Immutable snapshot of the cost counters.
///
/// * `rounds` — MapReduce rounds (Table 2, Figure 2).
/// * `messages` — key-value pairs shuffled between rounds.
/// * `node_updates` — state updates applied to graph nodes.
/// * `peak_local_items` — largest number of items held by a single simulated
///   machine in any round (the `M_L` column of the model).
///
/// The paper defines *work* as `node_updates + messages` (Table 2, Figure 3);
/// see [`CostMetrics::work`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostMetrics {
    /// Number of MapReduce rounds executed.
    pub rounds: u64,
    /// Number of messages (key-value pairs) generated.
    pub messages: u64,
    /// Number of node state updates applied.
    pub node_updates: u64,
    /// Peak number of items resident on a single simulated machine.
    pub peak_local_items: u64,
}

impl CostMetrics {
    /// The paper's *work* measure: node updates plus messages generated.
    pub fn work(&self) -> u64 {
        self.node_updates + self.messages
    }

    /// Component-wise sum of two metric snapshots (peak is the max).
    pub fn merged(&self, other: &CostMetrics) -> CostMetrics {
        CostMetrics {
            rounds: self.rounds + other.rounds,
            messages: self.messages + other.messages,
            node_updates: self.node_updates + other.node_updates,
            peak_local_items: self.peak_local_items.max(other.peak_local_items),
        }
    }
}

impl std::fmt::Display for CostMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} messages={} updates={} work={} peak_local={}",
            self.rounds,
            self.messages,
            self.node_updates,
            self.work(),
            self.peak_local_items
        )
    }
}

/// Thread-safe accumulator for [`CostMetrics`].
///
/// All parallel algorithm implementations in the workspace receive a
/// `&CostTracker` and charge their rounds/messages/updates to it; the
/// benchmark harness snapshots it after each run. Counters use relaxed
/// atomics: they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct CostTracker {
    rounds: AtomicU64,
    messages: AtomicU64,
    node_updates: AtomicU64,
    peak_local_items: AtomicU64,
}

impl CostTracker {
    /// Creates a tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` additional rounds.
    pub fn add_rounds(&self, n: u64) {
        self.rounds.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges one additional round.
    pub fn add_round(&self) {
        self.add_rounds(1);
    }

    /// Charges `n` messages (key-value pairs generated / shuffled).
    pub fn add_messages(&self, n: u64) {
        self.messages.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` node state updates.
    pub fn add_node_updates(&self, n: u64) {
        self.node_updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that some machine held `items` items; keeps the maximum.
    pub fn record_local_items(&self, items: u64) {
        self.peak_local_items.fetch_max(items, Ordering::Relaxed);
    }

    /// Current number of rounds charged.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Immutable snapshot of every counter.
    pub fn snapshot(&self) -> CostMetrics {
        CostMetrics {
            rounds: self.rounds.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            node_updates: self.node_updates.load(Ordering::Relaxed),
            peak_local_items: self.peak_local_items.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.node_updates.store(0, Ordering::Relaxed);
        self.peak_local_items.store(0, Ordering::Relaxed);
    }
}

impl Clone for CostTracker {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let t = CostTracker::new();
        t.add_rounds(snap.rounds);
        t.add_messages(snap.messages);
        t.add_node_updates(snap.node_updates);
        t.record_local_items(snap.peak_local_items);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_updates_plus_messages() {
        let m = CostMetrics { rounds: 3, messages: 10, node_updates: 7, peak_local_items: 2 };
        assert_eq!(m.work(), 17);
    }

    #[test]
    fn merged_sums_and_maxes() {
        let a = CostMetrics { rounds: 1, messages: 2, node_updates: 3, peak_local_items: 10 };
        let b = CostMetrics { rounds: 4, messages: 5, node_updates: 6, peak_local_items: 7 };
        let m = a.merged(&b);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.messages, 7);
        assert_eq!(m.node_updates, 9);
        assert_eq!(m.peak_local_items, 10);
    }

    #[test]
    fn tracker_accumulates_and_resets() {
        let t = CostTracker::new();
        t.add_round();
        t.add_rounds(2);
        t.add_messages(5);
        t.add_node_updates(4);
        t.record_local_items(100);
        t.record_local_items(50);
        let s = t.snapshot();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.messages, 5);
        assert_eq!(s.node_updates, 4);
        assert_eq!(s.peak_local_items, 100);
        t.reset();
        assert_eq!(t.snapshot(), CostMetrics::default());
    }

    #[test]
    fn tracker_is_safe_to_share_across_threads() {
        let t = CostTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        t.add_messages(1);
                        t.add_node_updates(2);
                    }
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.messages, 8000);
        assert_eq!(s.node_updates, 16000);
    }

    #[test]
    fn clone_copies_counters() {
        let t = CostTracker::new();
        t.add_messages(3);
        let c = t.clone();
        assert_eq!(c.snapshot().messages, 3);
        c.add_messages(1);
        assert_eq!(t.snapshot().messages, 3);
    }

    #[test]
    fn display_contains_work() {
        let m = CostMetrics { rounds: 1, messages: 2, node_updates: 3, peak_local_items: 4 };
        let s = format!("{m}");
        assert!(s.contains("work=5"));
    }
}
