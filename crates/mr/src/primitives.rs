//! Sorting and (segmented) prefix-sum primitives.
//!
//! Fact 1 of the paper (from Goodrich et al. / Pietracaprina et al.): sorting
//! and (segmented) prefix sums over `n` items can be performed in
//! `O(log_{M_L} n)` rounds in `MR(M_T, M_L)` with `M_T = Θ(n)`. The paper uses
//! these primitives to argue that a Δ-growing step takes `O(1)` rounds
//! regardless of the number of active clusters.
//!
//! The implementations here execute on the engine's simulated machines
//! (chunk-per-machine, merged results) and charge the round cost dictated by
//! [`crate::MrConfig::primitive_rounds`].

use rayon::prelude::*;

use crate::engine::MrEngine;

/// Sorts `items` using a chunk-per-machine sample-sort style plan and returns
/// the sorted vector.
///
/// Each simulated machine sorts its contiguous chunk in parallel; the sorted
/// runs are then merged. The engine is charged `primitive_rounds(n)` rounds
/// and `n` messages (the shuffle of the items).
pub fn sort<T: Ord + Send + Sync + Copy>(engine: &MrEngine, items: Vec<T>) -> Vec<T> {
    let n = items.len();
    charge(engine, n);
    if n <= 1 {
        return items;
    }
    let machines = engine.config().num_machines.max(1);
    let chunk = n.div_ceil(machines);
    engine.tracker().record_local_items(chunk as u64);

    // Local sort per machine.
    let mut runs: Vec<Vec<T>> = engine.install(|| {
        items
            .par_chunks(chunk)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                v
            })
            .collect()
    });

    // Merge the sorted runs pairwise until one remains.
    while runs.len() > 1 {
        runs = engine.install(|| {
            runs.par_chunks(2)
                .map(|pair| match pair {
                    [a] => a.clone(),
                    [a, b] => merge(a, b),
                    _ => unreachable!("chunks(2) yields 1 or 2 runs"),
                })
                .collect()
        });
    }
    runs.pop().unwrap_or_default()
}

fn merge<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Exclusive prefix sum: `out[i] = values[0] + … + values[i-1]`, `out[0] = 0`.
///
/// Computed block-per-machine with a carry pass over the per-machine totals;
/// charged as one sorting-class primitive.
pub fn prefix_sum(engine: &MrEngine, values: &[u64]) -> Vec<u64> {
    let n = values.len();
    charge(engine, n);
    if n == 0 {
        return Vec::new();
    }
    let machines = engine.config().num_machines.max(1);
    let chunk = n.div_ceil(machines);
    engine.tracker().record_local_items(chunk as u64);

    // Local exclusive scans plus per-chunk totals.
    let locals: Vec<(Vec<u64>, u64)> = engine.install(|| {
        values
            .par_chunks(chunk)
            .map(|c| {
                let mut scan = Vec::with_capacity(c.len());
                let mut acc = 0u64;
                for &v in c {
                    scan.push(acc);
                    acc += v;
                }
                (scan, acc)
            })
            .collect()
    });

    // Carry-in per chunk (sequential over the machine count).
    let mut carries = Vec::with_capacity(locals.len());
    let mut acc = 0u64;
    for (_, total) in &locals {
        carries.push(acc);
        acc += total;
    }

    // Apply carries.
    let mut out = Vec::with_capacity(n);
    for ((scan, _), carry) in locals.into_iter().zip(carries) {
        out.extend(scan.into_iter().map(|v| v + carry));
    }
    out
}

/// Segmented exclusive prefix sum. `segment_start[i] == true` marks the first
/// element of a segment; sums restart at every segment boundary.
pub fn segmented_prefix_sum(engine: &MrEngine, values: &[u64], segment_start: &[bool]) -> Vec<u64> {
    assert_eq!(values.len(), segment_start.len(), "values/flags length mismatch");
    let n = values.len();
    charge(engine, n);
    if n == 0 {
        return Vec::new();
    }
    let machines = engine.config().num_machines.max(1);
    let chunk = n.div_ceil(machines);
    engine.tracker().record_local_items(chunk as u64);

    // Per chunk: local segmented scan, the trailing open-segment sum, and
    // whether the chunk contains any segment start.
    struct Local {
        scan: Vec<u64>,
        trailing_sum: u64,
        has_boundary: bool,
    }
    let locals: Vec<Local> = engine.install(|| {
        values
            .par_chunks(chunk)
            .zip(segment_start.par_chunks(chunk))
            .map(|(vals, flags)| {
                let mut scan = Vec::with_capacity(vals.len());
                let mut acc = 0u64;
                let mut has_boundary = false;
                for (&v, &start) in vals.iter().zip(flags) {
                    if start {
                        acc = 0;
                        has_boundary = true;
                    }
                    scan.push(acc);
                    acc += v;
                }
                Local { scan, trailing_sum: acc, has_boundary }
            })
            .collect()
    });

    // Carry-in for each chunk: the running sum of the open segment that ends
    // where the chunk begins (zero if a boundary occurred in-between).
    let mut carries = Vec::with_capacity(locals.len());
    let mut acc = 0u64;
    for local in &locals {
        carries.push(acc);
        if local.has_boundary {
            acc = local.trailing_sum;
        } else {
            acc += local.trailing_sum;
        }
    }

    let mut out = Vec::with_capacity(n);
    for (chunk_idx, local) in locals.into_iter().enumerate() {
        let carry = carries[chunk_idx];
        let base = chunk_idx * chunk;
        for (i, v) in local.scan.into_iter().enumerate() {
            // Positions before the first boundary of the chunk still belong to
            // the previous chunk's open segment and receive the carry.
            let before_boundary = !segment_start[base..=base + i].iter().any(|&b| b);
            out.push(if before_boundary { v + carry } else { v });
        }
    }
    out
}

fn charge(engine: &MrEngine, n: usize) {
    let rounds = engine.config().primitive_rounds(n);
    engine.tracker().add_rounds(rounds);
    engine.tracker().add_messages(n as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MrConfig;

    fn engine(machines: usize) -> MrEngine {
        MrEngine::new(MrConfig::with_machines(machines))
    }

    #[test]
    fn sort_matches_std_sort() {
        let e = engine(4);
        let items: Vec<i64> =
            (0..5000).map(|i| ((i * 2654435761u64) % 10_000) as i64 - 5000).collect();
        let mut expected = items.clone();
        expected.sort_unstable();
        assert_eq!(sort(&e, items), expected);
        assert!(e.metrics().rounds >= 1);
    }

    #[test]
    fn sort_handles_tiny_inputs() {
        let e = engine(8);
        assert_eq!(sort(&e, Vec::<u32>::new()), Vec::<u32>::new());
        assert_eq!(sort(&e, vec![42u32]), vec![42]);
        assert_eq!(sort(&e, vec![2u32, 1]), vec![1, 2]);
    }

    #[test]
    fn sort_strict_mode_charges_more_rounds() {
        let loose = MrEngine::new(MrConfig::with_machines(2).with_local_memory(16));
        let strict = MrEngine::new(MrConfig::with_machines(2).with_local_memory(16).strict());
        let items: Vec<u32> = (0..4096).rev().collect();
        sort(&loose, items.clone());
        sort(&strict, items);
        assert_eq!(loose.metrics().rounds, 1);
        assert!(strict.metrics().rounds >= 3);
    }

    #[test]
    fn prefix_sum_matches_sequential() {
        let e = engine(4);
        let values: Vec<u64> = (1..=1000).collect();
        let result = prefix_sum(&e, &values);
        let mut expected = Vec::with_capacity(values.len());
        let mut acc = 0;
        for &v in &values {
            expected.push(acc);
            acc += v;
        }
        assert_eq!(result, expected);
    }

    #[test]
    fn prefix_sum_empty_and_single() {
        let e = engine(3);
        assert!(prefix_sum(&e, &[]).is_empty());
        assert_eq!(prefix_sum(&e, &[7]), vec![0]);
    }

    #[test]
    fn segmented_prefix_sum_resets_at_boundaries() {
        let e = engine(2);
        let values = vec![1u64, 2, 3, 4, 5, 6];
        let flags = vec![true, false, false, true, false, false];
        let result = segmented_prefix_sum(&e, &values, &flags);
        assert_eq!(result, vec![0, 1, 3, 0, 4, 9]);
    }

    #[test]
    fn segmented_prefix_sum_with_boundary_inside_later_chunk() {
        // Many machines so chunks are tiny and carries cross machine borders.
        let e = engine(8);
        let values: Vec<u64> = vec![1; 32];
        let mut flags = vec![false; 32];
        flags[0] = true;
        flags[20] = true;
        let result = segmented_prefix_sum(&e, &values, &flags);
        assert_eq!(result[19], 19);
        assert_eq!(result[20], 0);
        assert_eq!(result[31], 11);
    }

    #[test]
    fn segmented_prefix_sum_matches_sequential_oracle() {
        let e = engine(5);
        let n = 257;
        let values: Vec<u64> = (0..n).map(|i| (i % 7 + 1) as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 13 == 0).collect();
        let result = segmented_prefix_sum(&e, &values, &flags);
        let mut acc = 0u64;
        for i in 0..n {
            if flags[i] {
                acc = 0;
            }
            assert_eq!(result[i], acc, "mismatch at index {i}");
            acc += values[i];
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn segmented_prefix_sum_rejects_mismatched_inputs() {
        let e = engine(2);
        segmented_prefix_sum(&e, &[1, 2], &[true]);
    }
}
