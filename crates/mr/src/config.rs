//! Configuration of the simulated `MR(M_T, M_L)` platform.

/// Parameters of the simulated MapReduce platform.
///
/// * `num_machines` mirrors the paper's 16-node Spark cluster and is the
///   degree of parallelism used to execute reducers (Figure 4 varies it).
/// * `local_memory_items` is `M_L`: the maximum number of key-value items any
///   single reducer/machine may hold in a round. The paper requires it to be
///   substantially sublinear in the input size.
/// * `total_memory_items` is `M_T`: the aggregate memory, required to be
///   linear in the input size.
/// * `strict_primitive_rounds` — when `true`, the sorting / prefix-sum
///   primitives charge their full `O(log_{M_L} n)` round cost (Fact 1); when
///   `false` (the default, matching how the paper counts Spark rounds) each
///   primitive invocation counts as a single round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrConfig {
    /// Number of simulated machines (parallel reducers).
    pub num_machines: usize,
    /// `M_L`: per-machine memory budget, in items.
    pub local_memory_items: usize,
    /// `M_T`: total memory budget, in items.
    pub total_memory_items: usize,
    /// Whether primitives charge their full theoretical round count.
    pub strict_primitive_rounds: bool,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            num_machines: 16,
            local_memory_items: 1 << 22,
            total_memory_items: 1 << 32,
            strict_primitive_rounds: false,
        }
    }
}

impl MrConfig {
    /// A configuration with `num_machines` machines and default memory limits.
    pub fn with_machines(num_machines: usize) -> Self {
        MrConfig { num_machines: num_machines.max(1), ..Default::default() }
    }

    /// Sets the local memory budget `M_L` (in items).
    pub fn with_local_memory(mut self, items: usize) -> Self {
        self.local_memory_items = items.max(2);
        self
    }

    /// Sets the total memory budget `M_T` (in items).
    pub fn with_total_memory(mut self, items: usize) -> Self {
        self.total_memory_items = items.max(2);
        self
    }

    /// Enables strict `O(log_{M_L} n)` round accounting for primitives.
    pub fn strict(mut self) -> Self {
        self.strict_primitive_rounds = true;
        self
    }

    /// Number of rounds charged by a sorting or prefix-sum primitive over `n`
    /// items (Fact 1: `O(log_{M_L} n)` rounds, at least one).
    pub fn primitive_rounds(&self, n: usize) -> u64 {
        if !self.strict_primitive_rounds || n <= 1 {
            return 1;
        }
        let ml = self.local_memory_items.max(2) as f64;
        let rounds = (n as f64).ln() / ml.ln();
        rounds.ceil().max(1.0) as u64
    }

    /// Checks the `M_T` constraint for an input of `n` items.
    pub fn fits_total_memory(&self, n: usize) -> bool {
        n <= self.total_memory_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = MrConfig::default();
        assert_eq!(c.num_machines, 16);
        assert!(!c.strict_primitive_rounds);
    }

    #[test]
    fn with_machines_clamps_to_one() {
        assert_eq!(MrConfig::with_machines(0).num_machines, 1);
        assert_eq!(MrConfig::with_machines(8).num_machines, 8);
    }

    #[test]
    fn primitive_rounds_loose_mode_is_one() {
        let c = MrConfig::default();
        assert_eq!(c.primitive_rounds(1_000_000_000), 1);
    }

    #[test]
    fn primitive_rounds_strict_mode_grows_logarithmically() {
        let c = MrConfig::with_machines(4).with_local_memory(1 << 10).strict();
        // log_{2^10}(2^30) = 3.
        assert_eq!(c.primitive_rounds(1 << 30), 3);
        assert_eq!(c.primitive_rounds(1), 1);
        assert!(c.primitive_rounds(1 << 20) <= 2);
    }

    #[test]
    fn memory_constraint_check() {
        let c = MrConfig::with_machines(2).with_total_memory(100);
        assert!(c.fits_total_memory(100));
        assert!(!c.fits_total_memory(101));
    }
}
