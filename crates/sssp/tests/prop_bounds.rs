//! Property-based soundness of the anytime bounds engine and the directed
//! SSSP substrate.
//!
//! The acceptance bar: on random weighted graphs — connected and
//! disconnected — every recorded iteration of the bounds engine must bracket
//! the exact diameter (`lb ≤ Φ(G) ≤ ub`), bounds must tighten monotonically,
//! a converged run must land exactly on `exact_diameter`, and the whole
//! outcome (bounds, run counts, iteration trace) must be bit-identical on
//! thread pools of 1, 2 and 8 workers. On random digraphs the backward
//! Dijkstra must equal a forward Dijkstra on the explicitly reversed graph,
//! and on symmetric digraphs the directed 2-dSweep chain must be
//! bit-identical to the undirected sweep chain.

use proptest::prelude::*;

use cldiam_graph::{Graph, GraphBuilder, NodeId, Weight};
use cldiam_sssp::{
    bounds_diameter, dijkstra, double_sweep_lower_bound, exact_diameter, sweep_chain_lower_bound,
    BoundsConfig, ComponentSplit, DijkstraScratch, SsspDirection, NO_ORACLE,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn with_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(op)
}

/// A random undirected graph of 2..=18 nodes; `spine` forces connectivity.
fn graph_strategy(spine: bool, max_w: Weight) -> impl Strategy<Value = Graph> {
    (2usize..=18).prop_flat_map(move |n| {
        let path_weights = proptest::collection::vec(1..=max_w, if spine { n - 1 } else { 0 });
        let extra_edges =
            proptest::collection::vec((0..n as u32, 0..n as u32, 1..=max_w), 0..(2 * n));
        (path_weights, extra_edges).prop_map(move |(pw, extra)| {
            let mut builder = GraphBuilder::new(n);
            for (i, w) in pw.iter().enumerate() {
                builder.add_edge(i as u32, (i + 1) as u32, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    builder.add_edge(u, v, w);
                }
            }
            builder.build()
        })
    })
}

/// Connected and typically-disconnected families, light and heavy weights.
fn any_graph() -> impl Strategy<Value = Graph> {
    (0usize..3).prop_flat_map(|family| {
        let (spine, max_w) = match family {
            0 => (true, 30),
            1 => (false, 30),
            _ => (true, 4_000_000),
        };
        graph_strategy(spine, max_w)
    })
}

/// A random digraph of 2..=16 nodes (arcs stay one-way; no symmetry).
fn digraph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=16).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1..=60u32), 1..(3 * n)).prop_map(
            move |arcs| {
                let mut builder = GraphBuilder::new_directed(n);
                for (u, v, w) in arcs {
                    if u != v {
                        builder.add_arc(u, v, w);
                    }
                }
                builder.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_iteration_brackets_the_exact_diameter_on_every_pool(
        graph in any_graph(),
        budget_sel in 0usize..3,
    ) {
        let exact = exact_diameter(&graph);
        // A generous budget guarantees convergence at tolerance 1.0; the
        // small budgets exercise honest early-stopping.
        let budget = [2, 6, 4 * graph.num_nodes().max(1)][budget_sel];
        let config = BoundsConfig::default().with_max_sssp(budget);

        let reference = with_pool(THREAD_COUNTS[0], || bounds_diameter(&graph, &config, NO_ORACLE));
        prop_assert!(reference.lower <= exact, "final lb {} above {exact}", reference.lower);
        prop_assert!(reference.upper >= exact, "final ub {} below {exact}", reference.upper);
        if reference.converged {
            prop_assert_eq!(reference.lower, exact);
            prop_assert_eq!(reference.upper, exact);
        }
        // A component's lower bound never exceeds its own diameter, hence
        // never the global one — sound on every iteration of every trace.
        for it in &reference.iterations {
            prop_assert!(it.lower <= exact, "iteration lb {} above {exact}", it.lower);
        }
        // Upper bounds bracket the *component* diameter; on a connected
        // graph that is the global diameter, and the interval must also
        // tighten monotonically (one trace, one component).
        if ComponentSplit::compute(&graph).is_connected() {
            let mut prev_lower = 0;
            let mut prev_upper = cldiam_graph::INFINITY;
            for it in &reference.iterations {
                prop_assert!(it.upper >= exact, "iteration ub {} below {exact}", it.upper);
                prop_assert!(it.lower >= prev_lower, "lower bound regressed");
                prop_assert!(it.upper <= prev_upper, "upper bound regressed");
                prev_lower = it.lower;
                prev_upper = it.upper;
            }
        }

        for &threads in &THREAD_COUNTS[1..] {
            let outcome = with_pool(threads, || bounds_diameter(&graph, &config, NO_ORACLE));
            prop_assert_eq!(&outcome, &reference, "bounds diverged at {} threads", threads);
        }
    }

    #[test]
    fn backward_dijkstra_equals_forward_on_the_reversed_graph(
        graph in digraph_strategy(),
        source_sel in 0usize..16,
    ) {
        let source = (source_sel % graph.num_nodes()) as NodeId;
        let reversed = graph.reversed();
        let mut scratch = DijkstraScratch::new();
        scratch.run_directed(&graph, source, SsspDirection::Backward);
        let expected = dijkstra(&reversed, source);
        for v in 0..graph.num_nodes() as NodeId {
            prop_assert_eq!(
                scratch.distance(v),
                expected.dist[v as usize],
                "node {} (source {})", v, source
            );
        }
        prop_assert_eq!(scratch.eccentricity(), expected.eccentricity());
    }

    #[test]
    fn symmetric_directed_double_sweep_is_bit_identical_to_the_sweep_chain(
        graph in graph_strategy(true, 50),
        start_sel in 0usize..18,
        budget in 1usize..6,
    ) {
        // The same edges, stored directed (forward + reverse CSR) and
        // undirected.
        let n = graph.num_nodes();
        let mut builder = GraphBuilder::new_directed(n);
        for (u, v, w) in graph.edges() {
            builder.add_edge(u, v, w);
        }
        let directed = builder.build();
        let start = (start_sel % n) as NodeId;

        let reference = with_pool(THREAD_COUNTS[0], || {
            let mut scratch = DijkstraScratch::new();
            sweep_chain_lower_bound(&graph, start, budget, &mut scratch)
        });
        for &threads in &THREAD_COUNTS {
            let dsweep = with_pool(threads, || {
                let mut scratch = DijkstraScratch::new();
                double_sweep_lower_bound(&directed, start, budget, &mut scratch)
            });
            prop_assert_eq!(dsweep, reference, "2-dSweep diverged at {} threads", threads);
        }
    }
}
