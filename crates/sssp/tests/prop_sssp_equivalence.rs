//! Property-based equivalence of the Δ-stepping implementations and of the
//! batched multi-source drivers.
//!
//! The acceptance bar for the bucket-array engine: on random weighted graphs
//! — connected, disconnected, and with heavy weights driving the engine
//! through its overflow path — the production engine
//! ([`cldiam_sssp::delta_stepping`]), the `BTreeMap` reference
//! ([`cldiam_sssp::delta_stepping_reference`]) and Dijkstra must agree on
//! every distance, the engine and the reference must agree on the phase
//! count, and the engine's full outcome (distances *and* counters) must be
//! bit-identical on thread pools of 1, 2 and 8 workers, with and without
//! scratch reuse. The batched eccentricity driver is pinned against the
//! sequential per-source Dijkstra loop under the same pools.

use proptest::prelude::*;

use cldiam_graph::{Dist, Graph, GraphBuilder, NodeId, Weight};
use cldiam_sssp::{
    batched_eccentricities, delta_stepping, delta_stepping_reference, delta_stepping_with_scratch,
    dijkstra, SsspScratch,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn with_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(op)
}

/// A random weighted graph of 2..=18 nodes. `spine` adds a spanning path
/// (connected); without it the random extra edges usually leave several
/// components, exercising unreachable nodes. `max_w` stretches the weight
/// range: small weights keep everything within one ring lap, heavy weights
/// under a small Δ force relaxations through the engine's overflow list.
fn graph_strategy(spine: bool, max_w: Weight) -> impl Strategy<Value = Graph> {
    (2usize..=18).prop_flat_map(move |n| {
        let path_weights = proptest::collection::vec(1..=max_w, if spine { n - 1 } else { 0 });
        let extra_edges =
            proptest::collection::vec((0..n as u32, 0..n as u32, 1..=max_w), 0..(2 * n));
        (path_weights, extra_edges).prop_map(move |(pw, extra)| {
            let mut builder = GraphBuilder::new(n);
            for (i, w) in pw.iter().enumerate() {
                builder.add_edge(i as u32, (i + 1) as u32, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    builder.add_edge(u, v, w);
                }
            }
            builder.build()
        })
    })
}

/// Union of the three graph families the engine must handle: connected with
/// light weights, typically disconnected, and connected with heavy weights.
fn any_graph() -> impl Strategy<Value = Graph> {
    (0usize..3).prop_flat_map(|family| {
        let (spine, max_w) = match family {
            0 => (true, 30),
            1 => (false, 30),
            _ => (true, 4_000_000),
        };
        graph_strategy(spine, max_w)
    })
}

/// Exercises one (graph, source, delta) case, asserting the
/// cross-implementation equalities, and returns the engine outcome.
fn check_case(
    graph: &Graph,
    source: NodeId,
    delta: Weight,
    scratch: &mut SsspScratch,
) -> cldiam_sssp::DeltaSteppingOutcome {
    let expected = dijkstra(graph, source);
    let engine = delta_stepping(graph, source, delta, None);
    let reused = delta_stepping_with_scratch(graph, source, delta, None, scratch);
    let reference = delta_stepping_reference(graph, source, delta, None);
    assert_eq!(engine.dist, expected.dist, "engine vs dijkstra (source {source}, delta {delta})");
    assert_eq!(engine.dist, reference.dist, "engine vs reference (source {source}, delta {delta})");
    assert_eq!(
        engine.phases, reference.phases,
        "phase count diverged from the reference (source {source}, delta {delta})"
    );
    assert_eq!(reused, engine, "scratch reuse changed the outcome");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bucket_engine_matches_reference_and_dijkstra_on_every_pool(
        graph in any_graph(),
        source_sel in 0usize..18,
        delta_sel in 0usize..4,
    ) {
        let n = graph.num_nodes();
        let source = (source_sel % n) as NodeId;
        let avg = graph.avg_weight().unwrap_or(1).max(1);
        let delta = [1, avg, avg.saturating_mul(8).max(1), Weight::MAX][delta_sel].max(1);

        // One scratch reused across every pool: reuse must never leak state.
        let mut scratch = SsspScratch::new();
        let reference_outcome =
            with_pool(THREAD_COUNTS[0], || check_case(&graph, source, delta, &mut scratch));
        for &threads in &THREAD_COUNTS[1..] {
            let outcome =
                with_pool(threads, || check_case(&graph, source, delta, &mut scratch));
            // Full outcome — distances and all three counters — must be
            // bit-identical across pool sizes.
            prop_assert_eq!(&outcome, &reference_outcome, "diverged at {} threads", threads);
        }
    }

    #[test]
    fn batched_eccentricities_match_the_sequential_loop_on_every_pool(
        graph in any_graph(),
    ) {
        let sources: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
        let sequential: Vec<Dist> =
            sources.iter().map(|&s| dijkstra(&graph, s).eccentricity()).collect();
        for &threads in &THREAD_COUNTS {
            let batched = with_pool(threads, || batched_eccentricities(&graph, &sources));
            prop_assert_eq!(&batched, &sequential, "diverged at {} threads", threads);
        }
    }
}

/// The Δ tradeoff on a structured graph, pinned deterministically: on the
/// repo's standard mesh, phases are non-increasing along a doubling Δ grid
/// (toward Bellman-Ford). Kept out of the proptest because the monotonicity
/// is a property of well-behaved instances, not of adversarial ones — and
/// the work counters are *not* pointwise monotone (vanishing heavy phases
/// can shed a few duplicate relaxations between neighbouring grid points),
/// so only the endpoints are compared on work.
#[test]
fn phases_fall_along_a_doubling_delta_grid() {
    let graph = cldiam_gen::mesh(12, cldiam_gen::WeightModel::UniformUnit, 3);
    let mut scratch = SsspScratch::with_capacity(graph.num_nodes());
    let mut delta: Weight = 50_000;
    let mut first: Option<cldiam_sssp::DeltaSteppingOutcome> = None;
    let mut previous_phases = u64::MAX;
    for _ in 0..8 {
        let outcome = delta_stepping_with_scratch(&graph, 0, delta, None, &mut scratch);
        assert!(
            outcome.phases <= previous_phases,
            "phases rose from {previous_phases} to {} at delta {delta}",
            outcome.phases
        );
        previous_phases = outcome.phases;
        first.get_or_insert(outcome);
        delta = delta.saturating_mul(2);
    }
    let fine = first.expect("grid ran");
    let coarse = delta_stepping_with_scratch(&graph, 0, delta, None, &mut scratch);
    assert!(coarse.work() >= fine.work(), "coarse {} fine {}", coarse.work(), fine.work());
}
