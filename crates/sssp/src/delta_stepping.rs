//! Parallel Δ-stepping SSSP (Meyer & Sanders, J. Algorithms 2003) — the
//! paper's baseline competitor.
//!
//! Tentative distances are kept in buckets of width `Δ`. The algorithm
//! repeatedly takes the non-empty bucket of smallest index, relaxes *light*
//! edges (weight ≤ Δ) of its nodes until the bucket stops changing, and then
//! relaxes the *heavy* edges (weight > Δ) of every node settled in the bucket
//! once. Small `Δ` approaches Dijkstra (little work, many phases); large `Δ`
//! approaches Bellman-Ford (few phases, much work).
//!
//! # The bucket ring
//!
//! The production engine ([`delta_stepping`] /
//! [`delta_stepping_with_scratch`]) keeps the buckets in a *cyclic array*
//! rather than an ordered map: bucket `b` lives in ring slot
//! `b mod ring_size`, where `ring_size` covers the largest bucket jump a
//! single relaxation can make (`⌈max_weight / Δ⌉ + 1`, capped). Because every
//! relaxation from bucket `b` lands in a bucket `≥ b`, the slot of a settled
//! bucket is empty before any later bucket with the same residue can be
//! filled, so slots are never shared between live buckets. Entries whose
//! bucket index lies beyond the ring horizon go to an overflow list and are
//! pulled back in (lazily, tracked by the minimum overflow bucket) as the
//! frontier advances. All of this state lives in a reusable [`SsspScratch`]:
//! tentative distances in atomic fetch-min cells
//! ([`cldiam_graph::atomic::MinDistCells`], the same unsafe-free CAS
//! machinery the Δ-growing hot path relaxes through), the ring, and the
//! touched bookkeeping — so repeated runs (multi-source batches, Δ-grid
//! sweeps) perform no per-run allocations beyond the returned distance
//! vector, and resets cost `O(reached)`, never `O(n)`.
//!
//! # Determinism
//!
//! Relaxation requests of a phase are generated in parallel from a pre-phase
//! snapshot of the frontier's distances and applied *in place* with an atomic
//! `fetch_min` per target. A `min` is commutative and associative, so the
//! post-phase distance of every node — and therefore the set of improved
//! nodes, the bucket structure, and every counter below — is a pure function
//! of the pre-phase state: the output is bit-identical at any thread count
//! and matches the sequential reference. The per-phase improved set is
//! collected through a touched-bitmap exactly like the Δ-growing scratch and
//! re-bucketed sequentially in ascending node order.
//!
//! In the MapReduce cost model adopted by the paper, each light-relaxation
//! sub-phase and each heavy-relaxation phase is one round; the messages are
//! the relaxation requests generated and the node updates are the tentative
//! distance improvements applied. These are charged to an optional
//! [`CostTracker`] and also returned in the [`DeltaSteppingOutcome`]. One
//! deliberate difference from the map-based reference
//! ([`delta_stepping_reference`], kept in-tree for the equivalence suites):
//! `updates` counts *distinct nodes improved per phase* — a
//! scheduling-independent quantity, the same semantics as the growing path's
//! `StepStats::updates` — where the reference counted every improving
//! request of its sequential apply loop. Distances and `phases` are pinned
//! bit-identical between the two by the property tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use cldiam_mr::CostTracker;
use rayon::prelude::*;

use cldiam_graph::{CancelToken, Dist, MinDistCells, NeighborSource, NodeId, Weight, INFINITY};

/// Result of a Δ-stepping run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSteppingOutcome {
    /// Source node.
    pub source: NodeId,
    /// Bucket width used.
    pub delta: Weight,
    /// Shortest-path distances ([`INFINITY`] for unreachable nodes).
    pub dist: Vec<Dist>,
    /// Number of relaxation phases (MapReduce rounds).
    pub phases: u64,
    /// Number of relaxation requests generated (messages).
    pub relaxations: u64,
    /// Number of tentative-distance improvements applied (node updates). The
    /// bucket-array engine counts distinct improved nodes per phase (see the
    /// module docs); the reference counts improving requests.
    pub updates: u64,
    /// `true` when a [`CancelToken`] stopped the run at a bucket boundary.
    /// The distances then are *tentative*: every finite entry is a valid
    /// upper bound on the true shortest-path distance (relaxation only ever
    /// improves), but entries may exceed it and unreached nodes stay
    /// [`INFINITY`]. Uninterruptible callers always see `false`.
    pub interrupted: bool,
}

impl DeltaSteppingOutcome {
    /// Largest finite distance — the weighted eccentricity of the source.
    pub fn eccentricity(&self) -> Dist {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// The paper's *work* measure for this run.
    pub fn work(&self) -> u64 {
        self.relaxations + self.updates
    }
}

/// Minimum frontier nodes per parallel chunk during relaxation-request
/// generation. Relaxation phases are numerous and often tiny; below this many
/// nodes per chunk, splitting costs more than it buys. Chunk-ordered
/// recombination keeps the output identical either way.
const PAR_MIN_FRONTIER: usize = 32;

/// Upper bound on the cyclic bucket array length. A ring of
/// `⌈max_weight / Δ⌉ + 1` slots makes the overflow list unreachable, but for
/// tiny `Δ` on heavy graphs that is absurdly large; beyond this cap, far
/// relaxations take the overflow path instead.
const RING_CAP: usize = 1024;

/// A reasonable default bucket width: the average edge weight (clamped to at
/// least 1). The benchmark harness additionally sweeps `Δ` over a grid and
/// keeps the best-performing value, as the paper does.
pub fn suggest_delta<G: NeighborSource>(graph: &G) -> Weight {
    graph.avg_weight().unwrap_or(1).max(1)
}

/// Reusable state for the bucket-array Δ-stepping engine: atomic tentative
/// distances, the cyclic bucket ring with its overflow list, and the
/// touched/settled bookkeeping. One scratch serves any number of runs, on
/// graphs of any size (buffers grow monotonically and resets touch only what
/// the previous run reached) — allocate it once per worker and thread it
/// through every [`delta_stepping_with_scratch`] call.
#[derive(Debug, Default)]
pub struct SsspScratch {
    /// Tentative distances in atomic fetch-min cells.
    dist: MinDistCells,
    /// `true` while a node holds a finite tentative distance this run.
    seen: Vec<bool>,
    /// Every node reached this run, for the `O(reached)` reset.
    reached: Vec<NodeId>,
    /// The cyclic bucket array: bucket `b` lives in slot `b % ring.len()`.
    ring: Vec<Vec<NodeId>>,
    /// Entries queued across all ring slots.
    ring_len: usize,
    /// Entries whose bucket lies beyond the ring horizon.
    overflow: Vec<NodeId>,
    /// Per-phase "already collected as improved" marks.
    touched: Vec<AtomicBool>,
    /// Collection buffer for a phase's improved nodes.
    slots: Vec<AtomicU32>,
    /// Number of valid entries in `slots` for the current phase.
    slot_len: AtomicUsize,
    /// Current phase's frontier after lazy deletion.
    active: Vec<NodeId>,
    /// Raw entries drained from the current bucket slot.
    pending: Vec<NodeId>,
    /// Sorted improved nodes of the last phase.
    improved: Vec<NodeId>,
    /// Nodes settled in the current bucket (relaxed at least once as light
    /// frontier), deduplicated via `in_settled`.
    settled: Vec<NodeId>,
    in_settled: Vec<bool>,
    /// Pre-phase distance snapshot of `active` / `settled`.
    snap: Vec<Dist>,
}

impl SsspScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut scratch = Self::default();
        scratch.ensure(n);
        scratch
    }

    fn ensure(&mut self, n: usize) {
        self.dist.ensure(n);
        if self.seen.len() < n {
            self.seen.resize(n, false);
            self.in_settled.resize(n, false);
            let grow = n - self.touched.len();
            self.touched.reserve(grow);
            self.slots.reserve(grow);
            while self.touched.len() < n {
                self.touched.push(AtomicBool::new(false));
                self.slots.push(AtomicU32::new(0));
            }
        }
    }

    /// Resets the previous run's tentative distances — `O(reached)`.
    fn reset(&mut self) {
        for v in self.reached.drain(..) {
            self.dist.store(v as usize, INFINITY);
            self.seen[v as usize] = false;
        }
        for slot in &mut self.ring {
            slot.clear();
        }
        self.ring_len = 0;
        self.overflow.clear();
    }

    /// Tentative distance of `v` from the most recent run ([`INFINITY`] if
    /// unreachable). Valid until the next run on this scratch.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Dist {
        self.dist.load(v as usize)
    }

    /// Largest finite distance of the most recent run — the weighted
    /// eccentricity of its source. `O(reached)`.
    pub fn eccentricity(&self) -> Dist {
        self.reached.iter().map(|&v| self.dist.load(v as usize)).max().unwrap_or(0)
    }

    /// Copies the most recent run's distances for a graph of `n` nodes into a
    /// fresh vector.
    fn export_dist(&self, n: usize) -> Vec<Dist> {
        (0..n).map(|v| self.dist.load(v)).collect()
    }

    /// Sorts the improved nodes of the finished phase into `improved`, clears
    /// their phase marks, and registers first-time reaches. Returns how many
    /// nodes were improved.
    fn collect_improved(&mut self) -> usize {
        let count = self.slot_len.swap(0, Ordering::Relaxed);
        self.improved.clear();
        self.improved.extend(self.slots[..count].iter().map(|slot| slot.load(Ordering::Relaxed)));
        self.improved.sort_unstable();
        for &v in &self.improved {
            self.touched[v as usize].store(false, Ordering::Relaxed);
            if !self.seen[v as usize] {
                self.seen[v as usize] = true;
                self.reached.push(v);
            }
        }
        count
    }
}

/// One parallel relaxation phase: for every frontier index `i`, relax the
/// light (`heavy == false`) or heavy (`heavy == true`) edges of
/// `active[i]` from the snapshot distance `snap[i]`, fetch-min-ing targets in
/// place and collecting first-improvements-of-the-phase through the touched
/// bitmap. Returns the number of relaxation requests generated.
#[allow(clippy::too_many_arguments)] // hot loop over destructured scratch fields
fn relax_phase<G: NeighborSource>(
    graph: &G,
    active: &[NodeId],
    snap: &[Dist],
    delta_dist: Dist,
    heavy: bool,
    dist: &MinDistCells,
    touched: &[AtomicBool],
    slots: &[AtomicU32],
    slot_len: &AtomicUsize,
) -> u64 {
    (0..active.len())
        .into_par_iter()
        .with_min_len(PAR_MIN_FRONTIER)
        .map(|i| {
            let u = active[i];
            let du = snap[i];
            let mut requests = 0u64;
            // Internal iteration: the compressed tier's block decoder folds
            // this closure into one tight per-coding loop.
            graph.neighbors(u).for_each(|(v, w)| {
                let wd = Dist::from(w);
                if (wd > delta_dist) != heavy {
                    return;
                }
                requests += 1;
                let cand = du + wd;
                let prev = dist.fetch_min(v as usize, cand);
                if prev > cand && !touched[v as usize].swap(true, Ordering::Relaxed) {
                    let slot = slot_len.fetch_add(1, Ordering::Relaxed);
                    slots[slot].store(v, Ordering::Relaxed);
                }
            });
            requests
        })
        .sum()
}

/// Runs Δ-stepping from `source` with bucket width `delta` on the cyclic
/// bucket-array engine, reusing `scratch` across calls.
///
/// Light-edge relaxation requests are generated in parallel (rayon) from a
/// pre-phase snapshot and applied with atomic fetch-min cells, so the
/// distance output — and every counter — is independent of the number of
/// threads (see the module docs). Cost metrics are charged to `tracker` when
/// provided.
///
/// # Panics
///
/// Panics if `source` is out of range or `delta` is zero.
pub fn delta_stepping_with_scratch<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: Weight,
    tracker: Option<&CostTracker>,
    scratch: &mut SsspScratch,
) -> DeltaSteppingOutcome {
    delta_stepping_with_scratch_cancel(
        graph,
        source,
        delta,
        tracker,
        scratch,
        &CancelToken::never(),
    )
}

/// [`delta_stepping_with_scratch`] with a cooperative [`CancelToken`],
/// polled once per settled bucket. An interrupted run reports
/// `interrupted = true` and tentative distances that are sound per-node
/// upper bounds (see [`DeltaSteppingOutcome::interrupted`]); buckets are
/// settled in ascending order, so for a fixed logical check cadence the
/// degraded output is deterministic at any thread count.
///
/// # Panics
///
/// Panics if `source` is out of range or `delta` is zero.
pub fn delta_stepping_with_scratch_cancel<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: Weight,
    tracker: Option<&CostTracker>,
    scratch: &mut SsspScratch,
    cancel: &CancelToken,
) -> DeltaSteppingOutcome {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range (n = {n})");
    assert!(delta >= 1, "delta must be positive");
    let delta_dist = Dist::from(delta);

    scratch.ensure(n);
    scratch.reset();

    // Size the ring to the largest single-relaxation bucket jump (capped);
    // a larger ring from an earlier run is kept — it only reduces overflow.
    let max_jump = Dist::from(graph.max_weight().unwrap_or(1)) / delta_dist + 2;
    let desired = usize::try_from(max_jump).unwrap_or(RING_CAP).min(RING_CAP);
    if scratch.ring.len() < desired {
        scratch.ring.resize_with(desired, Vec::new);
    }
    let ring_size = scratch.ring.len() as u64;

    let mut phases = 0u64;
    let mut relaxations = 0u64;
    let mut updates = 0u64;

    scratch.dist.store(source as usize, 0);
    scratch.seen[source as usize] = true;
    scratch.reached.push(source);
    scratch.ring[0].push(source);
    scratch.ring_len = 1;

    // All buckets below `base` are settled; `overflow_min` is a lower bound
    // on the smallest bucket index present in the overflow list.
    let mut base: u64 = 0;
    let mut overflow_min: u64 = u64::MAX;

    // Re-buckets an improved node at its post-phase distance.
    fn rebucket(
        scratch: &mut SsspScratch,
        v: NodeId,
        base: u64,
        ring_size: u64,
        delta_dist: Dist,
        overflow_min: &mut u64,
    ) {
        let b = scratch.dist.load(v as usize) / delta_dist;
        debug_assert!(b >= base, "relaxation moved a node into a settled bucket");
        if b < base + ring_size {
            scratch.ring[(b % ring_size) as usize].push(v);
            scratch.ring_len += 1;
        } else {
            scratch.overflow.push(v);
            *overflow_min = (*overflow_min).min(b);
        }
    }

    // Moves overflow entries whose bucket fell inside the ring horizon into
    // the ring; drops stale entries (node improved and re-bucketed earlier).
    fn drain_overflow(scratch: &mut SsspScratch, base: u64, delta_dist: Dist) -> u64 {
        let ring_size = scratch.ring.len() as u64;
        let mut new_min = u64::MAX;
        let mut kept = 0;
        for i in 0..scratch.overflow.len() {
            let v = scratch.overflow[i];
            let b = scratch.dist.load(v as usize) / delta_dist;
            if b < base {
                continue; // stale: settled under a fresher ring entry
            } else if b < base + ring_size {
                scratch.ring[(b % ring_size) as usize].push(v);
                scratch.ring_len += 1;
            } else {
                scratch.overflow[kept] = v;
                kept += 1;
                new_min = new_min.min(b);
            }
        }
        scratch.overflow.truncate(kept);
        new_min
    }

    let mut interrupted = false;
    loop {
        // Bucket boundary: the cheapest consistent point to stop — every
        // applied relaxation is committed, nothing is in flight.
        if cancel.checkpoint() {
            interrupted = true;
            break;
        }
        // Pull overflow entries the advancing horizon now covers.
        if overflow_min < base + ring_size {
            overflow_min = drain_overflow(scratch, base, delta_dist);
        }
        // Find the next non-empty bucket. All live ring entries sit in
        // [base, base + ring_size), so the scan is bounded by the ring.
        let bucket_idx = if scratch.ring_len > 0 {
            let mut b = base;
            while scratch.ring[(b % ring_size) as usize].is_empty() {
                b += 1;
            }
            b
        } else if scratch.overflow.is_empty() {
            break;
        } else {
            base = overflow_min;
            overflow_min = drain_overflow(scratch, base, delta_dist);
            continue;
        };
        base = bucket_idx;
        let slot = (bucket_idx % ring_size) as usize;

        // Light phases: repeat until bucket `bucket_idx` stops receiving
        // nodes. Nodes re-inserted into the same bucket by an improvement are
        // relaxed again, exactly as in Meyer & Sanders.
        loop {
            let drained = scratch.ring[slot].len();
            scratch.pending.clear();
            let (pending, ring) = (&mut scratch.pending, &mut scratch.ring);
            pending.append(&mut ring[slot]);
            scratch.ring_len -= drained;
            // Lazy deletion: keep only nodes whose tentative distance still
            // falls in this bucket (stale entries are skipped).
            scratch.active.clear();
            let (active, pending, dist) = (&mut scratch.active, &scratch.pending, &scratch.dist);
            active.extend(
                pending.iter().copied().filter(|&v| dist.load(v as usize) / delta_dist == base),
            );
            if scratch.active.is_empty() {
                break;
            }
            phases += 1;
            scratch.snap.clear();
            let (snap, active, dist) = (&mut scratch.snap, &scratch.active, &scratch.dist);
            snap.extend(active.iter().map(|&u| dist.load(u as usize)));
            for i in 0..scratch.active.len() {
                let u = scratch.active[i];
                if !scratch.in_settled[u as usize] {
                    scratch.in_settled[u as usize] = true;
                    scratch.settled.push(u);
                }
            }
            relaxations += relax_phase(
                graph,
                &scratch.active,
                &scratch.snap,
                delta_dist,
                false,
                &scratch.dist,
                &scratch.touched,
                &scratch.slots,
                &scratch.slot_len,
            );
            updates += scratch.collect_improved() as u64;
            for i in 0..scratch.improved.len() {
                let v = scratch.improved[i];
                rebucket(scratch, v, base, ring_size, delta_dist, &mut overflow_min);
            }
            if scratch.ring[slot].is_empty() {
                break;
            }
        }

        // Heavy phase: relax heavy edges of every node settled in the bucket.
        if !scratch.settled.is_empty() {
            phases += 1;
            scratch.snap.clear();
            let (snap, settled, dist) = (&mut scratch.snap, &scratch.settled, &scratch.dist);
            snap.extend(settled.iter().map(|&u| dist.load(u as usize)));
            relaxations += relax_phase(
                graph,
                &scratch.settled,
                &scratch.snap,
                delta_dist,
                true,
                &scratch.dist,
                &scratch.touched,
                &scratch.slots,
                &scratch.slot_len,
            );
            updates += scratch.collect_improved() as u64;
            for i in 0..scratch.improved.len() {
                let v = scratch.improved[i];
                rebucket(scratch, v, base + 1, ring_size, delta_dist, &mut overflow_min);
            }
            for i in 0..scratch.settled.len() {
                let u = scratch.settled[i];
                scratch.in_settled[u as usize] = false;
            }
            scratch.settled.clear();
        }
        base = bucket_idx + 1;
    }

    if let Some(t) = tracker {
        t.add_rounds(phases);
        t.add_messages(relaxations);
        t.add_node_updates(updates);
    }

    DeltaSteppingOutcome {
        source,
        delta,
        dist: scratch.export_dist(n),
        phases,
        relaxations,
        updates,
        interrupted,
    }
}

/// Runs Δ-stepping from `source` with bucket width `delta` on a fresh
/// [`SsspScratch`]. Callers issuing many runs (multi-source batches, Δ-grid
/// sweeps) should hold a scratch and use [`delta_stepping_with_scratch`].
///
/// # Panics
///
/// Panics if `source` is out of range or `delta` is zero.
pub fn delta_stepping<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: Weight,
    tracker: Option<&CostTracker>,
) -> DeltaSteppingOutcome {
    let mut scratch = SsspScratch::with_capacity(graph.num_nodes());
    delta_stepping_with_scratch(graph, source, delta, tracker, &mut scratch)
}

/// The original `BTreeMap`-bucketed Δ-stepping, kept as an executable
/// reference for the bucket-array engine: the equivalence property tests pin
/// `dist` and `phases` bit-identical between the two on every graph family.
/// Its `updates` counter tallies improving requests in sequential apply
/// order (see the module docs for why the engine counts improved nodes
/// instead). Production code must use [`delta_stepping`].
pub fn delta_stepping_reference<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: Weight,
    tracker: Option<&CostTracker>,
) -> DeltaSteppingOutcome {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range (n = {n})");
    assert!(delta >= 1, "delta must be positive");
    let delta_dist = Dist::from(delta);

    let mut dist = vec![INFINITY; n];
    let mut buckets: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    let mut phases = 0u64;
    let mut relaxations = 0u64;
    let mut updates = 0u64;

    dist[source as usize] = 0;
    buckets.entry(0).or_default().push(source);

    // Applies a batch of relaxation requests; returns nodes whose tentative
    // distance improved, so the caller can re-bucket them.
    let apply = |requests: Vec<(NodeId, Dist)>,
                 dist: &mut Vec<Dist>,
                 buckets: &mut BTreeMap<u64, Vec<NodeId>>,
                 relaxations: &mut u64,
                 updates: &mut u64| {
        *relaxations += requests.len() as u64;
        for (v, d) in requests {
            if d < dist[v as usize] {
                dist[v as usize] = d;
                *updates += 1;
                buckets.entry(d / delta_dist).or_default().push(v);
            }
        }
    };

    // Marks nodes already recorded in the current bucket's settled set, so the
    // heavy phase relaxes each of them exactly once. Flags are cleared after
    // every bucket (touching only the settled nodes, not all of `n`).
    let mut in_settled = vec![false; n];

    while let Some((&bucket_idx, _)) = buckets.iter().next() {
        let mut settled: Vec<NodeId> = Vec::new();
        // Light phases: repeat until bucket `bucket_idx` stops receiving nodes.
        // Nodes re-inserted into the same bucket by an improvement are relaxed
        // again, exactly as in Meyer & Sanders.
        while let Some(current) = buckets.remove(&bucket_idx) {
            // Lazy deletion: keep only nodes whose tentative distance still
            // falls in this bucket (stale entries are skipped).
            let active: Vec<NodeId> = current
                .into_iter()
                .filter(|&v| {
                    dist[v as usize] != INFINITY && dist[v as usize] / delta_dist == bucket_idx
                })
                .collect();
            if active.is_empty() {
                continue;
            }
            phases += 1;
            // Small frontiers stay on one chunk (the min-len hint) so the
            // many short light phases do not pay per-phase scheduling costs.
            let requests: Vec<(NodeId, Dist)> = active
                .par_iter()
                .with_min_len(PAR_MIN_FRONTIER)
                .flat_map_iter(|&u| {
                    let du = dist[u as usize];
                    graph
                        .neighbors(u)
                        .filter(|&(_, w)| Dist::from(w) <= delta_dist)
                        .map(move |(v, w)| (v, du + Dist::from(w)))
                        .collect::<Vec<_>>()
                })
                .collect();
            for &u in &active {
                if !in_settled[u as usize] {
                    in_settled[u as usize] = true;
                    settled.push(u);
                }
            }
            apply(requests, &mut dist, &mut buckets, &mut relaxations, &mut updates);
            if !buckets.contains_key(&bucket_idx) {
                break;
            }
        }
        // Heavy phase: relax heavy edges of every node settled in the bucket.
        if !settled.is_empty() {
            phases += 1;
            let requests: Vec<(NodeId, Dist)> = settled
                .par_iter()
                .with_min_len(PAR_MIN_FRONTIER)
                .flat_map_iter(|&u| {
                    let du = dist[u as usize];
                    graph
                        .neighbors(u)
                        .filter(|&(_, w)| Dist::from(w) > delta_dist)
                        .map(move |(v, w)| (v, du + Dist::from(w)))
                        .collect::<Vec<_>>()
                })
                .collect();
            apply(requests, &mut dist, &mut buckets, &mut relaxations, &mut updates);
        }
        for u in settled {
            in_settled[u as usize] = false;
        }
    }

    if let Some(t) = tracker {
        t.add_rounds(phases);
        t.add_messages(relaxations);
        t.add_node_updates(updates);
    }

    DeltaSteppingOutcome { source, delta, dist, phases, relaxations, updates, interrupted: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use cldiam_gen::{mesh, preferential_attachment, WeightModel};
    use cldiam_graph::Graph;

    fn check_against_dijkstra(
        graph: &Graph,
        source: NodeId,
        delta: Weight,
    ) -> DeltaSteppingOutcome {
        let expected = dijkstra(graph, source);
        let outcome = delta_stepping(graph, source, delta, None);
        assert_eq!(outcome.dist, expected.dist, "delta = {delta}");
        let reference = delta_stepping_reference(graph, source, delta, None);
        assert_eq!(outcome.dist, reference.dist, "engine vs reference, delta = {delta}");
        assert_eq!(outcome.phases, reference.phases, "phases diverged at delta = {delta}");
        outcome
    }

    #[test]
    fn matches_dijkstra_on_weighted_mesh() {
        let g = mesh(12, WeightModel::UniformUnit, 3);
        for delta in [1, 1_000, 100_000, 1_000_000] {
            check_against_dijkstra(&g, 0, delta);
        }
    }

    #[test]
    fn matches_dijkstra_on_social_graph() {
        let g = preferential_attachment(500, 3, WeightModel::UniformUnit, 5);
        for delta in [10_000, 500_000] {
            check_against_dijkstra(&g, 42, delta);
        }
    }

    #[test]
    fn matches_dijkstra_with_disconnected_nodes() {
        let g = Graph::from_edges(5, &[(0, 1, 3), (1, 2, 4)]);
        let outcome = check_against_dijkstra(&g, 0, 2);
        assert_eq!(outcome.dist[4], INFINITY);
        assert_eq!(outcome.eccentricity(), 7);
    }

    #[test]
    fn tiny_delta_on_heavy_weights_exercises_the_overflow_path() {
        // Weights up to 50_000 with Δ = 1 make every relaxation jump far past
        // the capped ring horizon, so every queued node takes the overflow
        // detour at least once.
        let g = Graph::from_edges(
            6,
            &[(0, 1, 50_000), (1, 2, 1), (0, 3, 20_000), (3, 4, 40_000), (4, 2, 1), (2, 5, 9_999)],
        );
        check_against_dijkstra(&g, 0, 1);
        check_against_dijkstra(&g, 2, 3);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_runs_and_graphs() {
        let small = mesh(6, WeightModel::UniformUnit, 2);
        let big = mesh(10, WeightModel::UniformUnit, 3);
        let mut scratch = SsspScratch::new();
        // Interleave graphs and sources; every reused run must equal a
        // fresh-scratch run bit for bit.
        for (graph, source, delta) in
            [(&big, 0u32, 400_000u32), (&small, 5, 1_000), (&big, 17, 50_000), (&small, 0, 1)]
        {
            let reused = delta_stepping_with_scratch(graph, source, delta, None, &mut scratch);
            let fresh = delta_stepping(graph, source, delta, None);
            assert_eq!(reused, fresh);
            assert_eq!(scratch.eccentricity(), fresh.eccentricity());
            assert_eq!(scratch.distance(source), 0);
        }
    }

    #[test]
    fn small_delta_means_more_phases_than_large_delta() {
        let g = mesh(16, WeightModel::UniformUnit, 9);
        let fine = delta_stepping(&g, 0, 1_000, None);
        let coarse = delta_stepping(&g, 0, 1_000_000, None);
        assert!(fine.phases > coarse.phases, "fine {} vs coarse {}", fine.phases, coarse.phases);
    }

    #[test]
    fn large_delta_means_at_least_as_much_work() {
        let g = mesh(16, WeightModel::UniformUnit, 9);
        let fine = delta_stepping(&g, 0, 10_000, None);
        let coarse = delta_stepping(&g, 0, 1_000_000, None);
        assert!(coarse.work() >= fine.work(), "coarse {} fine {}", coarse.work(), fine.work());
    }

    #[test]
    fn charges_cost_tracker() {
        let g = mesh(8, WeightModel::UniformUnit, 1);
        let tracker = CostTracker::new();
        let outcome = delta_stepping(&g, 0, 500_000, Some(&tracker));
        let snap = tracker.snapshot();
        assert_eq!(snap.rounds, outcome.phases);
        assert_eq!(snap.messages, outcome.relaxations);
        assert_eq!(snap.node_updates, outcome.updates);
        assert!(snap.rounds > 0);
    }

    #[test]
    fn reference_charges_cost_tracker() {
        let g = mesh(8, WeightModel::UniformUnit, 1);
        let tracker = CostTracker::new();
        let outcome = delta_stepping_reference(&g, 0, 500_000, Some(&tracker));
        let snap = tracker.snapshot();
        assert_eq!(snap.rounds, outcome.phases);
        assert_eq!(snap.messages, outcome.relaxations);
        assert_eq!(snap.node_updates, outcome.updates);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let g = Graph::from_edges(2, &[(0, 1, 1)]);
        delta_stepping(&g, 0, 0, None);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn reference_rejects_zero_delta() {
        let g = Graph::from_edges(2, &[(0, 1, 1)]);
        delta_stepping_reference(&g, 0, 0, None);
    }

    #[test]
    fn cancelled_run_reports_tentative_upper_bound_distances() {
        let g = mesh(10, WeightModel::UniformUnit, 7);
        let exact = dijkstra(&g, 0);
        let cancel = cldiam_graph::CancelToken::with_check_limit(3);
        let mut scratch = SsspScratch::new();
        let outcome = delta_stepping_with_scratch_cancel(&g, 0, 1_000, None, &mut scratch, &cancel);
        assert!(outcome.interrupted);
        assert_eq!(outcome.dist[0], 0);
        for (v, (&got, &want)) in outcome.dist.iter().zip(exact.dist.iter()).enumerate() {
            assert!(got >= want, "node {v}: tentative {got} below exact {want}");
        }
        // Reruns with a fresh token of the same cadence are bit-identical.
        let mut scratch2 = SsspScratch::new();
        let again = delta_stepping_with_scratch_cancel(
            &g,
            0,
            1_000,
            None,
            &mut scratch2,
            &cldiam_graph::CancelToken::with_check_limit(3),
        );
        assert_eq!(outcome, again);
        // An uncancelled run on the reused scratch still matches Dijkstra.
        let full = delta_stepping_with_scratch(&g, 0, 1_000, None, &mut scratch);
        assert!(!full.interrupted);
        assert_eq!(full.dist, exact.dist);
    }

    #[test]
    fn suggest_delta_is_average_weight() {
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 30)]);
        assert_eq!(suggest_delta(&g), 20);
        assert_eq!(suggest_delta(&Graph::empty(2)), 1);
    }
}
