//! Parallel Δ-stepping SSSP (Meyer & Sanders, J. Algorithms 2003) — the
//! paper's baseline competitor.
//!
//! Tentative distances are kept in buckets of width `Δ`. The algorithm
//! repeatedly takes the non-empty bucket of smallest index, relaxes *light*
//! edges (weight ≤ Δ) of its nodes until the bucket stops changing, and then
//! relaxes the *heavy* edges (weight > Δ) of every node settled in the bucket
//! once. Small `Δ` approaches Dijkstra (little work, many phases); large `Δ`
//! approaches Bellman-Ford (few phases, much work).
//!
//! In the MapReduce cost model adopted by the paper, each light-relaxation
//! sub-phase and each heavy-relaxation phase is one round; the messages are
//! the relaxation requests generated and the node updates are the tentative
//! distance improvements applied. These are charged to an optional
//! [`CostTracker`] and also returned in the [`DeltaSteppingOutcome`].

use std::collections::BTreeMap;

use cldiam_mr::CostTracker;
use rayon::prelude::*;

use cldiam_graph::{Dist, Graph, NodeId, Weight, INFINITY};

/// Result of a Δ-stepping run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSteppingOutcome {
    /// Source node.
    pub source: NodeId,
    /// Bucket width used.
    pub delta: Weight,
    /// Shortest-path distances ([`INFINITY`] for unreachable nodes).
    pub dist: Vec<Dist>,
    /// Number of relaxation phases (MapReduce rounds).
    pub phases: u64,
    /// Number of relaxation requests generated (messages).
    pub relaxations: u64,
    /// Number of tentative-distance improvements applied (node updates).
    pub updates: u64,
}

impl DeltaSteppingOutcome {
    /// Largest finite distance — the weighted eccentricity of the source.
    pub fn eccentricity(&self) -> Dist {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// The paper's *work* measure for this run.
    pub fn work(&self) -> u64 {
        self.relaxations + self.updates
    }
}

/// Minimum frontier nodes per parallel chunk during relaxation-request
/// generation. Relaxation phases are numerous and often tiny; below this many
/// nodes per chunk, splitting costs more than it buys. Chunk-ordered
/// recombination keeps the output identical either way.
const PAR_MIN_FRONTIER: usize = 32;

/// A reasonable default bucket width: the average edge weight (clamped to at
/// least 1). The benchmark harness additionally sweeps `Δ` over a grid and
/// keeps the best-performing value, as the paper does.
pub fn suggest_delta(graph: &Graph) -> Weight {
    graph.avg_weight().unwrap_or(1).max(1)
}

/// Runs Δ-stepping from `source` with bucket width `delta`.
///
/// Light-edge relaxation requests are generated in parallel (rayon) and
/// applied with a deterministic min-reduction, so the distance output is
/// independent of the number of threads. Cost metrics are charged to
/// `tracker` when provided.
///
/// # Panics
///
/// Panics if `source` is out of range or `delta` is zero.
pub fn delta_stepping(
    graph: &Graph,
    source: NodeId,
    delta: Weight,
    tracker: Option<&CostTracker>,
) -> DeltaSteppingOutcome {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range (n = {n})");
    assert!(delta >= 1, "delta must be positive");
    let delta_dist = Dist::from(delta);

    let mut dist = vec![INFINITY; n];
    let mut buckets: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    let mut phases = 0u64;
    let mut relaxations = 0u64;
    let mut updates = 0u64;

    dist[source as usize] = 0;
    buckets.entry(0).or_default().push(source);

    // Applies a batch of relaxation requests; returns nodes whose tentative
    // distance improved, so the caller can re-bucket them.
    let apply = |requests: Vec<(NodeId, Dist)>,
                 dist: &mut Vec<Dist>,
                 buckets: &mut BTreeMap<u64, Vec<NodeId>>,
                 relaxations: &mut u64,
                 updates: &mut u64| {
        *relaxations += requests.len() as u64;
        for (v, d) in requests {
            if d < dist[v as usize] {
                dist[v as usize] = d;
                *updates += 1;
                buckets.entry(d / delta_dist).or_default().push(v);
            }
        }
    };

    // Marks nodes already recorded in the current bucket's settled set, so the
    // heavy phase relaxes each of them exactly once. Flags are cleared after
    // every bucket (touching only the settled nodes, not all of `n`).
    let mut in_settled = vec![false; n];

    while let Some((&bucket_idx, _)) = buckets.iter().next() {
        let mut settled: Vec<NodeId> = Vec::new();
        // Light phases: repeat until bucket `bucket_idx` stops receiving nodes.
        // Nodes re-inserted into the same bucket by an improvement are relaxed
        // again, exactly as in Meyer & Sanders.
        while let Some(current) = buckets.remove(&bucket_idx) {
            // Lazy deletion: keep only nodes whose tentative distance still
            // falls in this bucket (stale entries are skipped).
            let active: Vec<NodeId> = current
                .into_iter()
                .filter(|&v| {
                    dist[v as usize] != INFINITY && dist[v as usize] / delta_dist == bucket_idx
                })
                .collect();
            if active.is_empty() {
                continue;
            }
            phases += 1;
            // Small frontiers stay on one chunk (the min-len hint) so the
            // many short light phases do not pay per-phase scheduling costs.
            let requests: Vec<(NodeId, Dist)> = active
                .par_iter()
                .with_min_len(PAR_MIN_FRONTIER)
                .flat_map_iter(|&u| {
                    let du = dist[u as usize];
                    graph
                        .neighbors(u)
                        .filter(|&(_, w)| Dist::from(w) <= delta_dist)
                        .map(move |(v, w)| (v, du + Dist::from(w)))
                        .collect::<Vec<_>>()
                })
                .collect();
            for &u in &active {
                if !in_settled[u as usize] {
                    in_settled[u as usize] = true;
                    settled.push(u);
                }
            }
            apply(requests, &mut dist, &mut buckets, &mut relaxations, &mut updates);
            if !buckets.contains_key(&bucket_idx) {
                break;
            }
        }
        // Heavy phase: relax heavy edges of every node settled in this bucket.
        if !settled.is_empty() {
            phases += 1;
            let requests: Vec<(NodeId, Dist)> = settled
                .par_iter()
                .with_min_len(PAR_MIN_FRONTIER)
                .flat_map_iter(|&u| {
                    let du = dist[u as usize];
                    graph
                        .neighbors(u)
                        .filter(|&(_, w)| Dist::from(w) > delta_dist)
                        .map(move |(v, w)| (v, du + Dist::from(w)))
                        .collect::<Vec<_>>()
                })
                .collect();
            apply(requests, &mut dist, &mut buckets, &mut relaxations, &mut updates);
        }
        for u in settled {
            in_settled[u as usize] = false;
        }
    }

    if let Some(t) = tracker {
        t.add_rounds(phases);
        t.add_messages(relaxations);
        t.add_node_updates(updates);
    }

    DeltaSteppingOutcome { source, delta, dist, phases, relaxations, updates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use cldiam_gen::{mesh, preferential_attachment, WeightModel};

    fn check_against_dijkstra(
        graph: &Graph,
        source: NodeId,
        delta: Weight,
    ) -> DeltaSteppingOutcome {
        let expected = dijkstra(graph, source);
        let outcome = delta_stepping(graph, source, delta, None);
        assert_eq!(outcome.dist, expected.dist, "delta = {delta}");
        outcome
    }

    #[test]
    fn matches_dijkstra_on_weighted_mesh() {
        let g = mesh(12, WeightModel::UniformUnit, 3);
        for delta in [1, 1_000, 100_000, 1_000_000] {
            check_against_dijkstra(&g, 0, delta);
        }
    }

    #[test]
    fn matches_dijkstra_on_social_graph() {
        let g = preferential_attachment(500, 3, WeightModel::UniformUnit, 5);
        for delta in [10_000, 500_000] {
            check_against_dijkstra(&g, 42, delta);
        }
    }

    #[test]
    fn matches_dijkstra_with_disconnected_nodes() {
        let g = Graph::from_edges(5, &[(0, 1, 3), (1, 2, 4)]);
        let outcome = check_against_dijkstra(&g, 0, 2);
        assert_eq!(outcome.dist[4], INFINITY);
        assert_eq!(outcome.eccentricity(), 7);
    }

    #[test]
    fn small_delta_means_more_phases_than_large_delta() {
        let g = mesh(16, WeightModel::UniformUnit, 9);
        let fine = delta_stepping(&g, 0, 1_000, None);
        let coarse = delta_stepping(&g, 0, 1_000_000, None);
        assert!(fine.phases > coarse.phases, "fine {} vs coarse {}", fine.phases, coarse.phases);
    }

    #[test]
    fn large_delta_means_at_least_as_much_work() {
        let g = mesh(16, WeightModel::UniformUnit, 9);
        let fine = delta_stepping(&g, 0, 10_000, None);
        let coarse = delta_stepping(&g, 0, 1_000_000, None);
        assert!(coarse.work() >= fine.work(), "coarse {} fine {}", coarse.work(), fine.work());
    }

    #[test]
    fn charges_cost_tracker() {
        let g = mesh(8, WeightModel::UniformUnit, 1);
        let tracker = CostTracker::new();
        let outcome = delta_stepping(&g, 0, 500_000, Some(&tracker));
        let snap = tracker.snapshot();
        assert_eq!(snap.rounds, outcome.phases);
        assert_eq!(snap.messages, outcome.relaxations);
        assert_eq!(snap.node_updates, outcome.updates);
        assert!(snap.rounds > 0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let g = Graph::from_edges(2, &[(0, 1, 1)]);
        delta_stepping(&g, 0, 0, None);
    }

    #[test]
    fn suggest_delta_is_average_weight() {
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 30)]);
        assert_eq!(suggest_delta(&g), 20);
        assert_eq!(suggest_delta(&Graph::empty(2)), 1);
    }
}
