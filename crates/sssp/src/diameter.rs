//! SSSP-based diameter bounds.
//!
//! * Upper bound: twice the eccentricity of any node (the paper's baseline,
//!   computed with Δ-stepping in the experiments).
//! * Lower bound: the largest eccentricity seen while iterating "run SSSP,
//!   jump to the farthest node reached, repeat" — exactly the procedure the
//!   paper uses to normalize the approximation ratios of Table 2.
//! * Exact diameter: all-pairs Dijkstra (parallel over sources), tractable for
//!   the small graphs used in tests and for quotient graphs.

use cldiam_graph::{Dist, Graph, NodeId, INFINITY};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;
use rayon::prelude::*;

use crate::dijkstra::dijkstra;

/// Weighted eccentricity of `source`: the largest finite distance from it.
pub fn eccentricity(graph: &Graph, source: NodeId) -> Dist {
    dijkstra(graph, source).eccentricity()
}

/// The SSSP 2-approximation of the diameter: `2 · ecc(source)`. The true
/// diameter lies in `[ecc(source), 2 · ecc(source)]`.
pub fn sssp_diameter_upper_bound(graph: &Graph, source: NodeId) -> Dist {
    eccentricity(graph, source).saturating_mul(2)
}

/// Lower bound on the diameter via iterated farthest-node sweeps: starting
/// from a random node, run Dijkstra, move to the farthest node reached and
/// repeat for `sweeps` iterations; the largest eccentricity observed is a
/// valid lower bound (and is usually very tight on road networks and meshes).
pub fn diameter_lower_bound(graph: &Graph, sweeps: usize, seed: u64) -> Dist {
    if graph.num_nodes() == 0 {
        return 0;
    }
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut current = rng.gen_range(0..graph.num_nodes()) as NodeId;
    let mut best = 0;
    for _ in 0..sweeps.max(1) {
        let sp = dijkstra(graph, current);
        let ecc = sp.eccentricity();
        if ecc > best {
            best = ecc;
        }
        let farthest = sp.farthest_node();
        if farthest == current {
            break;
        }
        current = farthest;
    }
    best
}

/// Exact weighted diameter by all-pairs Dijkstra, parallel over source nodes.
///
/// Defined as the paper does for possibly-disconnected graphs: the largest
/// distance between two nodes *in the same connected component*. Intended for
/// small graphs (tests, quotient graphs); the cost is `O(n · m log n)`.
pub fn exact_diameter(graph: &Graph) -> Dist {
    let n = graph.num_nodes();
    if n == 0 {
        return 0;
    }
    (0..n as NodeId).into_par_iter().map(|u| dijkstra(graph, u).eccentricity()).max().unwrap_or(0)
}

/// Exact eccentricity of every node (parallel all-pairs Dijkstra); useful for
/// ablations and for validating approximation ratios in tests.
pub fn all_eccentricities(graph: &Graph) -> Vec<Dist> {
    let n = graph.num_nodes();
    (0..n as NodeId).into_par_iter().map(|u| dijkstra(graph, u).eccentricity()).collect()
}

/// `true` if `dist` contains a finite entry for every node — i.e. the source
/// reaches the whole graph.
pub fn reaches_all(dist: &[Dist]) -> bool {
    dist.iter().all(|&d| d != INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, path, road_network, WeightModel};
    use cldiam_graph::largest_component;

    #[test]
    fn path_diameter_is_exact() {
        let g = path(10, 3);
        assert_eq!(exact_diameter(&g), 27);
        assert_eq!(eccentricity(&g, 0), 27);
        assert_eq!(eccentricity(&g, 5), 15);
    }

    #[test]
    fn upper_bound_is_at_least_diameter() {
        let g = mesh(9, WeightModel::UniformUnit, 4);
        let exact = exact_diameter(&g);
        for source in [0, 40, 80] {
            let ub = sssp_diameter_upper_bound(&g, source);
            assert!(ub >= exact);
            assert!(ub <= 2 * exact);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_diameter_and_is_tight_on_mesh() {
        let g = mesh(9, WeightModel::UniformUnit, 4);
        let exact = exact_diameter(&g);
        let lb = diameter_lower_bound(&g, 4, 7);
        assert!(lb <= exact);
        // Farthest-node sweeps are essentially exact on meshes.
        assert!(lb * 10 >= exact * 9, "lb {lb} vs exact {exact}");
    }

    #[test]
    fn lower_bound_on_road_network() {
        let (g, _) = largest_component(&road_network(15, 15, 3));
        let exact = exact_diameter(&g);
        let lb = diameter_lower_bound(&g, 4, 1);
        assert!(lb <= exact && lb > 0);
        assert!(lb * 10 >= exact * 8, "lb {lb} vs exact {exact}");
    }

    #[test]
    fn disconnected_graph_uses_per_component_diameter() {
        let g = cldiam_graph::Graph::from_edges(5, &[(0, 1, 5), (2, 3, 2), (3, 4, 2)]);
        assert_eq!(exact_diameter(&g), 5);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert_eq!(exact_diameter(&cldiam_graph::Graph::empty(0)), 0);
        assert_eq!(exact_diameter(&cldiam_graph::Graph::empty(1)), 0);
        assert_eq!(diameter_lower_bound(&cldiam_graph::Graph::empty(0), 3, 0), 0);
    }

    #[test]
    fn all_eccentricities_max_is_diameter() {
        let g = mesh(6, WeightModel::UniformUnit, 2);
        let eccs = all_eccentricities(&g);
        assert_eq!(eccs.iter().copied().max().unwrap(), exact_diameter(&g));
        assert_eq!(eccs.len(), g.num_nodes());
    }

    #[test]
    fn reaches_all_detects_infinity() {
        assert!(reaches_all(&[0, 1, 2]));
        assert!(!reaches_all(&[0, INFINITY]));
    }
}
