//! SSSP-based diameter bounds.
//!
//! * Upper bound: twice the eccentricity of any node (the paper's baseline,
//!   computed with Δ-stepping in the experiments).
//! * Lower bound: the largest eccentricity seen while iterating "run SSSP,
//!   jump to the farthest node reached, repeat" — exactly the procedure the
//!   paper uses to normalize the approximation ratios of Table 2.
//! * Exact diameter: all-pairs Dijkstra (parallel over sources), tractable for
//!   the small graphs used in tests and for quotient graphs.
//!
//! All of the iterated-SSSP drivers here run through the batched multi-source
//! engine of [`crate::batch`]: one [`ScratchPool`] per call site, so the many
//! Dijkstras of an all-pairs sweep or a sweep chain share reusable
//! distance/heap state instead of allocating per source.

use cldiam_graph::{
    component_subgraphs, connected_components, ComponentLabels, Dist, Graph, NeighborSource,
    NodeId, INFINITY,
};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;
use rayon::prelude::*;

use crate::batch::{batched_eccentricities, DijkstraScratch, ScratchPool};
use crate::dijkstra::dijkstra;

/// Weighted eccentricity of `source`: the largest finite distance from it.
pub fn eccentricity<G: NeighborSource>(graph: &G, source: NodeId) -> Dist {
    dijkstra(graph, source).eccentricity()
}

/// A connected-component split computed once and shared by every bound
/// driver of a run.
///
/// [`diameter_lower_bound`] and [`sssp_diameter_upper_bound`] each need the
/// per-component subgraphs; computing the `O(n + m)` union-find and split in
/// each of them made a single CLI run pay it twice (three times with the
/// bounds engine). Callers that run several drivers compute one split with
/// [`ComponentSplit::compute`] and pass it to the `*_with_split` variants.
#[derive(Clone, Debug)]
pub struct ComponentSplit {
    /// The component labelling of the original graph.
    pub labels: ComponentLabels,
    /// Non-singleton components as standalone graphs with their ascending
    /// `new id -> original id` mappings ([`component_subgraphs`] order).
    /// Empty when the graph is connected — drivers then run on the original
    /// graph directly, avoiding a full copy.
    pub parts: Vec<(Graph, Vec<NodeId>)>,
}

impl ComponentSplit {
    /// Labels the components and extracts the non-singleton subgraphs (the
    /// latter only when there are at least two components).
    pub fn compute<G: NeighborSource>(graph: &G) -> Self {
        let labels = connected_components(graph);
        let parts =
            if labels.count <= 1 { Vec::new() } else { component_subgraphs(graph, &labels) };
        ComponentSplit { labels, parts }
    }

    /// `true` when every node is in one component (parts are then empty).
    pub fn is_connected(&self) -> bool {
        self.labels.count <= 1
    }
}

/// The subgraph-local id of `node` within a component's ascending
/// `new id -> original id` mapping.
///
/// # Panics
///
/// Panics when `node` is not a member of the mapping: a miss here means the
/// caller routed a sweep start into the wrong component, and silently mapping
/// it to local id 0 (as an earlier revision did) would mask that mapping bug
/// as a mere wrong-source sweep.
fn local_id(mapping: &[NodeId], node: NodeId) -> NodeId {
    mapping
        .binary_search(&node)
        .map(|i| i as NodeId)
        .unwrap_or_else(|_| panic!("node {node} is not a member of this component's mapping"))
}

/// The SSSP 2-approximation of the diameter: the true diameter lies in
/// `[ecc, 2 · ecc]` for the eccentricity of any node of the component that
/// realizes it.
///
/// The diameter of a possibly-disconnected graph is the largest distance
/// between two nodes *in the same component* (the paper's convention), so a
/// sweep from `source` alone — whose eccentricity ignores unreachable nodes —
/// would silently under-bound whenever the diameter lives in another
/// component. One sweep is therefore run per non-singleton component (from
/// `source` for its own component, from the smallest member node for every
/// other, in parallel) and the bounds are combined with `max`. Each sweep
/// runs on the component's own subgraph ([`component_subgraphs`], `O(n + m)`
/// to split), so fragmented graphs pay for their components' sizes, not
/// `components × n`.
pub fn sssp_diameter_upper_bound<G: NeighborSource>(graph: &G, source: NodeId) -> Dist {
    sssp_diameter_upper_bound_with_split(graph, source, &ComponentSplit::compute(graph))
}

/// [`sssp_diameter_upper_bound`] over a precomputed [`ComponentSplit`],
/// letting several bound drivers share one split.
pub fn sssp_diameter_upper_bound_with_split<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    split: &ComponentSplit,
) -> Dist {
    if split.is_connected() {
        return eccentricity(graph, source).saturating_mul(2);
    }
    let source_label = split.labels.labels[source as usize];
    let pool = ScratchPool::new();
    split
        .parts
        .par_iter()
        .map(|(sub, mapping)| {
            let start = if split.labels.labels[mapping[0] as usize] == source_label {
                local_id(mapping, source)
            } else {
                0
            };
            pool.with(|scratch| {
                scratch.run(sub, start);
                scratch.eccentricity().saturating_mul(2)
            })
        })
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter via iterated farthest-node sweeps: run
/// Dijkstra, move to the farthest node reached and repeat, keeping the
/// largest eccentricity observed (usually very tight on road networks and
/// meshes).
///
/// On a disconnected graph a single sweep chain can never leave its starting
/// component, and a uniformly random start may land in a tiny component and
/// report a uselessly loose bound. One chain is therefore run per
/// non-singleton component, all in parallel on the components' own subgraphs
/// ([`component_subgraphs`], `O(n + m)` to split): the largest component's
/// chain starts at the random node (relocated into it if the draw landed
/// elsewhere), every other chain at its component's smallest member, and
/// each chain gets the full `sweeps` budget. Total cost is the split plus
/// `O(sweeps)` Dijkstras per component *at that component's size*, so
/// fragmented raw datasets stay tractable. The chains share one scratch pool,
/// and each chain reuses a single scratch across its sweeps.
pub fn diameter_lower_bound<G: NeighborSource>(graph: &G, sweeps: usize, seed: u64) -> Dist {
    if graph.num_nodes() == 0 {
        return 0;
    }
    diameter_lower_bound_with_split(graph, sweeps, seed, &ComponentSplit::compute(graph))
}

/// [`diameter_lower_bound`] over a precomputed [`ComponentSplit`], letting
/// several bound drivers share one split.
pub fn diameter_lower_bound_with_split<G: NeighborSource>(
    graph: &G,
    sweeps: usize,
    seed: u64,
    split: &ComponentSplit,
) -> Dist {
    if graph.num_nodes() == 0 {
        return 0;
    }
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let random_start = rng.gen_range(0..graph.num_nodes()) as NodeId;
    if split.is_connected() {
        let mut scratch = DijkstraScratch::new();
        return sweep_chain(graph, random_start, sweeps, &mut scratch).0;
    }
    let largest = split.labels.largest().expect("non-empty graph has a largest component");
    let in_largest = |u: NodeId| split.labels.labels[u as usize] == largest;
    let pool = ScratchPool::new();
    split
        .parts
        .par_iter()
        .map(|(sub, mapping)| {
            let start = if in_largest(mapping[0]) && in_largest(random_start) {
                local_id(mapping, random_start)
            } else {
                0
            };
            pool.with(|scratch| sweep_chain(sub, start, sweeps, scratch).0)
        })
        .max()
        .unwrap_or(0)
}

/// One iterated farthest-node sweep chain from `start` (stays within the
/// start's component by construction), reusing `scratch` across its sweeps.
/// Returns the best eccentricity seen and the number of sweeps actually run.
///
/// The chain stops as soon as the farthest node is one it has already swept
/// from — not merely when it equals the current node. On a symmetric graph
/// the two endpoints of the same shortest path are each other's farthest
/// node, and the endpoint-only test of an earlier revision made the chain
/// ping-pong between them, burning the whole sweep budget on duplicate
/// Dijkstras that could not improve the bound. The repeat check uses the
/// scratch's seen-bitmap (`O(1)` per sweep); the `Vec::contains` scan of an
/// earlier revision was quadratic in the budget, harmless at 4 sweeps but
/// not at the budgets the anytime bounds engine runs with.
fn sweep_chain<G: NeighborSource>(
    graph: &G,
    start: NodeId,
    sweeps: usize,
    scratch: &mut DijkstraScratch,
) -> (Dist, usize) {
    let mut current = start;
    let mut best = 0;
    let budget = sweeps.max(1);
    let mut used = 0;
    scratch.sweep_clear();
    // Chain starts already swept from.
    scratch.sweep_mark(start);
    for _ in 0..budget {
        scratch.run(graph, current);
        used += 1;
        let ecc = scratch.eccentricity();
        if ecc > best {
            best = ecc;
        }
        let farthest = scratch.farthest_node();
        if !scratch.sweep_mark(farthest) {
            break;
        }
        current = farthest;
    }
    (best, used)
}

/// Public driver for one sweep chain: the repo's iterated farthest-node
/// lower bound from an explicit start, reporting the bound and the number of
/// SSSPs spent. Used by the anytime bounds engine to seed and refresh its
/// diameter lower bound; see [`diameter_lower_bound`] for the randomized
/// per-component driver.
pub fn sweep_chain_lower_bound<G: NeighborSource>(
    graph: &G,
    start: NodeId,
    sweeps: usize,
    scratch: &mut DijkstraScratch,
) -> (Dist, usize) {
    sweep_chain(graph, start, sweeps, scratch)
}

/// Exact weighted diameter by all-pairs Dijkstra, parallel over source nodes
/// through the batched multi-source driver.
///
/// Defined as the paper does for possibly-disconnected graphs: the largest
/// distance between two nodes *in the same connected component*. Intended for
/// small graphs (tests, quotient graphs); the cost is `O(n · m log n)`.
pub fn exact_diameter<G: NeighborSource>(graph: &G) -> Dist {
    all_eccentricities(graph).into_iter().max().unwrap_or(0)
}

/// Exact eccentricity of every node (batched all-pairs Dijkstra); useful for
/// ablations and for validating approximation ratios in tests.
pub fn all_eccentricities<G: NeighborSource>(graph: &G) -> Vec<Dist> {
    let sources: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    batched_eccentricities(graph, &sources)
}

/// `true` if `dist` contains a finite entry for every node — i.e. the source
/// reaches the whole graph.
pub fn reaches_all(dist: &[Dist]) -> bool {
    dist.iter().all(|&d| d != INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, path, road_network, WeightModel};
    use cldiam_graph::largest_component;

    #[test]
    fn path_diameter_is_exact() {
        let g = path(10, 3);
        assert_eq!(exact_diameter(&g), 27);
        assert_eq!(eccentricity(&g, 0), 27);
        assert_eq!(eccentricity(&g, 5), 15);
    }

    #[test]
    fn upper_bound_is_at_least_diameter() {
        let g = mesh(9, WeightModel::UniformUnit, 4);
        let exact = exact_diameter(&g);
        for source in [0, 40, 80] {
            let ub = sssp_diameter_upper_bound(&g, source);
            assert!(ub >= exact);
            assert!(ub <= 2 * exact);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_diameter_and_is_tight_on_mesh() {
        let g = mesh(9, WeightModel::UniformUnit, 4);
        let exact = exact_diameter(&g);
        let lb = diameter_lower_bound(&g, 4, 7);
        assert!(lb <= exact);
        // Farthest-node sweeps are essentially exact on meshes.
        assert!(lb * 10 >= exact * 9, "lb {lb} vs exact {exact}");
    }

    #[test]
    fn lower_bound_on_road_network() {
        let (g, _) = largest_component(&road_network(15, 15, 3));
        let exact = exact_diameter(&g);
        let lb = diameter_lower_bound(&g, 4, 1);
        assert!(lb <= exact && lb > 0);
        assert!(lb * 10 >= exact * 8, "lb {lb} vs exact {exact}");
    }

    #[test]
    fn sweep_chain_stops_on_a_repeated_chain_start() {
        // Regression: on a symmetric path the two endpoints are each other's
        // farthest node. The old `farthest == current` test never fired, so a
        // chain starting in the middle ping-ponged endpoint-to-endpoint for
        // the whole budget. It must now stop after sweeping each endpoint
        // once: mid, right endpoint, left endpoint — three sweeps.
        let g = path(9, 5);
        let mut scratch = DijkstraScratch::new();
        let (best, used) = sweep_chain(&g, 4, 100, &mut scratch);
        assert_eq!(best, 8 * 5);
        assert_eq!(used, 3, "chain burned {used} sweeps instead of stopping on the repeat");
        // Starting at an endpoint: endpoint, other endpoint, stop.
        let (best_end, used_end) = sweep_chain(&g, 0, 100, &mut scratch);
        assert_eq!(best_end, 8 * 5);
        assert_eq!(used_end, 2);
    }

    #[test]
    fn sweep_chain_still_honors_the_budget() {
        let (g, _) = largest_component(&road_network(12, 12, 3));
        let mut scratch = DijkstraScratch::new();
        let (_, used) = sweep_chain(&g, 0, 2, &mut scratch);
        assert!(used <= 2);
    }

    #[test]
    fn local_id_maps_members_in_order() {
        let mapping = [3u32, 7, 9];
        assert_eq!(local_id(&mapping, 3), 0);
        assert_eq!(local_id(&mapping, 7), 1);
        assert_eq!(local_id(&mapping, 9), 2);
    }

    #[test]
    #[should_panic(expected = "not a member of this component's mapping")]
    fn local_id_panics_on_a_non_member() {
        // Regression: a non-member used to map silently to local id 0, hiding
        // component-routing bugs behind a wrong-source sweep.
        let mapping = [3u32, 7, 9];
        local_id(&mapping, 8);
    }

    #[test]
    fn disconnected_graph_uses_per_component_diameter() {
        let g = cldiam_graph::Graph::from_edges(5, &[(0, 1, 5), (2, 3, 2), (3, 4, 2)]);
        assert_eq!(exact_diameter(&g), 5);
    }

    #[test]
    fn upper_bound_holds_with_isolated_source() {
        // Regression: node 0 is isolated, the long path lives elsewhere. The
        // old implementation returned 2·ecc(0) = 0, *below* the true diameter
        // of 30 — violating the upper-bound contract.
        let g = cldiam_graph::Graph::from_edges(5, &[(1, 2, 10), (2, 3, 10), (3, 4, 10)]);
        let exact = exact_diameter(&g);
        assert_eq!(exact, 30);
        let ub = sssp_diameter_upper_bound(&g, 0);
        assert!(ub >= exact, "upper bound {ub} below exact diameter {exact}");
        assert!(ub <= 2 * exact);
    }

    #[test]
    fn upper_bound_holds_from_every_source_on_disconnected_graphs() {
        // Three components of very different diameters; the bound must hold
        // no matter which component the source sits in.
        let g = cldiam_graph::Graph::from_edges(
            9,
            &[(0, 1, 1), (2, 3, 7), (3, 4, 7), (5, 6, 2), (6, 7, 2), (7, 8, 2)],
        );
        let exact = exact_diameter(&g);
        assert_eq!(exact, 14);
        for source in 0..9 {
            let ub = sssp_diameter_upper_bound(&g, source);
            assert!(ub >= exact, "source {source}: upper bound {ub} below {exact}");
            assert!(ub <= 2 * exact, "source {source}: upper bound {ub} not within 2x");
        }
    }

    #[test]
    fn lower_bound_escapes_tiny_components() {
        // Regression: a 2-node component next to a long path. A random start
        // landing in the tiny component used to trap the whole sweep there,
        // reporting a bound of 1 against a true diameter of 30. Every seed
        // must now find the path regardless of where the start lands.
        let g =
            cldiam_graph::Graph::from_edges(6, &[(0, 1, 1), (2, 3, 10), (3, 4, 10), (4, 5, 10)]);
        let exact = exact_diameter(&g);
        assert_eq!(exact, 30);
        for seed in 0..16 {
            let lb = diameter_lower_bound(&g, 4, seed);
            assert!(lb <= exact, "seed {seed}: lower bound {lb} above exact {exact}");
            assert_eq!(lb, exact, "seed {seed}: loose lower bound {lb}");
        }
    }

    #[test]
    fn lower_bound_covers_small_components_larger_than_the_biggest() {
        // The largest component (a 5-node unit-weight star-ish path) has a
        // *smaller* diameter than a 3-node heavy path; the per-component
        // restart must surface the heavy one.
        let g = cldiam_graph::Graph::from_edges(
            8,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (5, 6, 100), (6, 7, 100)],
        );
        let exact = exact_diameter(&g);
        assert_eq!(exact, 200);
        for seed in 0..8 {
            let lb = diameter_lower_bound(&g, 4, seed);
            assert_eq!(lb, exact, "seed {seed}: missed the heavy component ({lb})");
        }
    }

    #[test]
    fn bounds_bracket_exact_diameter_with_isolated_nodes() {
        // Isolated nodes (singleton components) are skipped, not swept.
        let g = cldiam_graph::Graph::from_edges(64, &[(10, 20, 5), (20, 30, 5)]);
        assert_eq!(exact_diameter(&g), 10);
        assert!(sssp_diameter_upper_bound(&g, 0) >= 10);
        let lb = diameter_lower_bound(&g, 3, 9);
        assert!(lb <= 10 && lb > 0);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert_eq!(exact_diameter(&cldiam_graph::Graph::empty(0)), 0);
        assert_eq!(exact_diameter(&cldiam_graph::Graph::empty(1)), 0);
        assert_eq!(diameter_lower_bound(&cldiam_graph::Graph::empty(0), 3, 0), 0);
    }

    #[test]
    fn all_eccentricities_max_is_diameter() {
        let g = mesh(6, WeightModel::UniformUnit, 2);
        let eccs = all_eccentricities(&g);
        assert_eq!(eccs.iter().copied().max().unwrap(), exact_diameter(&g));
        assert_eq!(eccs.len(), g.num_nodes());
    }

    #[test]
    fn reaches_all_detects_infinity() {
        assert!(reaches_all(&[0, 1, 2]));
        assert!(!reaches_all(&[0, INFINITY]));
    }
}
