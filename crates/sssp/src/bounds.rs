//! Anytime `[lb, ub]` diameter bound-tightening.
//!
//! The fixed-budget drivers of [`crate::diameter`] spend their SSSPs blindly:
//! `diameter_lower_bound` always runs its full sweep budget and CL-DIAM
//! always pays a complete clustering, even when three well-chosen SSSPs
//! would already close the interval. This module implements the adaptive
//! alternative of Magnien–Latapy–Habib (arXiv:0904.2728) and
//! Takes–Kosters' BoundingDiameters / iFUB: maintain a per-node
//! eccentricity interval `[ecc_lb[v], ecc_ub[v]]`, tighten every interval
//! after each SSSP with
//!
//! ```text
//! ecc_lb[v] ≥ max(d(s, v), ecc(s) − d(s, v))
//! ecc_ub[v] ≤ ecc(s) + d(s, v)
//! ```
//!
//! pick the next source as the active node of maximum interval width, and
//! stop as soon as the diameter interval `[max lb, max-over-candidates ub]`
//! closes (or a budget / tolerance is hit). The first two sources form a
//! 2-sweep (max-degree node, then the farthest node it reaches) so the
//! classic sweep-chain lower bound is folded into the same SSSPs, and an
//! optional *oracle* — in production CL-DIAM's quotient upper bound, wired
//! up in `cldiam-core` — is consulted once mid-run to cap every interval.
//!
//! Directed graphs run a forward+backward Dijkstra pair per iteration
//! (Roditty–Vassilevska Williams frame diameter approximation this way,
//! arXiv:1207.3622). The interval rules above are only sound when every
//! node reaches every other, so the engine detects strong connectivity from
//! the first pair's reach counts: strongly connected digraphs get the full
//! interval machinery with the directed rules
//!
//! ```text
//! ecc_lb[v] ≥ max(d(v, s), ecc_f(s) − d(s, v))
//! ecc_ub[v] ≤ d(v, s) + ecc_f(s)
//! ```
//!
//! (`ecc_f` the forward eccentricity; on symmetric inputs these reduce
//! exactly to the undirected rules), while non-strongly-connected digraphs
//! fall back to an alternating forward/backward sweep chain (2-dSweep) that
//! reports a lower bound only and an infinite upper bound.
//!
//! Everything runs through the reusable [`DijkstraScratch`] machinery of
//! [`crate::batch`]; multi-component undirected graphs are split once (see
//! [`ComponentSplit`]) and bounded per component in parallel, keeping
//! results bit-identical at any thread count.

use std::cmp::Reverse;

use cldiam_graph::{CancelToken, Dist, Graph, NeighborSource, NodeId, INFINITY};
use rayon::prelude::*;

use crate::batch::{DijkstraScratch, SsspDirection};
use crate::diameter::ComponentSplit;

/// Tuning knobs of the bounds engine.
#[derive(Clone, Copy, Debug)]
pub struct BoundsConfig {
    /// Maximum number of SSSP runs per connected component (a directed
    /// iteration spends two: one forward, one backward).
    pub max_sssp: usize,
    /// Stop once `upper ≤ tolerance · lower`; `1.0` demands the exact
    /// diameter, `1.1` a 10%-tight interval.
    pub tolerance: f64,
    /// Consult the oracle (when one is supplied) once this many SSSP runs
    /// have not closed the interval.
    pub quotient_after: usize,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig { max_sssp: 64, tolerance: 1.0, quotient_after: 4 }
    }
}

impl BoundsConfig {
    /// Sets the per-component SSSP budget.
    pub fn with_max_sssp(mut self, max_sssp: usize) -> Self {
        self.max_sssp = max_sssp;
        self
    }

    /// Sets the stopping tolerance (clamped to at least 1.0).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = if tolerance.is_finite() { tolerance.max(1.0) } else { 1.0 };
        self
    }

    /// Sets how many SSSPs run before the oracle is consulted.
    pub fn with_quotient_after(mut self, quotient_after: usize) -> Self {
        self.quotient_after = quotient_after;
        self
    }
}

/// One recorded step of the engine: the state of the diameter interval after
/// an SSSP (or after the oracle capped the intervals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsIteration {
    /// SSSP source of this iteration in original node ids; `None` for the
    /// oracle step, which runs no SSSP.
    pub source: Option<NodeId>,
    /// Cumulative SSSP runs spent when this iteration finished.
    pub sssp_runs: usize,
    /// Diameter lower bound after the iteration.
    pub lower: Dist,
    /// Diameter upper bound after the iteration ([`INFINITY`] while unknown).
    pub upper: Dist,
    /// Number of nodes whose eccentricity interval is still open *and* whose
    /// upper bound could still raise the diameter.
    pub open: usize,
}

/// Final state of a bounds run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsOutcome {
    /// Certified diameter lower bound.
    pub lower: Dist,
    /// Certified diameter upper bound ([`INFINITY`] when the input is a
    /// non-strongly-connected digraph, where only the lower bound is sound).
    pub upper: Dist,
    /// Total SSSP runs spent.
    pub sssp_runs: usize,
    /// `true` when the interval closed to the configured tolerance before
    /// the budget ran out (or the run was cancelled).
    pub converged: bool,
    /// `true` when a [`CancelToken`] stopped the run before budget or
    /// convergence — the reported interval is the best-so-far state at the
    /// last completed phase, still a sound bracket.
    pub interrupted: bool,
    /// Per-iteration trace, in execution order (component by component for
    /// disconnected inputs).
    pub iterations: Vec<BoundsIteration>,
}

impl BoundsOutcome {
    fn trivial() -> Self {
        BoundsOutcome {
            lower: 0,
            upper: 0,
            sssp_runs: 0,
            converged: true,
            interrupted: false,
            iterations: Vec::new(),
        }
    }
}

/// A diameter-upper-bound oracle: given a (component) graph, return an
/// upper bound on its diameter. In production this is CL-DIAM's quotient
/// bound `Φ(G_C) + 2R`, wired up by `cldiam-core`. The method is generic
/// over the graph representation so one oracle serves dense and compressed
/// inputs alike; implementors that need a dense graph (e.g. to cluster)
/// should materialize one internally.
pub trait DiameterOracle: Sync {
    /// An upper bound on the diameter of `graph`.
    fn diameter_upper_bound<G: NeighborSource>(&self, graph: &G) -> Dist;
}

/// The uninhabited "no oracle" type: plugs the `O: DiameterOracle` type
/// parameter at call sites that pass `None`. Use [`NO_ORACLE`].
#[derive(Clone, Copy, Debug)]
pub enum NoOracle {}

impl DiameterOracle for NoOracle {
    fn diameter_upper_bound<G: NeighborSource>(&self, _graph: &G) -> Dist {
        match *self {}
    }
}

/// `None` with the oracle type fixed, for engine calls without an oracle:
/// `bounds_diameter(&g, &config, NO_ORACLE)`.
pub const NO_ORACLE: Option<&NoOracle> = None;

/// `upper ≤ tolerance · lower`, with the interval closed and finite.
fn within_tolerance(lower: Dist, upper: Dist, tolerance: f64) -> bool {
    upper != INFINITY && (upper == lower || (upper as f64) <= tolerance * (lower as f64))
}

/// Interval state of one engine run, shared by the undirected and
/// strongly-connected-directed modes.
struct Intervals {
    lb: Vec<Dist>,
    ub: Vec<Dist>,
    /// Lower bound on the diameter (the largest certified eccentricity
    /// lower bound folded with every observed `ecc(s)`).
    diam_lb: Dist,
}

impl Intervals {
    fn new(n: usize) -> Self {
        Intervals { lb: vec![0; n], ub: vec![INFINITY; n], diam_lb: 0 }
    }

    /// Diameter upper bound: the largest per-node upper bound that could
    /// still exceed the certified lower bound (never below `diam_lb`).
    fn diam_ub(&self) -> Dist {
        let over = self.ub.iter().copied().filter(|&u| u > self.diam_lb).max().unwrap_or(0);
        over.max(self.diam_lb)
    }

    /// Nodes whose interval is open and whose upper bound could still raise
    /// the diameter — the candidate pool for source selection.
    fn open_count(&self) -> usize {
        (0..self.lb.len()).filter(|&v| self.lb[v] < self.ub[v] && self.ub[v] > self.diam_lb).count()
    }

    /// The open node of maximum interval width (ties: larger degree, then
    /// smaller id), or `None` when the pool is empty.
    fn widest_open<G: NeighborSource>(&self, graph: &G) -> Option<NodeId> {
        (0..self.lb.len() as NodeId)
            .filter(|&v| {
                self.lb[v as usize] < self.ub[v as usize] && self.ub[v as usize] > self.diam_lb
            })
            .max_by_key(|&v| {
                let width = self.ub[v as usize].saturating_sub(self.lb[v as usize]);
                (width, graph.degree(v), Reverse(v))
            })
    }

    /// Caps every upper bound by an oracle-certified diameter bound.
    fn apply_cap(&mut self, cap: Dist) {
        for u in &mut self.ub {
            *u = (*u).min(cap);
        }
    }
}

/// Runs the interval engine on one *connected undirected* graph. `mapping`
/// translates local ids to original ids for the iteration trace (`None` =
/// identity).
///
/// The cancel token is polled once per iteration, after the first SSSP (so
/// an already-expired deadline still yields a non-trivial lower bound) —
/// SSSPs are never abandoned mid-run, because a partial distance array
/// under-estimates eccentricities and would break the `ub` bracket.
fn bound_connected<G: NeighborSource, O: DiameterOracle>(
    graph: &G,
    config: &BoundsConfig,
    oracle: Option<&O>,
    mapping: Option<&[NodeId]>,
    cancel: &CancelToken,
) -> BoundsOutcome {
    let n = graph.num_nodes();
    if n <= 1 {
        return BoundsOutcome::trivial();
    }
    let original = |v: NodeId| mapping.map_or(v, |m| m[v as usize]);
    let mut state = Intervals::new(n);
    let mut scratch = DijkstraScratch::new();
    let mut iterations = Vec::new();
    let mut runs = 0usize;
    let mut oracle_spent = oracle.is_none();
    let mut interrupted = false;
    let budget = config.max_sssp.max(1);

    // First source: the max-degree node (the BoundingDiameters heuristic —
    // high-degree nodes sit near the center, giving tight upper bounds).
    let mut source = (0..n as NodeId)
        .max_by_key(|&v| (graph.degree(v), Reverse(v)))
        .expect("connected graph has nodes");
    // Second source: the farthest node of the first sweep (the classic
    // 2-sweep, folding the sweep-chain lower bound into the same SSSPs).
    let mut next_is_sweep = true;

    while runs < budget {
        if runs > 0 && cancel.checkpoint() {
            interrupted = true;
            break;
        }
        scratch.run(graph, source);
        runs += 1;
        let ecc = scratch.eccentricity();
        state.diam_lb = state.diam_lb.max(ecc);
        for v in 0..n {
            let d = scratch.distance(v as NodeId);
            debug_assert_ne!(d, INFINITY, "connected component must be fully reached");
            let lb = d.max(ecc - d);
            state.lb[v] = state.lb[v].max(lb);
            state.ub[v] = state.ub[v].min(ecc.saturating_add(d));
        }
        let sweep_target = scratch.farthest_node();
        iterations.push(BoundsIteration {
            source: Some(original(source)),
            sssp_runs: runs,
            lower: state.diam_lb,
            upper: state.diam_ub(),
            open: state.open_count(),
        });
        if within_tolerance(state.diam_lb, state.diam_ub(), config.tolerance) {
            break;
        }
        // Mid-run oracle consult: cap every interval with the clustering
        // upper bound once plain SSSPs have had their chance.
        if !oracle_spent && runs >= config.quotient_after {
            oracle_spent = true;
            if let Some(oracle) = oracle {
                state.apply_cap(oracle.diameter_upper_bound(graph));
                iterations.push(BoundsIteration {
                    source: None,
                    sssp_runs: runs,
                    lower: state.diam_lb,
                    upper: state.diam_ub(),
                    open: state.open_count(),
                });
                if within_tolerance(state.diam_lb, state.diam_ub(), config.tolerance) {
                    break;
                }
            }
        }
        source =
            if next_is_sweep && state.lb[sweep_target as usize] < state.ub[sweep_target as usize] {
                sweep_target
            } else {
                match state.widest_open(graph) {
                    Some(v) => v,
                    None => break,
                }
            };
        next_is_sweep = false;
    }
    let upper = state.diam_ub();
    BoundsOutcome {
        lower: state.diam_lb,
        upper,
        sssp_runs: runs,
        converged: !interrupted && within_tolerance(state.diam_lb, upper, config.tolerance),
        interrupted,
        iterations,
    }
}

/// Runs the engine on a *directed* graph: a forward+backward Dijkstra pair
/// per iteration. Strongly connected inputs get the interval machinery;
/// anything else falls back to the alternating 2-dSweep chain, which
/// certifies a lower bound only. Cancellation is polled once per iteration
/// after the first forward/backward pair.
fn bound_directed<O: DiameterOracle>(
    graph: &Graph,
    config: &BoundsConfig,
    oracle: Option<&O>,
    cancel: &CancelToken,
) -> BoundsOutcome {
    let n = graph.num_nodes();
    if n <= 1 {
        return BoundsOutcome::trivial();
    }
    let mut fwd = DijkstraScratch::new();
    let mut bwd = DijkstraScratch::new();
    let mut iterations = Vec::new();
    let mut runs = 0usize;
    let mut interrupted = false;
    let budget = config.max_sssp.max(1);

    // First pair decides the mode: strong connectivity is exactly "the first
    // source reaches everything in both directions".
    let first = (0..n as NodeId)
        .max_by_key(|&v| (graph.degree(v), Reverse(v)))
        .expect("non-empty graph has nodes");
    fwd.run_directed(graph, first, SsspDirection::Forward);
    bwd.run_directed(graph, first, SsspDirection::Backward);
    runs += 2;
    let strongly_connected = fwd.reached() == n && bwd.reached() == n;

    if !strongly_connected {
        // Lower-bound-only mode: alternating forward/backward sweep chain.
        let mut best = fwd.eccentricity().max(bwd.eccentricity());
        let mut open = n;
        iterations.push(BoundsIteration {
            source: Some(first),
            sssp_runs: runs,
            lower: best,
            upper: INFINITY,
            open,
        });
        fwd.sweep_clear();
        fwd.sweep_mark(first);
        let mut current = fwd.farthest_node();
        let mut direction = SsspDirection::Backward;
        while runs < budget && fwd.sweep_mark(current) {
            if cancel.checkpoint() {
                interrupted = true;
                break;
            }
            fwd.run_directed(graph, current, direction);
            runs += 1;
            best = best.max(fwd.eccentricity());
            open = n;
            iterations.push(BoundsIteration {
                source: Some(current),
                sssp_runs: runs,
                lower: best,
                upper: INFINITY,
                open,
            });
            current = fwd.farthest_node();
            direction = match direction {
                SsspDirection::Forward => SsspDirection::Backward,
                SsspDirection::Backward => SsspDirection::Forward,
            };
        }
        return BoundsOutcome {
            lower: best,
            upper: INFINITY,
            sssp_runs: runs,
            converged: false,
            interrupted,
            iterations,
        };
    }

    let mut state = Intervals::new(n);
    let mut oracle_spent = oracle.is_none();
    let mut source = first;
    let mut next_is_sweep = true;
    loop {
        // The scratches already hold the pair for `source`.
        let ecc_f = fwd.eccentricity();
        let ecc_b = bwd.eccentricity();
        state.diam_lb = state.diam_lb.max(ecc_f).max(ecc_b);
        for v in 0..n {
            let df = fwd.distance(v as NodeId);
            let db = bwd.distance(v as NodeId);
            debug_assert!(df != INFINITY && db != INFINITY, "strongly connected by detection");
            // ecc(v) ≥ d(v, s) and ecc(v) ≥ ecc_f(s) − d(s, v);
            // ecc(v) ≤ d(v, s) + ecc_f(s). All eccentricities are forward.
            state.lb[v] = state.lb[v].max(db).max(ecc_f.saturating_sub(df));
            state.ub[v] = state.ub[v].min(db.saturating_add(ecc_f));
        }
        let sweep_target = fwd.farthest_node();
        iterations.push(BoundsIteration {
            source: Some(source),
            sssp_runs: runs,
            lower: state.diam_lb,
            upper: state.diam_ub(),
            open: state.open_count(),
        });
        if within_tolerance(state.diam_lb, state.diam_ub(), config.tolerance) {
            break;
        }
        if !oracle_spent && runs >= config.quotient_after {
            oracle_spent = true;
            if let Some(oracle) = oracle {
                state.apply_cap(oracle.diameter_upper_bound(graph));
                iterations.push(BoundsIteration {
                    source: None,
                    sssp_runs: runs,
                    lower: state.diam_lb,
                    upper: state.diam_ub(),
                    open: state.open_count(),
                });
                if within_tolerance(state.diam_lb, state.diam_ub(), config.tolerance) {
                    break;
                }
            }
        }
        if runs + 2 > budget {
            break;
        }
        if cancel.checkpoint() {
            interrupted = true;
            break;
        }
        source =
            if next_is_sweep && state.lb[sweep_target as usize] < state.ub[sweep_target as usize] {
                sweep_target
            } else {
                match state.widest_open(graph) {
                    Some(v) => v,
                    None => break,
                }
            };
        next_is_sweep = false;
        fwd.run_directed(graph, source, SsspDirection::Forward);
        bwd.run_directed(graph, source, SsspDirection::Backward);
        runs += 2;
    }
    let upper = state.diam_ub();
    BoundsOutcome {
        lower: state.diam_lb,
        upper,
        sssp_runs: runs,
        converged: !interrupted && within_tolerance(state.diam_lb, upper, config.tolerance),
        interrupted,
        iterations,
    }
}

/// The anytime bounds engine over a precomputed [`ComponentSplit`]
/// (undirected inputs only — directed graphs are never split; call
/// [`bounds_diameter`]).
///
/// Disconnected graphs bound every non-singleton component in parallel,
/// each with the full per-component budget; the diameter interval of the
/// whole graph is the pointwise max (the paper's convention: the diameter
/// of a disconnected graph is the largest intra-component distance).
pub fn bounds_diameter_with_split<G: NeighborSource, O: DiameterOracle>(
    graph: &G,
    config: &BoundsConfig,
    oracle: Option<&O>,
    split: &ComponentSplit,
) -> BoundsOutcome {
    bounds_diameter_with_split_cancel(graph, config, oracle, split, &CancelToken::never())
}

/// [`bounds_diameter_with_split`] with a cooperative [`CancelToken`].
///
/// Every component gets its own *child* token (fresh checkpoint counter
/// over the shared flag/deadline), so a logical check budget stops each
/// component after the same number of phase boundaries at any thread count
/// — the degraded result is deterministic for a fixed cadence.
pub fn bounds_diameter_with_split_cancel<G: NeighborSource, O: DiameterOracle>(
    graph: &G,
    config: &BoundsConfig,
    oracle: Option<&O>,
    split: &ComponentSplit,
    cancel: &CancelToken,
) -> BoundsOutcome {
    assert!(!graph.is_directed(), "bounds_diameter_with_split expects an undirected graph");
    if graph.num_nodes() == 0 {
        return BoundsOutcome::trivial();
    }
    if split.is_connected() {
        return bound_connected(graph, config, oracle, None, cancel);
    }
    let outcomes: Vec<BoundsOutcome> = split
        .parts
        .par_iter()
        .map(|(sub, mapping)| bound_connected(sub, config, oracle, Some(mapping), &cancel.child()))
        .collect();
    let mut combined = BoundsOutcome::trivial();
    for outcome in outcomes {
        combined.lower = combined.lower.max(outcome.lower);
        combined.upper = combined.upper.max(outcome.upper);
        combined.converged &= outcome.converged;
        combined.interrupted |= outcome.interrupted;
        // Re-base each component's cumulative run counter onto the trace.
        let base = combined.sssp_runs;
        combined.iterations.extend(outcome.iterations.into_iter().map(|mut it| {
            it.sssp_runs += base;
            it
        }));
        combined.sssp_runs += outcome.sssp_runs;
    }
    combined
}

/// The anytime `[lb, ub]` diameter bounds engine.
///
/// Undirected graphs are component-split internally (compute the split once
/// with [`ComponentSplit::compute`] and call [`bounds_diameter_with_split`]
/// to share it with the other bound drivers); directed graphs run the
/// forward/backward engine on the whole graph.
pub fn bounds_diameter<O: DiameterOracle>(
    graph: &Graph,
    config: &BoundsConfig,
    oracle: Option<&O>,
) -> BoundsOutcome {
    bounds_diameter_cancel(graph, config, oracle, &CancelToken::never())
}

/// [`bounds_diameter`] with a cooperative [`CancelToken`] (see
/// [`bounds_diameter_with_split_cancel`] for the determinism contract).
pub fn bounds_diameter_cancel<O: DiameterOracle>(
    graph: &Graph,
    config: &BoundsConfig,
    oracle: Option<&O>,
    cancel: &CancelToken,
) -> BoundsOutcome {
    if graph.is_directed() {
        return bound_directed(graph, config, oracle, cancel);
    }
    bounds_diameter_with_split_cancel(
        graph,
        config,
        oracle,
        &ComponentSplit::compute(graph),
        cancel,
    )
}

/// Directed 2-dSweep lower bound: an alternating forward/backward sweep
/// chain from `start`, jumping to the farthest node of each run. Returns
/// the best eccentricity observed (a certified diameter lower bound on any
/// input, strongly connected or not) and the number of SSSPs spent.
///
/// On a symmetric graph every backward run equals the forward run, so the
/// chain visits exactly the nodes of the undirected
/// [`crate::diameter::sweep_chain_lower_bound`] and returns the identical
/// bound.
pub fn double_sweep_lower_bound(
    graph: &Graph,
    start: NodeId,
    sweeps: usize,
    scratch: &mut DijkstraScratch,
) -> (Dist, usize) {
    let mut current = start;
    let mut direction = SsspDirection::Forward;
    let mut best = 0;
    let mut used = 0;
    scratch.sweep_clear();
    scratch.sweep_mark(start);
    for _ in 0..sweeps.max(1) {
        scratch.run_directed(graph, current, direction);
        used += 1;
        let ecc = scratch.eccentricity();
        if ecc > best {
            best = ecc;
        }
        let farthest = scratch.farthest_node();
        if !scratch.sweep_mark(farthest) {
            break;
        }
        current = farthest;
        direction = match direction {
            SsspDirection::Forward => SsspDirection::Backward,
            SsspDirection::Backward => SsspDirection::Forward,
        };
    }
    (best, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::{exact_diameter, sweep_chain_lower_bound};
    use cldiam_gen::{mesh, path, rmat, road_network, RmatParams, WeightModel};
    use cldiam_graph::{Graph, GraphBuilder};

    fn run(graph: &Graph, config: &BoundsConfig) -> BoundsOutcome {
        bounds_diameter(graph, config, NO_ORACLE)
    }

    /// A fixed-answer oracle for the cap tests.
    struct Fixed(Dist);

    impl DiameterOracle for Fixed {
        fn diameter_upper_bound<G: NeighborSource>(&self, _graph: &G) -> Dist {
            self.0
        }
    }

    #[test]
    fn closes_exactly_on_a_path() {
        let g = path(9, 5);
        let outcome = run(&g, &BoundsConfig::default());
        assert!(outcome.converged);
        assert_eq!(outcome.lower, 40);
        assert_eq!(outcome.upper, 40);
        // The 2-sweep (center → endpoint → endpoint) should close a path in
        // very few SSSPs.
        assert!(outcome.sssp_runs <= 4, "spent {} SSSPs", outcome.sssp_runs);
    }

    #[test]
    fn converges_to_exact_diameter_on_small_graphs() {
        for (i, g) in [
            mesh(6, WeightModel::UniformUnit, 3),
            rmat(RmatParams::paper(6), WeightModel::UniformUnit, 5),
            road_network(8, 8, 2),
        ]
        .iter()
        .enumerate()
        {
            let exact = exact_diameter(g);
            let outcome = run(g, &BoundsConfig::default().with_max_sssp(4 * g.num_nodes()));
            assert!(outcome.converged, "graph {i} did not converge");
            assert_eq!(outcome.lower, exact, "graph {i}");
            assert_eq!(outcome.upper, exact, "graph {i}");
        }
    }

    #[test]
    fn every_iteration_brackets_the_exact_diameter() {
        let g = mesh(7, WeightModel::UniformUnit, 11);
        let exact = exact_diameter(&g);
        let outcome = run(&g, &BoundsConfig::default());
        assert!(!outcome.iterations.is_empty());
        let mut prev_lower = 0;
        let mut prev_upper = INFINITY;
        for it in &outcome.iterations {
            assert!(it.lower <= exact, "lb {} above exact {exact}", it.lower);
            assert!(it.upper >= exact, "ub {} below exact {exact}", it.upper);
            assert!(it.lower >= prev_lower, "lower bound regressed");
            assert!(it.upper <= prev_upper, "upper bound regressed");
            prev_lower = it.lower;
            prev_upper = it.upper;
        }
    }

    #[test]
    fn budget_is_honored_and_interval_stays_sound() {
        let g = mesh(9, WeightModel::UniformUnit, 2);
        let exact = exact_diameter(&g);
        let outcome = run(&g, &BoundsConfig::default().with_max_sssp(2));
        assert_eq!(outcome.sssp_runs, 2);
        assert!(outcome.lower <= exact && exact <= outcome.upper);
    }

    #[test]
    fn tolerance_allows_early_stop() {
        let g = mesh(9, WeightModel::UniformUnit, 2);
        let tight = run(&g, &BoundsConfig::default());
        let loose = run(&g, &BoundsConfig::default().with_tolerance(1.5));
        assert!(loose.converged);
        assert!(loose.sssp_runs <= tight.sssp_runs);
        assert!((loose.upper as f64) <= 1.5 * (loose.lower as f64));
    }

    #[test]
    fn oracle_cap_is_applied_and_recorded() {
        let g = mesh(8, WeightModel::UniformUnit, 6);
        let exact = exact_diameter(&g);
        // An exact oracle must close the interval the moment it fires.
        let oracle = Fixed(exact);
        let config = BoundsConfig::default().with_quotient_after(1);
        let outcome = bounds_diameter(&g, &config, Some(&oracle));
        assert!(outcome.converged);
        assert_eq!(outcome.upper, exact);
        assert!(
            outcome.iterations.iter().any(|it| it.source.is_none()),
            "oracle step missing from the trace"
        );
    }

    #[test]
    fn disconnected_graphs_bound_the_largest_intra_component_distance() {
        let g = Graph::from_edges(7, &[(0, 1, 5), (2, 3, 10), (3, 4, 10), (4, 5, 10)]);
        let outcome = run(&g, &BoundsConfig::default());
        assert!(outcome.converged);
        assert_eq!(outcome.lower, 30);
        assert_eq!(outcome.upper, 30);
        // Component sources are reported in original ids.
        for it in &outcome.iterations {
            if let Some(s) = it.source {
                assert!(s < 7);
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs_are_trivially_converged() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(5)] {
            let outcome = run(&g, &BoundsConfig::default());
            assert!(outcome.converged);
            assert_eq!((outcome.lower, outcome.upper), (0, 0));
            assert_eq!(outcome.sssp_runs, 0);
        }
    }

    fn directed_cycle(n: u32, w: u32) -> Graph {
        let mut b = GraphBuilder::new_directed(n as usize);
        for i in 0..n {
            b.add_arc(i, (i + 1) % n, w);
        }
        b.build()
    }

    #[test]
    fn strongly_connected_digraph_converges_to_its_directed_diameter() {
        // Directed n-cycle: d(u, v) walks forward only, diameter = (n-1)·w.
        let g = directed_cycle(7, 3);
        let outcome = run(&g, &BoundsConfig::default());
        assert!(outcome.converged);
        assert_eq!(outcome.lower, 18);
        assert_eq!(outcome.upper, 18);
    }

    #[test]
    fn non_strongly_connected_digraph_reports_lower_bound_only() {
        // A one-way path: 0→1→2→3. No node reaches backwards.
        let mut b = GraphBuilder::new_directed(4);
        b.add_arc(0, 1, 2);
        b.add_arc(1, 2, 2);
        b.add_arc(2, 3, 2);
        let g = b.build();
        let outcome = run(&g, &BoundsConfig::default());
        assert!(!outcome.converged);
        assert_eq!(outcome.upper, INFINITY);
        // d(0, 3) = 6 must be discovered by the sweep chain.
        assert_eq!(outcome.lower, 6);
    }

    #[test]
    fn symmetric_directed_engine_matches_the_undirected_answer() {
        let edges = [(0u32, 1u32, 4u32), (1, 2, 1), (2, 3, 7), (0, 3, 2), (1, 3, 9)];
        let mut d = GraphBuilder::new_directed(4);
        let mut u = GraphBuilder::new(4);
        for &(a, b, w) in &edges {
            d.add_edge(a, b, w);
            u.add_edge(a, b, w);
        }
        let dg = d.build();
        let ug = u.build();
        let from_directed = run(&dg, &BoundsConfig::default());
        let from_undirected = run(&ug, &BoundsConfig::default());
        assert!(from_directed.converged && from_undirected.converged);
        assert_eq!(from_directed.lower, from_undirected.lower);
        assert_eq!(from_directed.upper, from_undirected.upper);
        assert_eq!(from_directed.upper, exact_diameter(&ug));
    }

    #[test]
    fn double_sweep_matches_undirected_sweep_chain_on_symmetric_graphs() {
        let g = mesh(6, WeightModel::UniformUnit, 4);
        let mut a = DijkstraScratch::new();
        let mut b = DijkstraScratch::new();
        for start in [0u32, 7, 35] {
            for budget in [1usize, 2, 4, 16] {
                assert_eq!(
                    double_sweep_lower_bound(&g, start, budget, &mut a),
                    sweep_chain_lower_bound(&g, start, budget, &mut b),
                    "start {start} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn cancelled_run_reports_best_so_far_bracket() {
        let g = mesh(9, WeightModel::UniformUnit, 2);
        let exact = exact_diameter(&g);
        let cancel = CancelToken::never();
        cancel.cancel();
        let outcome = bounds_diameter_cancel(&g, &BoundsConfig::default(), NO_ORACLE, &cancel);
        // Even a pre-cancelled token admits one SSSP, so the lower bound is
        // non-trivial and the interval still brackets the exact diameter.
        assert!(outcome.interrupted);
        assert!(!outcome.converged);
        assert_eq!(outcome.sssp_runs, 1);
        assert!(outcome.lower > 0);
        assert!(outcome.lower <= exact && exact <= outcome.upper);
    }

    #[test]
    fn check_limit_cancellation_is_deterministic() {
        let g = mesh(8, WeightModel::UniformUnit, 17);
        let exact = exact_diameter(&g);
        let config = BoundsConfig::default().with_max_sssp(1_000);
        let run =
            || bounds_diameter_cancel(&g, &config, NO_ORACLE, &CancelToken::with_check_limit(3));
        let first = run();
        assert!(first.interrupted && !first.converged);
        assert!(first.lower <= exact && exact <= first.upper);
        for _ in 0..5 {
            assert_eq!(run(), first, "logical cadence must be reproducible");
        }
    }

    #[test]
    fn check_limit_is_deterministic_across_components() {
        // Two non-singleton components bounded in parallel: each gets a
        // child token with a fresh counter, so the combined outcome is
        // schedule-independent.
        let mut b = GraphBuilder::new(14);
        for i in 0..6u32 {
            b.add_edge(i, i + 1, 2 + i);
        }
        for i in 7..13u32 {
            b.add_edge(i, i + 1, 3 * (i - 6));
        }
        let g = b.build();
        let split = ComponentSplit::compute(&g);
        let config = BoundsConfig::default().with_max_sssp(1_000);
        let run = || {
            bounds_diameter_with_split_cancel(
                &g,
                &config,
                NO_ORACLE,
                &split,
                &CancelToken::with_check_limit(2),
            )
        };
        let first = run();
        assert!(first.interrupted);
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn double_sweep_is_a_sound_lower_bound_on_digraphs() {
        let g = directed_cycle(9, 2);
        let mut scratch = DijkstraScratch::new();
        let (lb, used) = double_sweep_lower_bound(&g, 0, 8, &mut scratch);
        assert!(lb <= 16, "lb {lb} exceeds the directed diameter 16");
        assert!(lb > 0 && used >= 1);
    }
}
