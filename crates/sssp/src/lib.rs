//! Shortest-path substrate and the paper's baselines.
//!
//! The paper compares `CL-DIAM` against the natural SSSP-based diameter
//! approximation: run a single-source shortest path computation from an
//! arbitrary node and return twice the largest distance found (a
//! 2-approximation of the diameter). The state-of-the-art practical parallel
//! SSSP algorithm — and therefore "the only practical linear-space
//! competitor" — is Δ-stepping (Meyer & Sanders, J. Algorithms 2003).
//!
//! This crate provides:
//!
//! * [`dijkstra`] — sequential Dijkstra returning distances, hop counts and
//!   the shortest-path tree; the exactness oracle for every test in the
//!   workspace.
//! * [`batch`] — the batched multi-source engine: a reusable
//!   [`DijkstraScratch`] (distances only, `O(reached)` resets), a
//!   [`ScratchPool`] shared by the workers of a batch, and the
//!   [`multi_source_dijkstra`] / [`batched_eccentricities`] drivers behind
//!   every iterated-SSSP consumer in the workspace.
//! * [`bellman_ford`] — a second independent oracle used in property tests.
//! * [`delta_stepping`] — the parallel Δ-stepping baseline on a cyclic
//!   bucket-array engine with atomic fetch-min relaxation and a reusable
//!   [`SsspScratch`], with the paper's cost model charged to a
//!   [`cldiam_mr::CostTracker`] (one round per light/heavy relaxation phase,
//!   messages = relaxation requests, node updates = distinct improved nodes
//!   per phase). The pre-refactor `BTreeMap` implementation is kept as
//!   [`delta_stepping_reference`] for the equivalence suites.
//! * [`diameter`] — SSSP-based upper and lower bounds for the weighted
//!   diameter (iterated farthest-node sweep chains), and an exact all-pairs
//!   diameter for small graphs, all running through the batched engine.
//! * [`bounds`] — the anytime `[lb, ub]` bound-tightening engine: per-node
//!   eccentricity intervals updated after every SSSP with the
//!   iFUB/BoundingDiameters rules, max-width source selection, and a
//!   directed 2-dSweep mode over forward/backward Dijkstra.
//! * [`hops`] — estimators for `ℓ_Δ` (the maximum number of edges on
//!   minimum-weight paths of weight at most `Δ`) and for the unweighted
//!   diameter `Ψ(G)`, the quantities governing the paper's round-complexity
//!   analysis.

#![forbid(unsafe_code)]

pub mod batch;
pub mod bellman_ford;
pub mod bounds;
pub mod delta_stepping;
pub mod diameter;
pub mod dijkstra;
pub mod hops;

pub use batch::{
    batched_eccentricities, multi_source_dijkstra, multi_source_dijkstra_cancel, DijkstraScratch,
    ScratchPool, SsspDirection,
};
pub use bellman_ford::bellman_ford;
pub use bounds::{
    bounds_diameter, bounds_diameter_cancel, bounds_diameter_with_split,
    bounds_diameter_with_split_cancel, double_sweep_lower_bound, BoundsConfig, BoundsIteration,
    BoundsOutcome, DiameterOracle, NoOracle, NO_ORACLE,
};
pub use delta_stepping::{
    delta_stepping, delta_stepping_reference, delta_stepping_with_scratch,
    delta_stepping_with_scratch_cancel, suggest_delta, DeltaSteppingOutcome, SsspScratch,
};
pub use diameter::{
    all_eccentricities, diameter_lower_bound, diameter_lower_bound_with_split, eccentricity,
    exact_diameter, sssp_diameter_upper_bound, sssp_diameter_upper_bound_with_split,
    sweep_chain_lower_bound, ComponentSplit,
};
pub use dijkstra::{dijkstra, ShortestPaths};
pub use hops::{ell_delta, unweighted_diameter};
