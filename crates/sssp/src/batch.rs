//! Batched multi-source shortest paths.
//!
//! The paper's evaluation leans on *iterated* SSSP: the exact diameter and
//! the eccentricity ablations run one Dijkstra per node, the lower-bound
//! normalization runs chains of farthest-node sweeps, and the benchmark
//! harness sweeps Δ-stepping over a grid of bucket widths. Allocating full
//! per-source state (`dist` / `hops` / `parent` vectors plus a heap) for
//! every one of those runs dominates the runtime on small and medium graphs.
//!
//! This module provides the shared engine those drivers batch through:
//!
//! * [`DijkstraScratch`] — a reusable distance array + binary heap. Repeated
//!   runs are allocation-free after warm-up: the distance array is reset via
//!   the run's reached list (`O(reached)`, never `O(n)`) and the heap keeps
//!   its capacity. It intentionally tracks distances only — no hop counts or
//!   parent pointers — because none of the batched consumers need them; use
//!   [`crate::dijkstra::dijkstra`] for the full shortest-path tree.
//! * [`ScratchPool`] — a lock-guarded free list of scratches shared by the
//!   rayon workers of a batch, so a batch over `k` sources allocates
//!   `O(min(k, threads))` scratches instead of `k`.
//! * [`multi_source_dijkstra`] / [`batched_eccentricities`] — the parallel
//!   drivers consumed by `exact_diameter`, `all_eccentricities`, the
//!   per-component sweep chains of `diameter_lower_bound`, and (through
//!   `exact_diameter`) the quotient-diameter stage of `CL-DIAM`.
//!
//! Every quantity read out of a scratch ([`DijkstraScratch::eccentricity`],
//! [`DijkstraScratch::farthest_node`]) is a pure function of the source and
//! the graph, so batches are bit-identical at any thread count regardless of
//! which worker's scratch served which source.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use rayon::prelude::*;

use cldiam_graph::{Dist, Graph, NodeId, INFINITY};

/// Reusable single-source shortest-path state: tentative distances, the
/// Dijkstra heap, and the reached list used for `O(reached)` resets.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
    reached: Vec<NodeId>,
}

impl DijkstraScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
        }
    }

    /// Runs Dijkstra from `source`, leaving the distances resident in the
    /// scratch (read them with [`DijkstraScratch::distance`] /
    /// [`DijkstraScratch::eccentricity`] / [`DijkstraScratch::farthest_node`]
    /// until the next run). The previous run's state is reset in
    /// `O(previously reached)`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a node of `graph`.
    pub fn run(&mut self, graph: &Graph, source: NodeId) {
        let n = graph.num_nodes();
        assert!((source as usize) < n, "source {source} out of range (n = {n})");
        self.ensure(n);
        for v in self.reached.drain(..) {
            self.dist[v as usize] = INFINITY;
        }
        self.heap.clear();

        self.dist[source as usize] = 0;
        self.reached.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue; // stale entry
            }
            for (v, w) in graph.neighbors(u) {
                let candidate = d + Dist::from(w);
                if candidate < self.dist[v as usize] {
                    if self.dist[v as usize] == INFINITY {
                        self.reached.push(v);
                    }
                    self.dist[v as usize] = candidate;
                    self.heap.push(Reverse((candidate, v)));
                }
            }
        }
    }

    /// Distance of `v` from the most recent run's source ([`INFINITY`] if
    /// unreachable).
    #[inline]
    pub fn distance(&self, v: NodeId) -> Dist {
        self.dist[v as usize]
    }

    /// Number of nodes reached by the most recent run (including the source).
    pub fn reached(&self) -> usize {
        self.reached.len()
    }

    /// Largest finite distance of the most recent run — the weighted
    /// eccentricity of its source within its component. `O(reached)`.
    pub fn eccentricity(&self) -> Dist {
        self.reached.iter().map(|&v| self.dist[v as usize]).max().unwrap_or(0)
    }

    /// The node realizing [`DijkstraScratch::eccentricity`], with the same
    /// tie-break as [`crate::dijkstra::ShortestPaths::farthest_node`] (the
    /// largest node id among equally-far nodes), so sweep chains driven
    /// through a scratch follow the identical node sequence. Returns the
    /// source itself for a singleton component.
    pub fn farthest_node(&self) -> NodeId {
        self.reached
            .iter()
            .map(|&v| (self.dist[v as usize], v))
            .max()
            .map(|(_, v)| v)
            .expect("farthest_node requires a completed run")
    }
}

/// A free list of [`DijkstraScratch`]es shared across the workers of a batch.
/// `with` hands a scratch to the closure, creating one only when every
/// existing scratch is in use — so a parallel batch allocates one scratch per
/// *concurrently active* worker, not per source.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<DijkstraScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled scratch, returning the scratch afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut DijkstraScratch) -> R) -> R {
        let mut scratch =
            self.pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        let result = f(&mut scratch);
        self.pool.lock().expect("scratch pool poisoned").push(scratch);
        result
    }
}

/// Runs one Dijkstra per source, in parallel over a shared [`ScratchPool`],
/// and maps each completed run through `f` (eccentricity, farthest node,
/// any distance reads). Results are returned in source order and are
/// bit-identical at any thread count.
pub fn multi_source_dijkstra<T: Send>(
    graph: &Graph,
    sources: &[NodeId],
    f: impl Fn(NodeId, &DijkstraScratch) -> T + Sync,
) -> Vec<T> {
    let pool = ScratchPool::new();
    sources
        .par_iter()
        .map(|&source| {
            pool.with(|scratch| {
                scratch.run(graph, source);
                f(source, scratch)
            })
        })
        .collect()
}

/// Weighted eccentricity of every source, computed as one batched
/// multi-source Dijkstra over a shared scratch pool. Equivalent to (and
/// pinned against) the per-source loop
/// `sources.map(|s| dijkstra(graph, s).eccentricity())`, without the
/// per-source state allocations.
pub fn batched_eccentricities(graph: &Graph, sources: &[NodeId]) -> Vec<Dist> {
    multi_source_dijkstra(graph, sources, |_, scratch| scratch.eccentricity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use cldiam_gen::{mesh, WeightModel};

    #[test]
    fn scratch_matches_full_dijkstra_across_reused_runs() {
        let g = mesh(8, WeightModel::UniformUnit, 4);
        let mut scratch = DijkstraScratch::new();
        for source in [0u32, 17, 63, 0] {
            scratch.run(&g, source);
            let sp = dijkstra(&g, source);
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(scratch.distance(v), sp.dist[v as usize], "source {source} node {v}");
            }
            assert_eq!(scratch.eccentricity(), sp.eccentricity());
            assert_eq!(scratch.farthest_node(), sp.farthest_node());
            assert_eq!(scratch.reached(), sp.reached());
        }
    }

    #[test]
    fn scratch_resets_between_graphs_of_different_sizes() {
        let big = mesh(6, WeightModel::UniformUnit, 1);
        let small = cldiam_graph::Graph::from_edges(3, &[(0, 1, 4)]);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&big, 0);
        scratch.run(&small, 0);
        assert_eq!(scratch.distance(1), 4);
        assert_eq!(scratch.distance(2), INFINITY);
        assert_eq!(scratch.eccentricity(), 4);
        assert_eq!(scratch.reached(), 2);
    }

    #[test]
    fn farthest_node_breaks_ties_like_the_full_dijkstra() {
        // Nodes 1 and 2 are both at distance 5; the larger id must win, as in
        // ShortestPaths::farthest_node.
        let g = cldiam_graph::Graph::from_edges(3, &[(0, 1, 5), (0, 2, 5)]);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&g, 0);
        assert_eq!(scratch.farthest_node(), 2);
        assert_eq!(scratch.farthest_node(), dijkstra(&g, 0).farthest_node());
    }

    #[test]
    fn batched_eccentricities_match_the_sequential_loop() {
        let g = mesh(7, WeightModel::UniformUnit, 9);
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let batched = batched_eccentricities(&g, &sources);
        let sequential: Vec<Dist> =
            sources.iter().map(|&s| dijkstra(&g, s).eccentricity()).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn multi_source_results_come_back_in_source_order() {
        let g = mesh(5, WeightModel::UniformUnit, 2);
        let sources = [24u32, 0, 12];
        let tagged = multi_source_dijkstra(&g, &sources, |s, scratch| (s, scratch.distance(s)));
        assert_eq!(tagged, vec![(24, 0), (0, 0), (12, 0)]);
    }

    #[test]
    fn pool_reuses_scratches() {
        let pool = ScratchPool::new();
        let g = mesh(4, WeightModel::UniformUnit, 1);
        pool.with(|s| s.run(&g, 0));
        // The second borrow must see the pooled (already warmed) scratch.
        pool.with(|s| {
            assert!(s.reached() > 0);
            s.run(&g, 3);
            assert_eq!(s.distance(3), 0);
        });
    }
}
