//! Batched multi-source shortest paths.
//!
//! The paper's evaluation leans on *iterated* SSSP: the exact diameter and
//! the eccentricity ablations run one Dijkstra per node, the lower-bound
//! normalization runs chains of farthest-node sweeps, and the benchmark
//! harness sweeps Δ-stepping over a grid of bucket widths. Allocating full
//! per-source state (`dist` / `hops` / `parent` vectors plus a heap) for
//! every one of those runs dominates the runtime on small and medium graphs.
//!
//! This module provides the shared engine those drivers batch through:
//!
//! * [`DijkstraScratch`] — a reusable distance array + binary heap. Repeated
//!   runs are allocation-free after warm-up: the distance array is reset via
//!   the run's reached list (`O(reached)`, never `O(n)`) and the heap keeps
//!   its capacity. It intentionally tracks distances only — no hop counts or
//!   parent pointers — because none of the batched consumers need them; use
//!   [`crate::dijkstra::dijkstra`] for the full shortest-path tree.
//! * [`ScratchPool`] — a lock-guarded free list of scratches shared by the
//!   rayon workers of a batch, so a batch over `k` sources allocates
//!   `O(min(k, threads))` scratches instead of `k`.
//! * [`multi_source_dijkstra`] / [`batched_eccentricities`] — the parallel
//!   drivers consumed by `exact_diameter`, `all_eccentricities`, the
//!   per-component sweep chains of `diameter_lower_bound`, and (through
//!   `exact_diameter`) the quotient-diameter stage of `CL-DIAM`.
//!
//! Every quantity read out of a scratch ([`DijkstraScratch::eccentricity`],
//! [`DijkstraScratch::farthest_node`]) is a pure function of the source and
//! the graph, so batches are bit-identical at any thread count regardless of
//! which worker's scratch served which source.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use rayon::prelude::*;

use cldiam_graph::{CancelToken, Dist, Graph, NeighborSource, NodeId, INFINITY};

/// Which adjacency a directed scratch run traverses.
///
/// [`SsspDirection::Forward`] follows arcs `u → v` and computes distances
/// *from* the source; [`SsspDirection::Backward`] follows them in reverse
/// (via the reverse CSR) and computes distances *to* the source. On an
/// undirected graph the two coincide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SsspDirection {
    /// Distances from the source along out-arcs.
    #[default]
    Forward,
    /// Distances to the source along in-arcs.
    Backward,
}

/// Reusable single-source shortest-path state: tentative distances, the
/// Dijkstra heap, the reached list used for `O(reached)` resets, and a
/// seen-bitmap for sweep chains (see [`DijkstraScratch::sweep_mark`]).
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
    reached: Vec<NodeId>,
    swept: Vec<bool>,
    swept_list: Vec<NodeId>,
}

impl DijkstraScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
        }
    }

    /// Runs Dijkstra from `source`, leaving the distances resident in the
    /// scratch (read them with [`DijkstraScratch::distance`] /
    /// [`DijkstraScratch::eccentricity`] / [`DijkstraScratch::farthest_node`]
    /// until the next run). The previous run's state is reset in
    /// `O(previously reached)`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a node of `graph`.
    pub fn run<G: NeighborSource>(&mut self, graph: &G, source: NodeId) {
        let n = graph.num_nodes();
        assert!((source as usize) < n, "source {source} out of range (n = {n})");
        self.ensure(n);
        for v in self.reached.drain(..) {
            self.dist[v as usize] = INFINITY;
        }
        self.heap.clear();

        self.dist[source as usize] = 0;
        self.reached.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue; // stale entry
            }
            for (v, w) in graph.neighbors(u) {
                let candidate = d + Dist::from(w);
                if candidate < self.dist[v as usize] {
                    if self.dist[v as usize] == INFINITY {
                        self.reached.push(v);
                    }
                    self.dist[v as usize] = candidate;
                    self.heap.push(Reverse((candidate, v)));
                }
            }
        }
    }

    /// [`DijkstraScratch::run`] with an explicit traversal direction. A
    /// backward run relaxes in-arcs, so `distance(v)` afterwards is the
    /// shortest-path weight from `v` *to* the source.
    pub fn run_directed(&mut self, graph: &Graph, source: NodeId, direction: SsspDirection) {
        let n = graph.num_nodes();
        assert!((source as usize) < n, "source {source} out of range (n = {n})");
        self.ensure(n);
        for v in self.reached.drain(..) {
            self.dist[v as usize] = INFINITY;
        }
        self.heap.clear();

        self.dist[source as usize] = 0;
        self.reached.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue; // stale entry
            }
            let (neighbors, weights) = match direction {
                SsspDirection::Forward => graph.neighbor_slices(u),
                SsspDirection::Backward => graph.in_neighbor_slices(u),
            };
            for (&v, &w) in neighbors.iter().zip(weights) {
                let candidate = d + Dist::from(w);
                if candidate < self.dist[v as usize] {
                    if self.dist[v as usize] == INFINITY {
                        self.reached.push(v);
                    }
                    self.dist[v as usize] = candidate;
                    self.heap.push(Reverse((candidate, v)));
                }
            }
        }
    }

    /// Distance of `v` from the most recent run's source ([`INFINITY`] if
    /// unreachable).
    #[inline]
    pub fn distance(&self, v: NodeId) -> Dist {
        self.dist[v as usize]
    }

    /// Number of nodes reached by the most recent run (including the source).
    pub fn reached(&self) -> usize {
        self.reached.len()
    }

    /// Largest finite distance of the most recent run — the weighted
    /// eccentricity of its source within its component. `O(reached)`.
    pub fn eccentricity(&self) -> Dist {
        self.reached.iter().map(|&v| self.dist[v as usize]).max().unwrap_or(0)
    }

    /// The node realizing [`DijkstraScratch::eccentricity`], with the same
    /// tie-break as [`crate::dijkstra::ShortestPaths::farthest_node`] (the
    /// largest node id among equally-far nodes), so sweep chains driven
    /// through a scratch follow the identical node sequence. Returns the
    /// source itself for a singleton component.
    pub fn farthest_node(&self) -> NodeId {
        self.reached
            .iter()
            .map(|&v| (self.dist[v as usize], v))
            .max()
            .map(|(_, v)| v)
            .expect("farthest_node requires a completed run")
    }

    /// Clears the sweep seen-bitmap in `O(previously marked)`. Call once
    /// before a sweep chain; the bitmap survives [`DijkstraScratch::run`]
    /// calls so chains can interleave runs and marks.
    pub fn sweep_clear(&mut self) {
        for v in self.swept_list.drain(..) {
            self.swept[v as usize] = false;
        }
    }

    /// Marks `v` as visited by the current sweep chain. Returns `true` when
    /// `v` was newly marked, `false` when it had already been seen — the
    /// O(1) replacement for the `Vec::contains` repeat check that made long
    /// sweep chains quadratic in their budget.
    pub fn sweep_mark(&mut self, v: NodeId) -> bool {
        if self.swept.len() <= v as usize {
            self.swept.resize(v as usize + 1, false);
        }
        if self.swept[v as usize] {
            return false;
        }
        self.swept[v as usize] = true;
        self.swept_list.push(v);
        true
    }
}

/// A free list of [`DijkstraScratch`]es shared across the workers of a batch.
/// `with` hands a scratch to the closure, creating one only when every
/// existing scratch is in use — so a parallel batch allocates one scratch per
/// *concurrently active* worker, not per source.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<DijkstraScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled scratch, returning the scratch afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut DijkstraScratch) -> R) -> R {
        let mut scratch =
            self.pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        let result = f(&mut scratch);
        self.pool.lock().expect("scratch pool poisoned").push(scratch);
        result
    }
}

/// Runs one Dijkstra per source, in parallel over a shared [`ScratchPool`],
/// and maps each completed run through `f` (eccentricity, farthest node,
/// any distance reads). Results are returned in source order and are
/// bit-identical at any thread count.
pub fn multi_source_dijkstra<G: NeighborSource, T: Send>(
    graph: &G,
    sources: &[NodeId],
    f: impl Fn(NodeId, &DijkstraScratch) -> T + Sync,
) -> Vec<T> {
    let pool = ScratchPool::new();
    sources
        .par_iter()
        .map(|&source| {
            pool.with(|scratch| {
                scratch.run(graph, source);
                f(source, scratch)
            })
        })
        .collect()
}

/// [`multi_source_dijkstra`] with a cooperative [`CancelToken`], polled
/// *between* sources: a claimed source always runs to completion (a partial
/// Dijkstra would under-estimate eccentricities and silently corrupt any
/// bound built on it), and sources claimed after cancellation come back as
/// `None`. Which sources ran can vary with scheduling under a wall-clock
/// deadline; with only a logical check budget the skip set is a
/// deterministic suffix-free pattern per clone — callers needing bitwise
/// reproducibility should derive per-worker children from one token.
pub fn multi_source_dijkstra_cancel<G: NeighborSource, T: Send>(
    graph: &G,
    sources: &[NodeId],
    cancel: &CancelToken,
    f: impl Fn(NodeId, &DijkstraScratch) -> T + Sync,
) -> Vec<Option<T>> {
    let pool = ScratchPool::new();
    sources
        .par_iter()
        .map(|&source| {
            if cancel.checkpoint() {
                return None;
            }
            Some(pool.with(|scratch| {
                scratch.run(graph, source);
                f(source, scratch)
            }))
        })
        .collect()
}

/// Weighted eccentricity of every source, computed as one batched
/// multi-source Dijkstra over a shared scratch pool. Equivalent to (and
/// pinned against) the per-source loop
/// `sources.map(|s| dijkstra(graph, s).eccentricity())`, without the
/// per-source state allocations.
pub fn batched_eccentricities<G: NeighborSource>(graph: &G, sources: &[NodeId]) -> Vec<Dist> {
    multi_source_dijkstra(graph, sources, |_, scratch| scratch.eccentricity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use cldiam_gen::{mesh, WeightModel};

    #[test]
    fn scratch_matches_full_dijkstra_across_reused_runs() {
        let g = mesh(8, WeightModel::UniformUnit, 4);
        let mut scratch = DijkstraScratch::new();
        for source in [0u32, 17, 63, 0] {
            scratch.run(&g, source);
            let sp = dijkstra(&g, source);
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(scratch.distance(v), sp.dist[v as usize], "source {source} node {v}");
            }
            assert_eq!(scratch.eccentricity(), sp.eccentricity());
            assert_eq!(scratch.farthest_node(), sp.farthest_node());
            assert_eq!(scratch.reached(), sp.reached());
        }
    }

    #[test]
    fn scratch_resets_between_graphs_of_different_sizes() {
        let big = mesh(6, WeightModel::UniformUnit, 1);
        let small = cldiam_graph::Graph::from_edges(3, &[(0, 1, 4)]);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&big, 0);
        scratch.run(&small, 0);
        assert_eq!(scratch.distance(1), 4);
        assert_eq!(scratch.distance(2), INFINITY);
        assert_eq!(scratch.eccentricity(), 4);
        assert_eq!(scratch.reached(), 2);
    }

    #[test]
    fn farthest_node_breaks_ties_like_the_full_dijkstra() {
        // Nodes 1 and 2 are both at distance 5; the larger id must win, as in
        // ShortestPaths::farthest_node.
        let g = cldiam_graph::Graph::from_edges(3, &[(0, 1, 5), (0, 2, 5)]);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&g, 0);
        assert_eq!(scratch.farthest_node(), 2);
        assert_eq!(scratch.farthest_node(), dijkstra(&g, 0).farthest_node());
    }

    #[test]
    fn batched_eccentricities_match_the_sequential_loop() {
        let g = mesh(7, WeightModel::UniformUnit, 9);
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let batched = batched_eccentricities(&g, &sources);
        let sequential: Vec<Dist> =
            sources.iter().map(|&s| dijkstra(&g, s).eccentricity()).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn multi_source_results_come_back_in_source_order() {
        let g = mesh(5, WeightModel::UniformUnit, 2);
        let sources = [24u32, 0, 12];
        let tagged = multi_source_dijkstra(&g, &sources, |s, scratch| (s, scratch.distance(s)));
        assert_eq!(tagged, vec![(24, 0), (0, 0), (12, 0)]);
    }

    #[test]
    fn cancelled_batch_skips_but_never_truncates_a_source() {
        let g = mesh(6, WeightModel::UniformUnit, 3);
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let cancel = CancelToken::never();
        cancel.cancel();
        let out = multi_source_dijkstra_cancel(&g, &sources, &cancel, |_, s| s.eccentricity());
        assert!(out.iter().all(Option::is_none), "pre-cancelled batch must skip everything");
        // Uncancelled: every completed entry equals the full Dijkstra answer.
        let out = multi_source_dijkstra_cancel(&g, &sources, &CancelToken::never(), |_, s| {
            s.eccentricity()
        });
        let full = batched_eccentricities(&g, &sources);
        assert_eq!(out.into_iter().map(Option::unwrap).collect::<Vec<_>>(), full);
    }

    #[test]
    fn backward_run_matches_forward_on_reversed_graph() {
        // Directed cycle with a chord: 0→1 (2), 1→2 (3), 2→0 (5), 0→2 (9).
        let mut b = cldiam_graph::GraphBuilder::new_directed(3);
        b.add_arc(0, 1, 2);
        b.add_arc(1, 2, 3);
        b.add_arc(2, 0, 5);
        b.add_arc(0, 2, 9);
        let g = b.build();
        let r = g.reversed();
        let mut backward = DijkstraScratch::new();
        let mut forward = DijkstraScratch::new();
        for s in 0..3 {
            backward.run_directed(&g, s, SsspDirection::Backward);
            forward.run(&r, s);
            for v in 0..3 {
                assert_eq!(backward.distance(v), forward.distance(v), "source {s} node {v}");
            }
            assert_eq!(backward.eccentricity(), forward.eccentricity());
            assert_eq!(backward.farthest_node(), forward.farthest_node());
        }
    }

    #[test]
    fn directed_runs_on_undirected_graphs_are_direction_blind() {
        let g = mesh(5, WeightModel::UniformUnit, 8);
        let mut a = DijkstraScratch::new();
        let mut b = DijkstraScratch::new();
        a.run_directed(&g, 7, SsspDirection::Forward);
        b.run_directed(&g, 7, SsspDirection::Backward);
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(a.distance(v), b.distance(v));
        }
    }

    #[test]
    fn sweep_bitmap_marks_once_and_resets() {
        let mut scratch = DijkstraScratch::new();
        assert!(scratch.sweep_mark(5));
        assert!(!scratch.sweep_mark(5));
        assert!(scratch.sweep_mark(2));
        scratch.sweep_clear();
        assert!(scratch.sweep_mark(5));
        assert!(scratch.sweep_mark(2));
    }

    #[test]
    fn sweep_bitmap_survives_runs() {
        let g = mesh(4, WeightModel::UniformUnit, 1);
        let mut scratch = DijkstraScratch::new();
        scratch.sweep_clear();
        assert!(scratch.sweep_mark(0));
        scratch.run(&g, 0);
        assert!(!scratch.sweep_mark(0), "runs must not clear the sweep bitmap");
    }

    #[test]
    fn pool_reuses_scratches() {
        let pool = ScratchPool::new();
        let g = mesh(4, WeightModel::UniformUnit, 1);
        pool.with(|s| s.run(&g, 0));
        // The second borrow must see the pooled (already warmed) scratch.
        pool.with(|s| {
            assert!(s.reached() > 0);
            s.run(&g, 3);
            assert_eq!(s.distance(3), 0);
        });
    }
}
