//! Hop-count metrics: `ℓ_Δ` and the unweighted diameter `Ψ(G)`.
//!
//! The paper's round complexity is `O(ℓ_{R_G(τ) log n} · log n)`, where `ℓ_Δ`
//! is the smallest number such that any two nodes at weighted distance at most
//! `Δ` are joined by a minimum-weight path with at most `ℓ_Δ` edges; and the
//! Δ-stepping baseline is lower-bounded by the unweighted diameter `Ψ(G)`
//! under linear space. Computing either quantity exactly requires all-pairs
//! information, so the estimators below sample source nodes.

use cldiam_graph::traversal::double_sweep_hop_diameter;
use cldiam_graph::{Dist, Graph, NodeId, INFINITY};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;
use rayon::prelude::*;

use crate::dijkstra::dijkstra;

/// Estimates `ℓ_Δ` by running Dijkstra from `samples` random sources and
/// taking the maximum hop count among shortest paths of weight at most
/// `delta`. This is a lower bound on the true `ℓ_Δ` that converges quickly in
/// practice (the quantity is a max over node pairs, and sampled sources cover
/// the weight classes of interest).
pub fn ell_delta(graph: &Graph, delta: Dist, samples: usize, seed: u64) -> u32 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples.max(1)).map(|_| rng.gen_range(0..n) as NodeId).collect();
    sources
        .par_iter()
        .map(|&s| {
            let sp = dijkstra(graph, s);
            sp.dist
                .iter()
                .zip(sp.hops.iter())
                .filter(|&(&d, _)| d != INFINITY && d <= delta)
                .map(|(_, &h)| h)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Estimates the unweighted diameter `Ψ(G)` with double BFS sweeps from
/// `samples` random start nodes (a lower bound that is near-exact on the
/// high-diameter graph classes where `Ψ` matters).
pub fn unweighted_diameter(graph: &Graph, samples: usize, seed: u64) -> u32 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let starts: Vec<NodeId> = (0..samples.max(1)).map(|_| rng.gen_range(0..n) as NodeId).collect();
    starts.par_iter().map(|&s| double_sweep_hop_diameter(graph, s)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, weighted_path, WeightModel};

    #[test]
    fn ell_delta_on_weighted_path() {
        // Path with weights 1,1,1,10: within Δ=3 the longest shortest path has
        // 3 edges; within Δ=13 it has 4.
        let g = weighted_path(&[1, 1, 1, 10]);
        assert_eq!(ell_delta(&g, 3, 8, 1), 3);
        assert_eq!(ell_delta(&g, 13, 8, 1), 4);
        assert_eq!(ell_delta(&g, 0, 8, 1), 0);
    }

    #[test]
    fn ell_delta_is_monotone_in_delta() {
        let g = mesh(8, WeightModel::UniformUnit, 5);
        let small = ell_delta(&g, 200_000, 6, 2);
        let large = ell_delta(&g, 2_000_000, 6, 2);
        assert!(small <= large);
    }

    #[test]
    fn unweighted_diameter_of_mesh() {
        // Hop diameter of an S x S mesh is 2(S - 1), independent of weights.
        let g = mesh(7, WeightModel::UniformUnit, 3);
        assert_eq!(unweighted_diameter(&g, 4, 9), 12);
    }

    #[test]
    fn empty_graph_estimates_are_zero() {
        let g = cldiam_graph::Graph::empty(0);
        assert_eq!(ell_delta(&g, 10, 3, 0), 0);
        assert_eq!(unweighted_diameter(&g, 3, 0), 0);
    }
}
