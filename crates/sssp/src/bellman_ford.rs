//! Bellman-Ford with early termination — a second, structurally different
//! shortest-path oracle used to cross-check Dijkstra and Δ-stepping in
//! property tests, and the conceptual ancestor of the Δ-growing step
//! (Section 3 of the paper performs "edge relaxations of the kind used in the
//! classical Bellman-Ford's algorithm").

use cldiam_graph::{Dist, Graph, NodeId, INFINITY};

/// Output of [`bellman_ford`]: the distance array and the number of full
/// relaxation sweeps performed before convergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BellmanFordOutcome {
    /// `dist[u]` — shortest-path weight from the source ([`INFINITY`] if
    /// unreachable).
    pub dist: Vec<Dist>,
    /// Number of full-edge relaxation sweeps executed (the unweighted depth of
    /// the shortest-path tree plus one).
    pub sweeps: usize,
}

/// Runs Bellman-Ford from `source`, sweeping all edges until no tentative
/// distance improves. Since all weights are positive there are no negative
/// cycles and the procedure always terminates within `n` sweeps.
pub fn bellman_ford(graph: &Graph, source: NodeId) -> BellmanFordOutcome {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range (n = {n})");
    let mut dist = vec![INFINITY; n];
    dist[source as usize] = 0;
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        let mut changed = false;
        for u in 0..n as NodeId {
            let du = dist[u as usize];
            if du == INFINITY {
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                let candidate = du + Dist::from(w);
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate;
                    changed = true;
                }
            }
        }
        if !changed || sweeps > n {
            break;
        }
    }
    BellmanFordOutcome { dist, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    #[test]
    fn matches_dijkstra_on_small_graph() {
        let g = Graph::from_edges(
            6,
            &[(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 5), (2, 3, 8), (3, 4, 3), (1, 4, 10)],
        );
        let bf = bellman_ford(&g, 0);
        let dj = dijkstra(&g, 0);
        assert_eq!(bf.dist, dj.dist);
        assert_eq!(bf.dist[5], INFINITY);
    }

    #[test]
    fn sweeps_bounded_by_hop_depth() {
        // A path graph needs as many sweeps as its hop length (plus the final
        // no-change sweep) in the worst case, but never more than n + 1.
        let edges: Vec<_> = (0..49).map(|i| (i as NodeId, (i + 1) as NodeId, 1)).collect();
        let g = Graph::from_edges(50, &edges);
        let bf = bellman_ford(&g, 0);
        assert_eq!(bf.dist[49], 49);
        assert!(bf.sweeps <= 51);
    }

    #[test]
    fn isolated_source() {
        let g = Graph::from_edges(3, &[(1, 2, 7)]);
        let bf = bellman_ford(&g, 0);
        assert_eq!(bf.dist, vec![0, INFINITY, INFINITY]);
        assert_eq!(bf.sweeps, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_source() {
        bellman_ford(&Graph::empty(1), 3);
    }
}
