//! Sequential Dijkstra — the exactness oracle of the workspace.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cldiam_graph::{Dist, NeighborSource, NodeId, INFINITY};

/// Output of a single-source shortest path computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// `dist[u]` — weight of the shortest path from the source to `u`
    /// ([`INFINITY`] if unreachable).
    pub dist: Vec<Dist>,
    /// `hops[u]` — number of edges on the shortest path found to `u`
    /// (`u32::MAX` if unreachable). Ties between equal-weight paths are broken
    /// in favour of the path discovered first, so this is *a* shortest path's
    /// hop count, not necessarily the minimum over all shortest paths.
    pub hops: Vec<u32>,
    /// `parent[u]` — predecessor of `u` on the shortest-path tree
    /// (`u32::MAX` for the source and for unreachable nodes).
    pub parent: Vec<NodeId>,
}

impl ShortestPaths {
    /// Largest finite distance (the weighted eccentricity of the source
    /// within its component). Zero for a singleton component.
    pub fn eccentricity(&self) -> Dist {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// The node realizing [`ShortestPaths::eccentricity`] (the source itself
    /// for a singleton component).
    pub fn farthest_node(&self) -> NodeId {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INFINITY)
            .max_by_key(|&(_, &d)| d)
            .map(|(u, _)| u as NodeId)
            .unwrap_or(self.source)
    }

    /// Number of nodes reachable from the source (including the source).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INFINITY).count()
    }

    /// Reconstructs the node sequence of the shortest path to `target`, or
    /// `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target as usize] == INFINITY {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra's algorithm from `source` with a binary heap.
///
/// # Panics
///
/// Panics if `source` is not a node of `graph`.
pub fn dijkstra<G: NeighborSource>(graph: &G, source: NodeId) -> ShortestPaths {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range (n = {n})");
    let mut dist = vec![INFINITY; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();

    dist[source as usize] = 0;
    hops[source as usize] = 0;
    heap.push(Reverse((0, source)));

    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            let candidate = d + Dist::from(w);
            if candidate < dist[v as usize] {
                dist[v as usize] = candidate;
                hops[v as usize] = hops[u as usize] + 1;
                parent[v as usize] = u;
                heap.push(Reverse((candidate, v)));
            }
        }
    }

    ShortestPaths { source, dist, hops, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::Graph;

    fn diamond() -> Graph {
        // 0 -> 3 either via 1 (1 + 1 = 2) or via 2 (5 + 5 = 10); plus a direct
        // heavy edge 0-3 of weight 4.
        Graph::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 2, 5), (2, 3, 5), (0, 3, 4)])
    }

    #[test]
    fn shortest_distances_on_diamond() {
        let sp = dijkstra(&diamond(), 0);
        assert_eq!(sp.dist, vec![0, 1, 5, 2]);
        assert_eq!(sp.hops[3], 2);
        assert_eq!(sp.path_to(3), Some(vec![0, 1, 3]));
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let g = Graph::from_edges(4, &[(0, 1, 2), (2, 3, 2)]);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[1], 2);
        assert_eq!(sp.dist[2], INFINITY);
        assert_eq!(sp.hops[3], u32::MAX);
        assert_eq!(sp.path_to(2), None);
        assert_eq!(sp.reached(), 2);
    }

    #[test]
    fn eccentricity_and_farthest() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 10)]);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.eccentricity(), 12);
        assert_eq!(sp.farthest_node(), 3);
    }

    #[test]
    fn source_has_zero_distance_and_no_parent() {
        let sp = dijkstra(&diamond(), 2);
        assert_eq!(sp.dist[2], 0);
        assert_eq!(sp.parent[2], NodeId::MAX);
        assert_eq!(sp.path_to(2), Some(vec![2]));
    }

    #[test]
    fn singleton_graph() {
        let sp = dijkstra(&Graph::empty(1), 0);
        assert_eq!(sp.eccentricity(), 0);
        assert_eq!(sp.farthest_node(), 0);
        assert_eq!(sp.reached(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_source() {
        dijkstra(&Graph::empty(2), 5);
    }
}
