//! Synthetic weighted graph generators for the CL-DIAM benchmarks.
//!
//! The paper evaluates on three graph classes (Table 1):
//!
//! 1. **road networks** — roads-USA and roads-CAL from the DIMACS shortest
//!    path challenge, with original integer weights;
//! 2. **social networks** — livejournal (SNAP) and twitter (LAW), born
//!    unweighted, assigned uniform random weights in `(0, 1]`;
//! 3. **synthetic graphs** — `mesh(S)` (an `S×S` mesh), `R-MAT(S)` (power-law
//!    degree distribution, `2^S` nodes and `16·2^S` edges) and `roads(S)` (the
//!    cartesian product of a linear array of `S` nodes with roads-USA).
//!
//! The proprietary datasets are not redistributable, so this crate provides
//! generators for every class: the paper's own synthetic families are
//! implemented exactly as described, and the real datasets are replaced by
//! synthetic proxies with the same topological character (see `DESIGN.md`,
//! "Substitutions"). Every generator is deterministic given a `u64` seed.

#![forbid(unsafe_code)]

pub mod mesh;
pub mod path;
pub mod random;
pub mod rmat;
pub mod roads;
pub mod spec;
pub mod weights;

pub use mesh::{mesh, torus};
pub use path::{complete, cycle, path, star, weighted_path};
pub use random::{gnm_random, preferential_attachment};
pub use rmat::{rmat, RmatParams, GEN_CHUNKS};
pub use roads::{road_network, roads_product};
pub use spec::GraphSpec;
pub use weights::{assign_weights, WeightModel};
