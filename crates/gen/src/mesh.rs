//! Mesh topologies.
//!
//! `mesh(S)` in the paper is an `S × S` square mesh with `S²` nodes and
//! `2S(S − 1)` edges; it is included because its doubling dimension is known
//! (`b = 2`), so Corollary 1 applies. Weights are drawn from a
//! [`WeightModel`], uniform `(0, 1]` in the paper's Table 1 and bimodal in the
//! §5 initial-`Δ` experiment.

use cldiam_graph::{Graph, GraphBuilder, NodeId};
use rand::SeedableRng;
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::weights::WeightModel;

/// An `side × side` square mesh with weights drawn from `model`.
pub fn mesh(side: usize, model: WeightModel, seed: u64) -> Graph {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let n = side * side;
    let id = |r: usize, c: usize| (r * side + c) as NodeId;
    let mut b = GraphBuilder::with_capacity(n, 2 * side * side.saturating_sub(1));
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                b.add_edge(id(r, c), id(r, c + 1), model.sample(&mut rng, 1));
            }
            if r + 1 < side {
                b.add_edge(id(r, c), id(r + 1, c), model.sample(&mut rng, 1));
            }
        }
    }
    b.build()
}

/// An `side × side` torus (mesh with wrap-around edges), weights from `model`.
pub fn torus(side: usize, model: WeightModel, seed: u64) -> Graph {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let n = side * side;
    let id = |r: usize, c: usize| ((r % side) * side + (c % side)) as NodeId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..side {
        for c in 0..side {
            b.add_edge(id(r, c), id(r, c + 1), model.sample(&mut rng, 1));
            b.add_edge(id(r, c), id(r + 1, c), model.sample(&mut rng, 1));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::connected_components;

    #[test]
    fn mesh_counts_match_paper_formula() {
        for side in [2usize, 5, 16] {
            let g = mesh(side, WeightModel::Unit, 0);
            assert_eq!(g.num_nodes(), side * side);
            assert_eq!(g.num_edges(), 2 * side * (side - 1));
        }
    }

    #[test]
    fn mesh_is_connected() {
        let g = mesh(10, WeightModel::UniformUnit, 3);
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn mesh_corner_and_interior_degrees() {
        let g = mesh(4, WeightModel::Unit, 0);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
    }

    #[test]
    fn mesh_is_deterministic_in_seed() {
        assert_eq!(mesh(6, WeightModel::UniformUnit, 9), mesh(6, WeightModel::UniformUnit, 9));
        assert_ne!(mesh(6, WeightModel::UniformUnit, 9), mesh(6, WeightModel::UniformUnit, 10));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(5, WeightModel::Unit, 0);
        assert_eq!(g.num_nodes(), 25);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
    }

    #[test]
    fn degenerate_torus_has_no_self_loops() {
        // side = 1 wraps every edge onto a single node; all become self loops
        // and must be dropped.
        let g = torus(1, WeightModel::Unit, 0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
