//! Edge-weight models.
//!
//! The paper's convention: road networks keep their original integer weights;
//! every other graph, being born unweighted, receives weights drawn uniformly
//! at random from `(0, 1]` (stored in fixed point, see
//! [`cldiam_graph::WEIGHT_SCALE`]). The §5 initial-`Δ` experiment additionally
//! uses a bimodal distribution (weight 1 with probability 0.1 and `10⁻⁶`
//! otherwise).

use cldiam_graph::{weight_from_unit, Graph, Weight};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

/// A distribution of edge weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// Every edge has weight 1 (unweighted graphs).
    Unit,
    /// Uniform real weights in `(0, 1]`, stored in fixed point — the paper's
    /// convention for graphs that are born unweighted.
    UniformUnit,
    /// Uniform integer weights in `lo..=hi`.
    UniformRange {
        /// Smallest weight (clamped to ≥ 1).
        lo: Weight,
        /// Largest weight.
        hi: Weight,
    },
    /// The §5 experiment: weight `heavy` with probability `heavy_prob`, and
    /// `light` otherwise. With the paper's values (`heavy` = 1, `light` =
    /// `10⁻⁶`, `heavy_prob` = 0.1) a mesh can be covered by clusters that never
    /// traverse a heavy edge.
    Bimodal {
        /// The rare, heavy weight.
        heavy: Weight,
        /// The common, light weight.
        light: Weight,
        /// Probability of drawing the heavy weight.
        heavy_prob: f64,
    },
    /// Keep whatever weight the topology generator produced (road networks).
    Original,
}

impl WeightModel {
    /// The paper's bimodal configuration for the initial-`Δ` experiment:
    /// weight 1 with probability 0.1 and `10⁻⁶` otherwise (both in fixed
    /// point).
    pub fn paper_bimodal() -> Self {
        WeightModel::Bimodal { heavy: weight_from_unit(1.0), light: 1, heavy_prob: 0.1 }
    }

    /// Draws one weight from the model (`Original` draws nothing and returns
    /// `current`).
    pub fn sample<R: Rng>(&self, rng: &mut R, current: Weight) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformUnit => {
                // Uniform in (0, 1]: take 1 - U[0,1) to exclude zero.
                weight_from_unit(1.0 - rng.gen::<f64>())
            }
            WeightModel::UniformRange { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.gen_range(lo..=hi)
            }
            WeightModel::Bimodal { heavy, light, heavy_prob } => {
                if rng.gen::<f64>() < heavy_prob {
                    heavy.max(1)
                } else {
                    light.max(1)
                }
            }
            WeightModel::Original => current,
        }
    }

    /// Short human-readable name used in experiment logs.
    pub fn name(&self) -> &'static str {
        match self {
            WeightModel::Unit => "unit",
            WeightModel::UniformUnit => "uniform(0,1]",
            WeightModel::UniformRange { .. } => "uniform-int",
            WeightModel::Bimodal { .. } => "bimodal",
            WeightModel::Original => "original",
        }
    }
}

/// Re-draws every edge weight of `graph` according to `model`, deterministically
/// from `seed`. `WeightModel::Original` returns a clone of the input.
pub fn assign_weights(graph: &Graph, model: WeightModel, seed: u64) -> Graph {
    if model == WeightModel::Original {
        return graph.clone();
    }
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    cldiam_graph::ops::map_weights(graph, |_, _, w| model.sample(&mut rng, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::WEIGHT_SCALE;

    fn any_rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(1)
    }

    #[test]
    fn unit_model_is_constant() {
        let mut rng = any_rng();
        assert_eq!(WeightModel::Unit.sample(&mut rng, 99), 1);
    }

    #[test]
    fn uniform_unit_stays_in_range() {
        let mut rng = any_rng();
        for _ in 0..1000 {
            let w = WeightModel::UniformUnit.sample(&mut rng, 1);
            assert!((1..=WEIGHT_SCALE).contains(&w));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = any_rng();
        let model = WeightModel::UniformRange { lo: 10, hi: 20 };
        for _ in 0..1000 {
            let w = model.sample(&mut rng, 1);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn bimodal_frequencies_are_plausible() {
        let mut rng = any_rng();
        let model = WeightModel::paper_bimodal();
        let heavy = weight_from_unit(1.0);
        let mut heavy_count = 0;
        for _ in 0..10_000 {
            if model.sample(&mut rng, 1) == heavy {
                heavy_count += 1;
            }
        }
        // Expect ~1000 heavy draws out of 10_000.
        assert!((700..1300).contains(&heavy_count), "heavy draws: {heavy_count}");
    }

    #[test]
    fn original_model_preserves_weights() {
        let mut rng = any_rng();
        assert_eq!(WeightModel::Original.sample(&mut rng, 1234), 1234);
    }

    #[test]
    fn assign_weights_is_deterministic() {
        let g = cldiam_graph::Graph::from_edges(4, &[(0, 1, 7), (1, 2, 7), (2, 3, 7)]);
        let a = assign_weights(&g, WeightModel::UniformUnit, 5);
        let b = assign_weights(&g, WeightModel::UniformUnit, 5);
        let c = assign_weights(&g, WeightModel::UniformUnit, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_edges(), g.num_edges());
    }

    #[test]
    fn assign_weights_original_is_identity() {
        let g = cldiam_graph::Graph::from_edges(3, &[(0, 1, 3), (1, 2, 9)]);
        assert_eq!(assign_weights(&g, WeightModel::Original, 0), g);
    }
}
