//! Classic random graph models: Erdős–Rényi `G(n, m)` and preferential
//! attachment (Barabási–Albert).
//!
//! The preferential-attachment generator is the proxy for the livejournal
//! social network (power-law degrees, small diameter, a single giant
//! component); `G(n, m)` is used in tests and ablations as a topology with
//! light-tailed degrees.

use cldiam_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::weights::WeightModel;

/// Erdős–Rényi graph with `n` nodes and (up to) `m` distinct edges, weights
/// from `model`.
pub fn gnm_random(n: usize, m: usize, model: WeightModel, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "cannot place edges on fewer than two nodes");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(20).max(64);
    while placed < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        builder.add_edge(u, v, model.sample(&mut rng, 1));
        placed += 1;
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: nodes arrive one at a time and
/// connect to `edges_per_node` existing nodes chosen proportionally to their
/// current degree.
pub fn preferential_attachment(
    n: usize,
    edges_per_node: usize,
    model: WeightModel,
    seed: u64,
) -> Graph {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let m = edges_per_node.max(1);
    let mut builder = GraphBuilder::with_capacity(n, n.saturating_mul(m));
    if n == 0 {
        return builder.build();
    }
    // Target multiset: each edge endpoint is recorded once; sampling uniformly
    // from this list is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique among the first min(n, m + 1) nodes.
    let seed_nodes = n.min(m + 1);
    for i in 0..seed_nodes {
        for j in (i + 1)..seed_nodes {
            builder.add_edge(i as NodeId, j as NodeId, model.sample(&mut rng, 1));
            endpoints.push(i as NodeId);
            endpoints.push(j as NodeId);
        }
    }
    for u in seed_nodes..n {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let target = if endpoints.is_empty() {
                rng.gen_range(0..u) as NodeId
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target != u as NodeId && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &v in &chosen {
            builder.add_edge(u as NodeId, v, model.sample(&mut rng, 1));
            endpoints.push(u as NodeId);
            endpoints.push(v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::stats::GraphStats;
    use cldiam_graph::{connected_components, largest_component};

    #[test]
    fn gnm_has_requested_size() {
        let g = gnm_random(100, 300, WeightModel::Unit, 2);
        assert_eq!(g.num_nodes(), 100);
        // Duplicates are collapsed, so the edge count is at most the target.
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() >= 250, "edges: {}", g.num_edges());
    }

    #[test]
    fn gnm_zero_edges() {
        let g = gnm_random(10, 0, WeightModel::Unit, 2);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnm_is_deterministic() {
        assert_eq!(
            gnm_random(50, 120, WeightModel::UniformUnit, 9),
            gnm_random(50, 120, WeightModel::UniformUnit, 9)
        );
    }

    #[test]
    fn ba_graph_is_connected_and_skewed() {
        let g = preferential_attachment(2000, 4, WeightModel::UniformUnit, 11);
        assert_eq!(g.num_nodes(), 2000);
        assert!(connected_components(&g).is_connected());
        let stats = GraphStats::compute(&g);
        assert!(stats.max_degree > 8 * stats.avg_degree as usize);
    }

    #[test]
    fn ba_small_hop_diameter() {
        let g = preferential_attachment(2000, 4, WeightModel::Unit, 11);
        let (core, _) = largest_component(&g);
        let d = cldiam_graph::traversal::double_sweep_hop_diameter(&core, 0);
        assert!(d <= 10, "hop diameter {d}");
    }

    #[test]
    fn ba_handles_tiny_inputs() {
        assert_eq!(preferential_attachment(0, 3, WeightModel::Unit, 1).num_nodes(), 0);
        let g = preferential_attachment(3, 5, WeightModel::Unit, 1);
        assert_eq!(g.num_nodes(), 3);
        assert!(g.num_edges() <= 3);
    }
}
