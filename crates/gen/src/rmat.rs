//! R-MAT recursive matrix graphs (Chakrabarti, Zhan, Faloutsos, SDM 2004).
//!
//! `R-MAT(S)` in the paper has `2^S` nodes and `16 · 2^S` edges, a power-law
//! degree distribution and small diameter — a stand-in for social networks
//! such as twitter. Edge weights follow a uniform `(0, 1]` distribution.

use cldiam_graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;
use rayon::prelude::*;

use crate::weights::WeightModel;

/// Number of deterministic chunks edge generation is split into.
///
/// Each chunk derives its own RNG stream from `(seed, chunk index)`, so this
/// constant is part of the generator's output format: changing it changes
/// every generated graph. It is deliberately a generator-owned constant —
/// **not** `rayon::current_num_threads()`, which now reports real hardware
/// threads — so graphs are bit-identical on any machine at any thread count.
/// (The value matches the simulated thread count of the PR-1 sequential
/// executor, preserving all previously generated graphs.)
pub const GEN_CHUNKS: usize = 8;

/// Parameters of the R-MAT recursion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// `log2` of the number of nodes.
    pub scale: u32,
    /// Number of (directed, pre-symmetrization) edges generated per node.
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Per-level multiplicative noise applied to the quadrant probabilities,
    /// which avoids the strictly self-similar degree plateaus of noiseless
    /// R-MAT.
    pub noise: f64,
}

impl RmatParams {
    /// The paper's configuration: `2^scale` nodes, `16 · 2^scale` edges, and
    /// the standard skewed quadrant probabilities `(0.57, 0.19, 0.19, 0.05)`.
    pub fn paper(scale: u32) -> Self {
        RmatParams { scale, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, noise: 0.1 }
    }

    /// Probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        (1.0 - self.a - self.b - self.c).max(0.0)
    }
}

/// Generates an R-MAT graph with weights drawn from `model`.
///
/// The returned graph is symmetrized (the paper symmetrizes twitter the same
/// way), has self loops removed and parallel edges collapsed, so the final
/// undirected edge count is somewhat below `edge_factor · 2^scale`.
pub fn rmat(params: RmatParams, model: WeightModel, seed: u64) -> Graph {
    let n = 1usize << params.scale;
    let target_edges = n.saturating_mul(params.edge_factor);

    // Generate edge endpoints in parallel chunks, each with an independent
    // deterministic stream derived from (seed, chunk index).
    let chunks = GEN_CHUNKS;
    let per_chunk = target_edges.div_ceil(chunks);
    let edge_lists: Vec<Vec<(NodeId, NodeId)>> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(
                seed ^ (chunk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let count = per_chunk.min(target_edges.saturating_sub(chunk * per_chunk));
            let mut edges = Vec::with_capacity(count);
            for _ in 0..count {
                edges.push(sample_edge(&params, &mut rng));
            }
            edges
        })
        .collect();

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed.wrapping_add(1));
    let mut builder = GraphBuilder::with_capacity(n, target_edges);
    for edges in edge_lists {
        for (u, v) in edges {
            builder.add_edge(u, v, model.sample(&mut rng, 1));
        }
    }
    builder.build()
}

fn sample_edge<R: Rng>(params: &RmatParams, rng: &mut R) -> (NodeId, NodeId) {
    let (mut row, mut col) = (0u64, 0u64);
    let d = params.d();
    for level in (0..params.scale).rev() {
        // Multiplicative noise, renormalized.
        let mut jitter = |p: f64| p * (1.0 - params.noise + 2.0 * params.noise * rng.gen::<f64>());
        let (a, b, c, dd) = (jitter(params.a), jitter(params.b), jitter(params.c), jitter(d));
        let total = a + b + c + dd;
        let r = rng.gen::<f64>() * total;
        let bit = 1u64 << level;
        if r < a {
            // top-left: nothing to add
        } else if r < a + b {
            col |= bit;
        } else if r < a + b + c {
            row |= bit;
        } else {
            row |= bit;
            col |= bit;
        }
    }
    (row as NodeId, col as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::stats::GraphStats;

    #[test]
    fn paper_params_sum_to_one() {
        let p = RmatParams::paper(10);
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-9);
        assert_eq!(p.edge_factor, 16);
    }

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(RmatParams::paper(8), WeightModel::Unit, 1);
        assert_eq!(g.num_nodes(), 256);
        // Deduplication removes some edges but the bulk must remain.
        assert!(g.num_edges() > 256 * 4, "edges: {}", g.num_edges());
        assert!(g.num_edges() <= 256 * 16);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = RmatParams::paper(7);
        assert_eq!(rmat(p, WeightModel::UniformUnit, 3), rmat(p, WeightModel::UniformUnit, 3));
        assert_ne!(rmat(p, WeightModel::UniformUnit, 3), rmat(p, WeightModel::UniformUnit, 4));
    }

    #[test]
    fn generation_is_independent_of_thread_count() {
        // The chunk count is GEN_CHUNKS, never the pool size, so the same
        // seed yields the same graph no matter how many workers execute it.
        let p = RmatParams::paper(7);
        let baseline = rmat(p, WeightModel::UniformUnit, 3);
        for threads in [1usize, 3, 8] {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
            let graph = pool.install(|| rmat(p, WeightModel::UniformUnit, 3));
            assert_eq!(graph, baseline, "{threads} threads");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(RmatParams::paper(10), WeightModel::Unit, 7);
        let stats = GraphStats::compute(&g);
        // A power-law-ish graph has a hub whose degree dwarfs the average.
        assert!(
            stats.max_degree as f64 > 10.0 * stats.avg_degree,
            "max {} avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn small_diameter_of_largest_component() {
        let g = rmat(RmatParams::paper(10), WeightModel::Unit, 7);
        let (core, _) = cldiam_graph::largest_component(&g);
        // The giant component should cover most nodes and have a tiny hop
        // diameter, like the paper's social graphs (Ψ ≈ 9).
        assert!(core.num_nodes() > g.num_nodes() / 2);
        let hop_diam = cldiam_graph::traversal::double_sweep_hop_diameter(&core, 0);
        assert!(hop_diam <= 12, "hop diameter {hop_diam}");
    }
}
