//! Synthetic road networks.
//!
//! The paper's road benchmarks (roads-USA, roads-CAL) come from the DIMACS
//! shortest-path challenge and cannot be redistributed here, so this module
//! generates a synthetic proxy with the same topological character: a sparse,
//! near-planar network with very high (weighted and unweighted) diameter, low
//! doubling dimension, positive integer weights that vary smoothly in space
//! (travel times), and average degree well below 3.
//!
//! The construction is a percolated grid: intersections sit on an `rows ×
//! cols` lattice; each lattice edge is kept with a fixed probability (above
//! the percolation threshold, so a giant component spans the map); edge
//! weights are Euclidean lengths of jittered node positions multiplied by a
//! smooth "terrain" factor, mimicking the spatially correlated travel times of
//! real road graphs. A sparse set of diagonal "shortcut" edges plays the role
//! of highways.
//!
//! `roads(S)` from Table 1 — "the cartesian product of a linear array of `S`
//! nodes … with roads-USA" — is provided by [`roads_product`].

use cldiam_graph::ops::cartesian_product;
use cldiam_graph::{Graph, GraphBuilder, NodeId, Weight};
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::path::path;

/// Probability of keeping each lattice edge (above the bond-percolation
/// threshold 0.5 of the square lattice, so the giant component spans).
const KEEP_PROBABILITY: f64 = 0.72;
/// Probability of adding a diagonal shortcut at a lattice cell.
const SHORTCUT_PROBABILITY: f64 = 0.04;
/// Base length scale of one lattice step, in integer weight units.
const BASE_LENGTH: f64 = 400.0;

/// Generates a synthetic road network on an `rows × cols` lattice.
///
/// The graph may contain small disconnected islands (as real road extracts
/// do); callers interested in a connected instance should extract the largest
/// component via [`cldiam_graph::largest_component`].
pub fn road_network(rows: usize, cols: usize, seed: u64) -> Graph {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;

    // Jittered positions, in lattice units.
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            (r as f64 + rng.gen::<f64>() * 0.35, c as f64 + rng.gen::<f64>() * 0.35)
        })
        .collect();

    // Smooth terrain factor per coarse 8x8 block, interpolated by lookup.
    let block_rows = rows.div_ceil(8).max(1);
    let block_cols = cols.div_ceil(8).max(1);
    let terrain: Vec<f64> =
        (0..block_rows * block_cols).map(|_| 1.0 + 1.5 * rng.gen::<f64>()).collect();
    let terrain_at = |r: usize, c: usize| {
        terrain[(r / 8).min(block_rows - 1) * block_cols + (c / 8).min(block_cols - 1)]
    };

    let edge_weight =
        |ra: usize, ca: usize, rb: usize, cb: usize, rng: &mut Xoshiro256PlusPlus| -> Weight {
            let (xa, ya) = positions[ra * cols + ca];
            let (xb, yb) = positions[rb * cols + cb];
            let dist = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
            let factor = 0.5 * (terrain_at(ra, ca) + terrain_at(rb, cb));
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            ((dist * factor * noise * BASE_LENGTH).round() as Weight).max(1)
        };

    let mut b = GraphBuilder::with_capacity(n, (2.6 * n as f64) as usize / 2);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() < KEEP_PROBABILITY {
                let w = edge_weight(r, c, r, c + 1, &mut rng);
                b.add_edge(id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows && rng.gen::<f64>() < KEEP_PROBABILITY {
                let w = edge_weight(r, c, r + 1, c, &mut rng);
                b.add_edge(id(r, c), id(r + 1, c), w);
            }
            if r + 1 < rows && c + 1 < cols && rng.gen::<f64>() < SHORTCUT_PROBABILITY {
                let w = edge_weight(r, c, r + 1, c + 1, &mut rng);
                b.add_edge(id(r, c), id(r + 1, c + 1), w);
            }
        }
    }
    b.build()
}

/// The paper's `roads(S)` family: the cartesian product of a unit-weight
/// linear array of `S` nodes with a road network (`≈ S · n_base` nodes).
pub fn roads_product(s: usize, base: &Graph) -> Graph {
    cartesian_product(&path(s, 1), base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::stats::GraphStats;
    use cldiam_graph::{largest_component, traversal};

    #[test]
    fn road_network_is_sparse() {
        let g = road_network(40, 40, 3);
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.nodes, 1600);
        assert!(
            stats.avg_degree > 1.8 && stats.avg_degree < 3.2,
            "avg degree {}",
            stats.avg_degree
        );
        assert!(stats.max_degree <= 8);
    }

    #[test]
    fn giant_component_spans_most_nodes() {
        let g = road_network(50, 50, 7);
        let (core, _) = largest_component(&g);
        assert!(core.num_nodes() > g.num_nodes() * 7 / 10, "giant component {}", core.num_nodes());
    }

    #[test]
    fn road_network_has_high_hop_diameter() {
        let g = road_network(40, 40, 5);
        let (core, _) = largest_component(&g);
        let d = traversal::double_sweep_hop_diameter(&core, 0);
        // A percolated 40x40 lattice must have hop diameter at least the grid
        // dimension; social-like graphs would be < 15.
        assert!(d >= 40, "hop diameter {d}");
    }

    #[test]
    fn weights_are_positive_and_spatially_bounded() {
        let g = road_network(20, 20, 11);
        let stats = GraphStats::compute(&g);
        assert!(stats.min_weight >= 1);
        // Lattice neighbours are ~1 unit apart: weights stay within a small
        // multiple of the base length.
        assert!(stats.max_weight <= (6.0 * BASE_LENGTH) as Weight);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(road_network(15, 15, 1), road_network(15, 15, 1));
        assert_ne!(road_network(15, 15, 1), road_network(15, 15, 2));
    }

    #[test]
    fn roads_product_scales_nodes_linearly() {
        let base = road_network(10, 10, 3);
        let g = roads_product(3, &base);
        assert_eq!(g.num_nodes(), 3 * base.num_nodes());
        // Product edge count: 3 * m_base + 2 * n_base.
        assert_eq!(g.num_edges(), 3 * base.num_edges() + 2 * base.num_nodes());
    }

    #[test]
    fn roads_product_with_s_one_is_base() {
        let base = road_network(8, 8, 3);
        let g = roads_product(1, &base);
        assert_eq!(g.num_nodes(), base.num_nodes());
        assert_eq!(g.num_edges(), base.num_edges());
    }
}
