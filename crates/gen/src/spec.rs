//! Named benchmark workloads.
//!
//! [`GraphSpec`] gives every benchmark family of Table 1 a name and a
//! parameter set so the harness, the examples and the tests can refer to the
//! same workloads. `generate` is deterministic in the seed.

use cldiam_graph::{largest_component, Graph};

use crate::mesh::mesh;
use crate::random::{gnm_random, preferential_attachment};
use crate::rmat::{rmat, RmatParams};
use crate::roads::{road_network, roads_product};
use crate::weights::{assign_weights, WeightModel};

/// A named, parameterized benchmark graph family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphSpec {
    /// Synthetic road network on an `rows × cols` lattice (proxy for
    /// roads-USA / roads-CAL), original integer weights.
    RoadNetwork {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// `mesh(S)`: an `S × S` square mesh with uniform `(0, 1]` weights.
    Mesh {
        /// Side length `S`.
        side: usize,
    },
    /// `R-MAT(S)`: `2^S` nodes, `16·2^S` edges, uniform `(0, 1]` weights
    /// (proxy for twitter and for the paper's own R-MAT family).
    RMat {
        /// `log2` of the number of nodes.
        scale: u32,
    },
    /// Preferential-attachment graph (proxy for livejournal), uniform
    /// `(0, 1]` weights.
    PreferentialAttachment {
        /// Number of nodes.
        nodes: usize,
        /// Edges added per arriving node.
        edges_per_node: usize,
    },
    /// Erdős–Rényi `G(n, m)`, uniform `(0, 1]` weights (used in ablations).
    Gnm {
        /// Number of nodes.
        nodes: usize,
        /// Number of edges.
        edges: usize,
    },
    /// `roads(S)`: cartesian product of a unit-weight path of `S` nodes with
    /// a synthetic road network on an `rows × cols` lattice.
    RoadsProduct {
        /// Path length `S`.
        s: usize,
        /// Base lattice rows.
        rows: usize,
        /// Base lattice columns.
        cols: usize,
    },
}

impl GraphSpec {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            GraphSpec::RoadNetwork { rows, cols } => format!("roads-{rows}x{cols}"),
            GraphSpec::Mesh { side } => format!("mesh({side})"),
            GraphSpec::RMat { scale } => format!("R-MAT({scale})"),
            GraphSpec::PreferentialAttachment { nodes, .. } => format!("social-ba({nodes})"),
            GraphSpec::Gnm { nodes, edges } => format!("gnm({nodes},{edges})"),
            GraphSpec::RoadsProduct { s, rows, cols } => format!("roads({s})x{rows}x{cols}"),
        }
    }

    /// The weight model the paper uses for this family.
    pub fn default_weight_model(&self) -> WeightModel {
        match self {
            GraphSpec::RoadNetwork { .. } | GraphSpec::RoadsProduct { .. } => WeightModel::Original,
            _ => WeightModel::UniformUnit,
        }
    }

    /// Generates the raw graph (possibly disconnected) with the family's
    /// default weight model.
    pub fn generate(&self, seed: u64) -> Graph {
        self.generate_with(self.default_weight_model(), seed)
    }

    /// Generates the raw graph with an explicit weight model.
    pub fn generate_with(&self, model: WeightModel, seed: u64) -> Graph {
        let topology = match *self {
            GraphSpec::RoadNetwork { rows, cols } => road_network(rows, cols, seed),
            GraphSpec::Mesh { side } => return mesh(side, model, seed),
            GraphSpec::RMat { scale } => return rmat(RmatParams::paper(scale), model, seed),
            GraphSpec::PreferentialAttachment { nodes, edges_per_node } => {
                return preferential_attachment(nodes, edges_per_node, model, seed)
            }
            GraphSpec::Gnm { nodes, edges } => return gnm_random(nodes, edges, model, seed),
            GraphSpec::RoadsProduct { s, rows, cols } => {
                roads_product(s, &road_network(rows, cols, seed))
            }
        };
        match model {
            WeightModel::Original => topology,
            other => assign_weights(&topology, other, seed.wrapping_add(0xDEAD_BEEF)),
        }
    }

    /// Generates the largest connected component of the family (what every
    /// experiment actually runs on). Returns the connected graph.
    pub fn generate_connected(&self, seed: u64) -> Graph {
        let raw = self.generate(seed);
        let (core, _) = largest_component(&raw);
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::connected_components;

    #[test]
    fn labels_are_distinct_and_stable() {
        let specs = [
            GraphSpec::RoadNetwork { rows: 10, cols: 20 },
            GraphSpec::Mesh { side: 8 },
            GraphSpec::RMat { scale: 9 },
            GraphSpec::PreferentialAttachment { nodes: 100, edges_per_node: 3 },
            GraphSpec::Gnm { nodes: 50, edges: 100 },
            GraphSpec::RoadsProduct { s: 2, rows: 5, cols: 5 },
        ];
        let labels: Vec<_> = specs.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(GraphSpec::Mesh { side: 8 }.label(), "mesh(8)");
    }

    #[test]
    fn road_families_keep_original_weights() {
        assert_eq!(
            GraphSpec::RoadNetwork { rows: 4, cols: 4 }.default_weight_model(),
            WeightModel::Original
        );
        assert_eq!(GraphSpec::Mesh { side: 4 }.default_weight_model(), WeightModel::UniformUnit);
    }

    #[test]
    fn generate_connected_yields_single_component() {
        let spec = GraphSpec::RoadNetwork { rows: 20, cols: 20 };
        let g = spec.generate_connected(3);
        assert!(connected_components(&g).is_connected());
        assert!(g.num_nodes() > 100);
    }

    #[test]
    fn generate_is_deterministic_per_spec() {
        let spec = GraphSpec::RMat { scale: 7 };
        assert_eq!(spec.generate(5), spec.generate(5));
    }

    #[test]
    fn explicit_weight_model_overrides_default() {
        let spec = GraphSpec::Mesh { side: 6 };
        let unit = spec.generate_with(WeightModel::Unit, 1);
        assert_eq!(unit.max_weight(), Some(1));
        let uniform = spec.generate_with(WeightModel::UniformUnit, 1);
        assert!(uniform.max_weight().unwrap() > 1);
    }
}
