//! Named benchmark workloads.
//!
//! [`GraphSpec`] gives every benchmark family of Table 1 a name and a
//! parameter set so the harness, the examples and the tests can refer to the
//! same workloads. `generate` is deterministic in the seed.

use cldiam_graph::{largest_component, Graph};

use crate::mesh::mesh;
use crate::random::{gnm_random, preferential_attachment};
use crate::rmat::{rmat, RmatParams};
use crate::roads::{road_network, roads_product};
use crate::weights::{assign_weights, WeightModel};

/// A named, parameterized benchmark graph family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphSpec {
    /// Synthetic road network on an `rows × cols` lattice (proxy for
    /// roads-USA / roads-CAL), original integer weights.
    RoadNetwork {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// `mesh(S)`: an `S × S` square mesh with uniform `(0, 1]` weights.
    Mesh {
        /// Side length `S`.
        side: usize,
    },
    /// `R-MAT(S)`: `2^S` nodes, `16·2^S` edges, uniform `(0, 1]` weights
    /// (proxy for twitter and for the paper's own R-MAT family).
    RMat {
        /// `log2` of the number of nodes.
        scale: u32,
    },
    /// Preferential-attachment graph (proxy for livejournal), uniform
    /// `(0, 1]` weights.
    PreferentialAttachment {
        /// Number of nodes.
        nodes: usize,
        /// Edges added per arriving node.
        edges_per_node: usize,
    },
    /// Erdős–Rényi `G(n, m)`, uniform `(0, 1]` weights (used in ablations).
    Gnm {
        /// Number of nodes.
        nodes: usize,
        /// Number of edges.
        edges: usize,
    },
    /// `roads(S)`: cartesian product of a unit-weight path of `S` nodes with
    /// a synthetic road network on an `rows × cols` lattice.
    RoadsProduct {
        /// Path length `S`.
        s: usize,
        /// Base lattice rows.
        rows: usize,
        /// Base lattice columns.
        cols: usize,
    },
}

impl GraphSpec {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            GraphSpec::RoadNetwork { rows, cols } => format!("roads-{rows}x{cols}"),
            GraphSpec::Mesh { side } => format!("mesh({side})"),
            GraphSpec::RMat { scale } => format!("R-MAT({scale})"),
            GraphSpec::PreferentialAttachment { nodes, .. } => format!("social-ba({nodes})"),
            GraphSpec::Gnm { nodes, edges } => format!("gnm({nodes},{edges})"),
            GraphSpec::RoadsProduct { s, rows, cols } => format!("roads({s})x{rows}x{cols}"),
        }
    }

    /// The weight model the paper uses for this family.
    pub fn default_weight_model(&self) -> WeightModel {
        match self {
            GraphSpec::RoadNetwork { .. } | GraphSpec::RoadsProduct { .. } => WeightModel::Original,
            _ => WeightModel::UniformUnit,
        }
    }

    /// Generates the raw graph (possibly disconnected) with the family's
    /// default weight model.
    pub fn generate(&self, seed: u64) -> Graph {
        self.generate_with(self.default_weight_model(), seed)
    }

    /// Generates the raw graph with an explicit weight model.
    pub fn generate_with(&self, model: WeightModel, seed: u64) -> Graph {
        let topology = match *self {
            GraphSpec::RoadNetwork { rows, cols } => road_network(rows, cols, seed),
            GraphSpec::Mesh { side } => return mesh(side, model, seed),
            GraphSpec::RMat { scale } => return rmat(RmatParams::paper(scale), model, seed),
            GraphSpec::PreferentialAttachment { nodes, edges_per_node } => {
                return preferential_attachment(nodes, edges_per_node, model, seed)
            }
            GraphSpec::Gnm { nodes, edges } => return gnm_random(nodes, edges, model, seed),
            GraphSpec::RoadsProduct { s, rows, cols } => {
                roads_product(s, &road_network(rows, cols, seed))
            }
        };
        match model {
            WeightModel::Original => topology,
            other => assign_weights(&topology, other, seed.wrapping_add(0xDEAD_BEEF)),
        }
    }

    /// Generates the largest connected component of the family (what every
    /// experiment actually runs on). Returns the connected graph.
    pub fn generate_connected(&self, seed: u64) -> Graph {
        let raw = self.generate(seed);
        let (core, _) = largest_component(&raw);
        core
    }

    /// Parses a compact textual spec, the syntax of the `cldiam` CLI's
    /// `gen:` inputs (the part after the `gen:` prefix):
    ///
    /// * `mesh:SIDE` — `mesh(SIDE)`;
    /// * `rmat:SCALE` — `R-MAT(SCALE)`;
    /// * `road:ROWSxCOLS` — synthetic road lattice;
    /// * `ba:NODES:EDGES_PER_NODE` — preferential attachment;
    /// * `gnm:NODES:EDGES` — Erdős–Rényi `G(n, m)`;
    /// * `roads:S:ROWSxCOLS` — the paper's `roads(S)` cartesian product.
    pub fn parse(spec: &str) -> Result<GraphSpec, String> {
        fn num<T: std::str::FromStr>(token: Option<&str>, what: &str) -> Result<T, String> {
            token
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("bad {what}: {:?}", token.unwrap_or("")))
        }
        fn grid(token: Option<&str>) -> Result<(usize, usize), String> {
            let token = token.ok_or("missing ROWSxCOLS dimensions")?;
            let (r, c) = token.split_once('x').ok_or_else(|| {
                format!("bad dimensions {token:?}: expected ROWSxCOLS (e.g. 40x40)")
            })?;
            Ok((
                r.parse().map_err(|_| format!("bad row count {r:?}"))?,
                c.parse().map_err(|_| format!("bad column count {c:?}"))?,
            ))
        }
        let mut parts = spec.split(':');
        let family = parts.next().unwrap_or("");
        let parsed = match family {
            "mesh" => GraphSpec::Mesh { side: num(parts.next(), "mesh side")? },
            "rmat" => GraphSpec::RMat { scale: num(parts.next(), "R-MAT scale")? },
            "road" => {
                let (rows, cols) = grid(parts.next())?;
                GraphSpec::RoadNetwork { rows, cols }
            }
            "ba" => GraphSpec::PreferentialAttachment {
                nodes: num(parts.next(), "node count")?,
                edges_per_node: num(parts.next(), "edges-per-node count")?,
            },
            "gnm" => GraphSpec::Gnm {
                nodes: num(parts.next(), "node count")?,
                edges: num(parts.next(), "edge count")?,
            },
            "roads" => {
                let s = num(parts.next(), "path length S")?;
                let (rows, cols) = grid(parts.next())?;
                GraphSpec::RoadsProduct { s, rows, cols }
            }
            other => {
                return Err(format!(
                    "unknown family {other:?}: expected mesh | rmat | road | ba | gnm | roads"
                ))
            }
        };
        if let Some(extra) = parts.next() {
            return Err(format!("unexpected trailing component {extra:?}"));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::connected_components;

    #[test]
    fn labels_are_distinct_and_stable() {
        let specs = [
            GraphSpec::RoadNetwork { rows: 10, cols: 20 },
            GraphSpec::Mesh { side: 8 },
            GraphSpec::RMat { scale: 9 },
            GraphSpec::PreferentialAttachment { nodes: 100, edges_per_node: 3 },
            GraphSpec::Gnm { nodes: 50, edges: 100 },
            GraphSpec::RoadsProduct { s: 2, rows: 5, cols: 5 },
        ];
        let labels: Vec<_> = specs.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(GraphSpec::Mesh { side: 8 }.label(), "mesh(8)");
    }

    #[test]
    fn road_families_keep_original_weights() {
        assert_eq!(
            GraphSpec::RoadNetwork { rows: 4, cols: 4 }.default_weight_model(),
            WeightModel::Original
        );
        assert_eq!(GraphSpec::Mesh { side: 4 }.default_weight_model(), WeightModel::UniformUnit);
    }

    #[test]
    fn generate_connected_yields_single_component() {
        let spec = GraphSpec::RoadNetwork { rows: 20, cols: 20 };
        let g = spec.generate_connected(3);
        assert!(connected_components(&g).is_connected());
        assert!(g.num_nodes() > 100);
    }

    #[test]
    fn generate_is_deterministic_per_spec() {
        let spec = GraphSpec::RMat { scale: 7 };
        assert_eq!(spec.generate(5), spec.generate(5));
    }

    #[test]
    fn parses_cli_specs() {
        assert_eq!(GraphSpec::parse("mesh:24").unwrap(), GraphSpec::Mesh { side: 24 });
        assert_eq!(GraphSpec::parse("rmat:10").unwrap(), GraphSpec::RMat { scale: 10 });
        assert_eq!(
            GraphSpec::parse("road:40x30").unwrap(),
            GraphSpec::RoadNetwork { rows: 40, cols: 30 }
        );
        assert_eq!(
            GraphSpec::parse("ba:500:4").unwrap(),
            GraphSpec::PreferentialAttachment { nodes: 500, edges_per_node: 4 }
        );
        assert_eq!(
            GraphSpec::parse("gnm:100:300").unwrap(),
            GraphSpec::Gnm { nodes: 100, edges: 300 }
        );
        assert_eq!(
            GraphSpec::parse("roads:3:20x20").unwrap(),
            GraphSpec::RoadsProduct { s: 3, rows: 20, cols: 20 }
        );
    }

    #[test]
    fn rejects_malformed_cli_specs() {
        for bad in ["", "mesh", "mesh:x", "rmat:9:9", "road:40", "torus:5", "ba:10"] {
            assert!(GraphSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn explicit_weight_model_overrides_default() {
        let spec = GraphSpec::Mesh { side: 6 };
        let unit = spec.generate_with(WeightModel::Unit, 1);
        assert_eq!(unit.max_weight(), Some(1));
        let uniform = spec.generate_with(WeightModel::UniformUnit, 1);
        assert!(uniform.max_weight().unwrap() > 1);
    }
}
