//! Elementary topologies used as building blocks and test fixtures.

use cldiam_graph::{Graph, GraphBuilder, NodeId, Weight};

/// A path `0 - 1 - … - (n-1)` with constant edge weight `w`.
///
/// The paper's `roads(S)` family multiplies a unit-weight linear array of `S`
/// nodes with a road network; [`path`] with `w = 1` is that linear array.
pub fn path(n: usize, w: Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, w);
    }
    b.build()
}

/// A cycle on `n` nodes with constant edge weight `w`.
pub fn cycle(n: usize, w: Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, w);
    }
    if n > 2 {
        b.add_edge((n - 1) as NodeId, 0, w);
    }
    b.build()
}

/// A star with center 0 and `n - 1` leaves, constant edge weight `w`.
pub fn star(n: usize, w: Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(0, i as NodeId, w);
    }
    b.build()
}

/// The complete graph on `n` nodes with constant edge weight `w`.
pub fn complete(n: usize, w: Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as NodeId, j as NodeId, w);
        }
    }
    b.build()
}

/// A path with explicitly specified edge weights (`weights[i]` is the weight
/// of the edge `{i, i+1}`), convenient for hand-constructed test cases.
pub fn weighted_path(weights: &[Weight]) -> Graph {
    let mut b = GraphBuilder::with_capacity(weights.len() + 1, weights.len());
    for (i, &w) in weights.iter().enumerate() {
        b.add_edge(i as NodeId, (i + 1) as NodeId, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5, 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_weight(3, 4), Some(3));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0, 1).num_nodes(), 0);
        assert_eq!(path(1, 1).num_edges(), 0);
        assert_eq!(cycle(2, 1).num_edges(), 1);
        assert_eq!(star(1, 1).num_edges(), 0);
        assert_eq!(complete(1, 1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6, 2);
        assert_eq!(g.num_edges(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn star_shape() {
        let g = star(7, 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 6);
        assert!(g.nodes().skip(1).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6, 1);
        assert_eq!(g.num_edges(), 15);
        assert!(g.nodes().all(|u| g.degree(u) == 5));
    }

    #[test]
    fn weighted_path_assigns_given_weights() {
        let g = weighted_path(&[5, 10, 15]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(10));
        assert_eq!(g.edge_weight(2, 3), Some(15));
    }
}
