//! Cooperative cancellation and deadlines for the long-running engines.
//!
//! The CL-DIAM pipeline and the anytime bounds engine are naturally
//! interruptible: every phase boundary (an SSSP, a Δ-growing wave, a
//! clustering stage) is a consistent state from which a best-so-far result
//! can be reported. [`CancelToken`] is the shared switch those boundaries
//! poll: the engines never block on it, never observe it mid-phase, and
//! degrade gracefully (a clustering finishes with singleton clusters, the
//! bounds engine reports its current `[lb, ub]` with `converged = false`).
//!
//! Two trigger mechanisms coexist:
//!
//! * a **wall-clock deadline** (`--timeout-ms`), which trips the *shared*
//!   flag — once one engine component sees the deadline, every clone of the
//!   token observes it. Inherently nondeterministic across reruns.
//! * a **logical check budget** (`--timeout-checks`), counted per token
//!   clone. Cloning hands out a fresh counter over the same shared flag, so
//!   giving each parallel component its own clone yields a deterministic
//!   per-component cadence: the run stops after the same number of
//!   checkpoints at any thread count, and never leaks one component's
//!   budget exhaustion into another. The budget deliberately does *not*
//!   trip the shared flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Shared {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle checked at engine phase boundaries.
///
/// Cloning creates a *child*: it shares the cancelled flag and the
/// wall-clock deadline, but counts its own checkpoints against the check
/// budget (see the module docs for why).
pub struct CancelToken {
    shared: Arc<Shared>,
    /// Checkpoint budget per token; 0 = unlimited.
    check_limit: u64,
    checks: AtomicU64,
}

impl CancelToken {
    /// A token that never fires — the zero-cost default for uninterrupted
    /// runs (one relaxed load per checkpoint).
    pub fn never() -> Self {
        CancelToken {
            shared: Arc::new(Shared { cancelled: AtomicBool::new(false), deadline: None }),
            check_limit: 0,
            checks: AtomicU64::new(0),
        }
    }

    /// A token whose checkpoints start failing once `timeout` has elapsed
    /// (measured from this call).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            shared: Arc::new(Shared {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
            check_limit: 0,
            checks: AtomicU64::new(0),
        }
    }

    /// A token whose checkpoints start failing after `limit` calls on each
    /// clone — the deterministic logical cadence (`limit` is clamped to at
    /// least 1 so "a budget" always means "eventually stops").
    pub fn with_check_limit(limit: u64) -> Self {
        CancelToken {
            shared: Arc::new(Shared { cancelled: AtomicBool::new(false), deadline: None }),
            check_limit: limit.max(1),
            checks: AtomicU64::new(0),
        }
    }

    /// Adds a wall-clock deadline to this token (builder style), keeping
    /// the check budget.
    pub fn and_deadline(mut self, timeout: Duration) -> Self {
        let shared = Arc::get_mut(&mut self.shared).expect("and_deadline before cloning");
        shared.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Trips the shared flag: every clone's next checkpoint fails.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the shared flag is set (by [`cancel`](Self::cancel) or an
    /// expired deadline observed at some checkpoint). A clone's exhausted
    /// check budget does *not* show up here.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// Polls the token at a phase boundary. Returns `true` when the caller
    /// should stop and report its best-so-far result.
    #[inline]
    pub fn checkpoint(&self) -> bool {
        if self.shared.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.shared.deadline {
            if Instant::now() >= deadline {
                // The wall clock is shared state anyway; publishing it lets
                // sibling components stop at their next checkpoint.
                self.shared.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if self.check_limit > 0 {
            // Local budget: trips only this token, deliberately not the
            // shared flag, so parallel components keep deterministic,
            // independent cadences.
            let used = self.checks.fetch_add(1, Ordering::Relaxed) + 1;
            if used >= self.check_limit {
                return true;
            }
        }
        false
    }

    /// An explicit alias for [`Clone::clone`]: a child token with a fresh
    /// check counter over the same shared flag and deadline.
    pub fn child(&self) -> Self {
        CancelToken {
            shared: Arc::clone(&self.shared),
            check_limit: self.check_limit,
            checks: AtomicU64::new(0),
        }
    }
}

impl Clone for CancelToken {
    fn clone(&self) -> Self {
        self.child()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.shared.deadline)
            .field("check_limit", &self.check_limit)
            .field("checks", &self.checks.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let token = CancelToken::never();
        for _ in 0..10_000 {
            assert!(!token.checkpoint());
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::never();
        let child = token.clone();
        token.cancel();
        assert!(child.checkpoint());
        assert!(child.is_cancelled());
    }

    #[test]
    fn check_limit_is_per_clone_and_stays_local() {
        let token = CancelToken::with_check_limit(3);
        assert!(!token.checkpoint());
        assert!(!token.checkpoint());
        assert!(token.checkpoint());
        // A sibling clone has its own budget and the shared flag is clean.
        let child = token.child();
        assert!(!child.is_cancelled());
        assert!(!child.checkpoint());
        assert!(!child.checkpoint());
        assert!(child.checkpoint());
    }

    #[test]
    fn expired_deadline_fires_and_publishes() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        let sibling = token.clone();
        assert!(token.checkpoint());
        // The deadline observation is published to siblings via the flag.
        assert!(sibling.is_cancelled());
        assert!(sibling.checkpoint());
    }

    #[test]
    fn deadline_composes_with_check_limit() {
        let token = CancelToken::with_check_limit(1_000_000).and_deadline(Duration::from_millis(0));
        assert!(token.checkpoint());
    }
}
