//! Graph statistics used by the benchmark harness (Table 1) and by the
//! heuristics in the core algorithm (initial `Δ` = average edge weight).

use rayon::prelude::*;

use crate::csr::Graph;
use crate::weight::{Dist, NodeId, Weight};

/// Summary statistics of a weighted graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of undirected edges `m`.
    pub edges: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Average node degree (`2m / n`).
    pub avg_degree: f64,
    /// Minimum edge weight.
    pub min_weight: Weight,
    /// Maximum edge weight.
    pub max_weight: Weight,
    /// Average edge weight.
    pub avg_weight: f64,
    /// Sum of all edge weights.
    pub total_weight: Dist,
}

impl GraphStats {
    /// Computes all statistics in one parallel pass over the nodes.
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let (min_degree, max_degree) = if n == 0 {
            (0, 0)
        } else {
            (0..n)
                .into_par_iter()
                .map(|u| {
                    let d = graph.degree(u as NodeId);
                    (d, d)
                })
                .reduce(|| (usize::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)))
        };
        let min_degree = if n == 0 { 0 } else { min_degree };
        let (min_weight, max_weight) =
            (graph.min_weight().unwrap_or(0), graph.max_weight().unwrap_or(0));
        let total_weight = graph.total_weight();
        GraphStats {
            nodes: n,
            edges: m,
            min_degree,
            max_degree,
            avg_degree: if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 },
            min_weight,
            max_weight,
            avg_weight: if m == 0 { 0.0 } else { total_weight as f64 / m as f64 },
            total_weight,
        }
    }
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let n = graph.num_nodes();
    let max_deg = (0..n).map(|u| graph.degree(u as NodeId)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for u in 0..n {
        hist[graph.degree(u as NodeId)] += 1;
    }
    hist
}

/// Ratio between the maximum and the minimum edge weight; the paper assumes
/// this ratio is polynomial in `n`. Returns `None` for edgeless graphs.
pub fn weight_spread(graph: &Graph) -> Option<f64> {
    match (graph.min_weight(), graph.max_weight()) {
        (Some(lo), Some(hi)) if lo > 0 => Some(f64::from(hi) / f64::from(lo)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Graph {
        Graph::from_edges(5, &[(0, 1, 2), (0, 2, 4), (0, 3, 6), (0, 4, 8)])
    }

    #[test]
    fn stats_on_star() {
        let s = GraphStats::compute(&star());
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 1.6).abs() < 1e-9);
        assert_eq!(s.min_weight, 2);
        assert_eq!(s.max_weight, 8);
        assert!((s.avg_weight - 5.0).abs() < 1e-9);
        assert_eq!(s.total_weight, 20);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = GraphStats::compute(&Graph::empty(0));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_counts_every_node() {
        let hist = degree_histogram(&star());
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn weight_spread_ratio() {
        assert_eq!(weight_spread(&star()), Some(4.0));
        assert_eq!(weight_spread(&Graph::empty(3)), None);
    }
}
