//! Compressed-sparse-row storage for weighted undirected graphs.

use crate::weight::{Dist, NodeId, Weight};

/// An immutable weighted undirected graph in compressed-sparse-row form.
///
/// Every undirected edge `{u, v}` is stored twice (once in the adjacency list
/// of `u` and once in that of `v`); [`Graph::num_edges`] reports the number of
/// undirected edges, i.e. half of the stored arcs. Self loops are never
/// stored. Node identifiers are dense in `0..num_nodes()`.
///
/// Construction goes through [`crate::GraphBuilder`] (or the generator crate),
/// which guarantees these invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes the arcs leaving `u`.
    offsets: Vec<usize>,
    /// Arc targets, grouped by source node and sorted by target within a node.
    targets: Vec<NodeId>,
    /// Arc weights, parallel to `targets`.
    weights: Vec<Weight>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong offset length, decreasing
    /// offsets, targets out of range, zero weights, or self loops).
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<NodeId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "last offset must equal the number of arcs"
        );
        assert_eq!(targets.len(), weights.len(), "targets and weights must be parallel");
        let n = offsets.len() - 1;
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be nondecreasing");
        for (u, window) in offsets.windows(2).enumerate() {
            for i in window[0]..window[1] {
                let v = targets[i];
                assert!((v as usize) < n, "arc target {v} out of range (n = {n})");
                assert_ne!(v as usize, u, "self loops are not allowed");
                assert!(weights[i] > 0, "edge weights must be strictly positive");
            }
        }
        Graph { offsets, targets, weights }
    }

    /// Builds a graph from an explicit undirected edge list.
    ///
    /// This is a convenience wrapper around [`crate::GraphBuilder`]: edges are
    /// symmetrized, self loops dropped and parallel edges collapsed to the one
    /// of minimum weight.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId, Weight)]) -> Self {
        let mut builder = crate::GraphBuilder::with_capacity(num_nodes, edges.len());
        for &(u, v, w) in edges {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], targets: Vec::new(), weights: Vec::new() }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of stored arcs (twice the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Iterator over all node identifiers.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over the neighbors of `u` with the connecting edge weight.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let range = self.offsets[u as usize]..self.offsets[u as usize + 1];
        range.map(move |i| (self.targets[i], self.weights[i]))
    }

    /// The neighbor/weight slices of `u`, useful for tight inner loops.
    #[inline]
    pub fn neighbor_slices(&self, u: NodeId) -> (&[NodeId], &[Weight]) {
        let range = self.offsets[u as usize]..self.offsets[u as usize + 1];
        (&self.targets[range.clone()], &self.weights[range])
    }

    /// Iterator over undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).filter_map(move |(v, w)| if u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Iterator over all arcs `(u, v, w)` (each undirected edge appears twice).
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(move |u| self.neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// Weight of the edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let (targets, weights) = self.neighbor_slices(u);
        targets.binary_search(&v).ok().map(|i| weights[i])
    }

    /// `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().min()
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().max()
    }

    /// Average edge weight, or `None` for an edgeless graph.
    ///
    /// The paper's practical configuration of `CLUSTER` uses this value as the
    /// initial guess for `Δ`.
    pub fn avg_weight(&self) -> Option<Weight> {
        if self.weights.is_empty() {
            return None;
        }
        let total: Dist = self.weights.iter().map(|&w| Dist::from(w)).sum();
        Some((total / self.weights.len() as Dist).max(1) as Weight)
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> Dist {
        let total: Dist = self.weights.iter().map(|&w| Dist::from(w)).sum();
        total / 2
    }

    /// Memory footprint of the CSR arrays, in bytes. Used by the MR model to
    /// check the "linear total memory" accounting.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Raw CSR offset array (`offsets[u]..offsets[u+1]` indexes the arcs of
    /// `u`). Exposed for cost accounting and advanced consumers.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw CSR arc-target array, parallel to [`Graph::weights`]. Exposed for
    /// the binary snapshot writer and advanced consumers.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Raw CSR arc-weight array, parallel to [`Graph::targets`].
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 10), (1, 2, 20), (0, 2, 30)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_empty());
    }

    #[test]
    fn neighbors_are_symmetric_and_sorted() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 10), (2, 30)]);
        let n2: Vec<_> = g.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 30), (1, 20)]);
    }

    #[test]
    fn edge_queries() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(1, 0), Some(10));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn weight_statistics() {
        let g = triangle();
        assert_eq!(g.min_weight(), Some(10));
        assert_eq!(g.max_weight(), Some(30));
        assert_eq!(g.avg_weight(), Some(20));
        assert_eq!(g.total_weight(), 60);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 10), (0, 2, 30), (1, 2, 20)]);
        assert_eq!(g.arcs().count(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_weight(), None);
        assert_eq!(g.avg_weight(), None);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn from_csr_rejects_self_loops() {
        Graph::from_csr(vec![0, 1], vec![0], vec![1]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn from_csr_rejects_zero_weights() {
        Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_csr_rejects_dangling_targets() {
        Graph::from_csr(vec![0, 1, 1], vec![7], vec![1]);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }
}
