//! Compressed-sparse-row storage for weighted graphs (undirected by
//! default, with an opt-in directed mode carrying a reverse CSR).

use crate::source::NeighborSource;
use crate::storage::Storage;
use crate::weight::{Dist, NodeId, Weight};

/// The incoming-arc adjacency of a directed graph: a second CSR indexed by
/// arc *target*, parallel in shape to the forward arrays. Within a node the
/// in-neighbors are sorted by source id (a consequence of the deterministic
/// counting-sort construction).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ReverseCsr {
    offsets: Vec<usize>,
    sources: Vec<NodeId>,
    weights: Vec<Weight>,
}

/// An immutable weighted graph in compressed-sparse-row form.
///
/// In the default **undirected** mode every edge `{u, v}` is stored twice
/// (once in the adjacency list of `u` and once in that of `v`);
/// [`Graph::num_edges`] reports the number of undirected edges, i.e. half of
/// the stored arcs. In **directed** mode ([`Graph::is_directed`]) each arc
/// `u → v` is stored once in the forward adjacency of `u` and once in the
/// reverse adjacency of `v` ([`Graph::in_neighbors`]), and
/// [`Graph::num_edges`] counts arcs. Self loops are never stored. Node
/// identifiers are dense in `0..num_nodes()`.
///
/// Construction goes through [`crate::GraphBuilder`] (or the generator crate),
/// which guarantees these invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes the arcs leaving `u`. Owned or,
    /// for graphs loaded from a v2 snapshot via mmap, a zero-copy view into
    /// the mapped file.
    offsets: Storage<usize>,
    /// Arc targets, grouped by source node and sorted by target within a node.
    targets: Storage<NodeId>,
    /// Arc weights, parallel to `targets`.
    weights: Storage<Weight>,
    /// Incoming-arc CSR; present exactly when the graph is directed.
    rev: Option<Box<ReverseCsr>>,
}

/// Panics unless the CSR arrays are structurally valid (shared by the
/// undirected and directed constructors).
fn validate_csr(offsets: &[usize], targets: &[NodeId], weights: &[Weight]) {
    assert!(!offsets.is_empty(), "offsets must contain at least one entry");
    assert_eq!(
        *offsets.last().unwrap(),
        targets.len(),
        "last offset must equal the number of arcs"
    );
    assert_eq!(targets.len(), weights.len(), "targets and weights must be parallel");
    let n = offsets.len() - 1;
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be nondecreasing");
    for (u, window) in offsets.windows(2).enumerate() {
        for i in window[0]..window[1] {
            let v = targets[i];
            assert!((v as usize) < n, "arc target {v} out of range (n = {n})");
            assert_ne!(v as usize, u, "self loops are not allowed");
            assert!(weights[i] > 0, "edge weights must be strictly positive");
        }
    }
}

/// The reverse CSR of a forward CSR, built with a deterministic counting
/// sort: scanning arcs in forward order leaves every in-neighbor list sorted
/// by source id, independent of any thread count.
fn reverse_of(offsets: &[usize], targets: &[NodeId], weights: &[Weight]) -> ReverseCsr {
    let n = offsets.len() - 1;
    let mut in_degree = vec![0usize; n];
    for &v in targets {
        in_degree[v as usize] += 1;
    }
    let mut rev_offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    rev_offsets.push(0);
    for d in &in_degree {
        acc += d;
        rev_offsets.push(acc);
    }
    let mut cursor = rev_offsets[..n].to_vec();
    let mut sources = vec![0 as NodeId; targets.len()];
    let mut rev_weights = vec![0 as Weight; targets.len()];
    for u in 0..n {
        for i in offsets[u]..offsets[u + 1] {
            let v = targets[i] as usize;
            let slot = cursor[v];
            cursor[v] += 1;
            sources[slot] = u as NodeId;
            rev_weights[slot] = weights[i];
        }
    }
    ReverseCsr { offsets: rev_offsets, sources, weights: rev_weights }
}

impl Graph {
    /// Builds an undirected graph directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong offset length, decreasing
    /// offsets, targets out of range, zero weights, or self loops).
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<NodeId>, weights: Vec<Weight>) -> Self {
        validate_csr(&offsets, &targets, &weights);
        Graph {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.into(),
            rev: None,
        }
    }

    /// Assembles an undirected graph straight from (possibly mapped) storage,
    /// checking only the O(1) shape invariants.
    ///
    /// This is the mmap fast path of the v2 snapshot loader: the arrays were
    /// validated in full when the snapshot was written, so the O(arcs)
    /// re-validation of [`Graph::from_csr`] is skipped. Callers must only
    /// pass storage produced by this crate's snapshot writer.
    pub(crate) fn from_storage_unchecked(
        offsets: Storage<usize>,
        targets: Storage<NodeId>,
        weights: Storage<Weight>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "last offset must equal the number of arcs"
        );
        assert_eq!(targets.len(), weights.len(), "targets and weights must be parallel");
        Graph { offsets, targets, weights, rev: None }
    }

    /// Builds a directed graph from forward CSR arrays; the reverse CSR is
    /// derived internally with a deterministic counting sort. Arc sets may be
    /// asymmetric — that is the point.
    ///
    /// # Panics
    ///
    /// Panics under the same structural conditions as [`Graph::from_csr`].
    pub fn from_directed_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<Weight>,
    ) -> Self {
        validate_csr(&offsets, &targets, &weights);
        let rev = reverse_of(&offsets, &targets, &weights);
        Graph {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.into(),
            rev: Some(Box::new(rev)),
        }
    }

    /// Builds a graph from an explicit undirected edge list.
    ///
    /// This is a convenience wrapper around [`crate::GraphBuilder`]: edges are
    /// symmetrized, self loops dropped and parallel edges collapsed to the one
    /// of minimum weight.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId, Weight)]) -> Self {
        let mut builder = crate::GraphBuilder::with_capacity(num_nodes, edges.len());
        for &(u, v, w) in edges {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1].into(),
            targets: Vec::new().into(),
            weights: Vec::new().into(),
            rev: None,
        }
    }

    /// `true` if the graph carries a directed arc set (and hence a reverse
    /// CSR). Undirected graphs answer `false`.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.rev.is_some()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges: undirected edges for undirected graphs (half the
    /// stored arcs), arcs for directed graphs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        if self.is_directed() {
            self.targets.len()
        } else {
            self.targets.len() / 2
        }
    }

    /// Number of stored forward arcs (twice [`Graph::num_edges`] for
    /// undirected graphs, equal to it for directed ones).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Iterator over all node identifiers.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over the neighbors of `u` with the connecting edge weight.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let range = self.offsets[u as usize]..self.offsets[u as usize + 1];
        range.map(move |i| (self.targets[i], self.weights[i]))
    }

    /// The neighbor/weight slices of `u`, useful for tight inner loops.
    #[inline]
    pub fn neighbor_slices(&self, u: NodeId) -> (&[NodeId], &[Weight]) {
        let range = self.offsets[u as usize]..self.offsets[u as usize + 1];
        (&self.targets[range.clone()], &self.weights[range])
    }

    /// Iterator over the in-neighbors of `u` with the connecting arc weight.
    /// On an undirected graph this is the same set as [`Graph::neighbors`].
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let (sources, weights) = self.in_neighbor_slices(u);
        sources.iter().copied().zip(weights.iter().copied())
    }

    /// The in-neighbor/weight slices of `u`. Falls back to the forward
    /// adjacency on undirected graphs, where the two coincide.
    #[inline]
    pub fn in_neighbor_slices(&self, u: NodeId) -> (&[NodeId], &[Weight]) {
        match &self.rev {
            Some(rev) => {
                let range = rev.offsets[u as usize]..rev.offsets[u as usize + 1];
                (&rev.sources[range.clone()], &rev.weights[range])
            }
            None => self.neighbor_slices(u),
        }
    }

    /// In-degree of node `u` (equal to [`Graph::degree`] when undirected).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        match &self.rev {
            Some(rev) => rev.offsets[u as usize + 1] - rev.offsets[u as usize],
            None => self.degree(u),
        }
    }

    /// The graph with every arc reversed. A clone for undirected graphs; for
    /// directed graphs the forward and reverse adjacencies swap roles (the
    /// counting-sorted in-lists are already sorted by source, so the swapped
    /// forward lists satisfy the sorted-CSR invariant as-is).
    pub fn reversed(&self) -> Graph {
        match &self.rev {
            None => self.clone(),
            Some(rev) => Graph::from_directed_csr(
                rev.offsets.clone(),
                rev.sources.clone(),
                rev.weights.clone(),
            ),
        }
    }

    /// Iterator over edges `(u, v, w)`: undirected edges with `u < v` for
    /// undirected graphs, every arc once for directed graphs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        let directed = self.is_directed();
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .filter_map(move |(v, w)| if directed || u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Iterator over all arcs `(u, v, w)` (each undirected edge appears twice).
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(move |u| self.neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// Weight of the edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let (targets, weights) = self.neighbor_slices(u);
        targets.binary_search(&v).ok().map(|i| weights[i])
    }

    /// `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().min()
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().max()
    }

    /// Average edge weight, or `None` for an edgeless graph.
    ///
    /// The paper's practical configuration of `CLUSTER` uses this value as the
    /// initial guess for `Δ`.
    pub fn avg_weight(&self) -> Option<Weight> {
        if self.weights.is_empty() {
            return None;
        }
        let total: Dist = self.weights.iter().map(|&w| Dist::from(w)).sum();
        Some((total / self.weights.len() as Dist).max(1) as Weight)
    }

    /// Sum of all edge weights (each undirected edge counted once; each arc
    /// once for directed graphs).
    pub fn total_weight(&self) -> Dist {
        let total: Dist = self.weights.iter().map(|&w| Dist::from(w)).sum();
        if self.is_directed() {
            total
        } else {
            total / 2
        }
    }

    /// Memory footprint of the CSR arrays (including the reverse CSR of a
    /// directed graph), in bytes. Used by the MR model to check the "linear
    /// total memory" accounting.
    pub fn memory_bytes(&self) -> usize {
        let forward = self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<Weight>();
        let reverse = self.rev.as_ref().map_or(0, |rev| {
            rev.offsets.len() * std::mem::size_of::<usize>()
                + rev.sources.len() * std::mem::size_of::<NodeId>()
                + rev.weights.len() * std::mem::size_of::<Weight>()
        });
        forward + reverse
    }

    /// Raw CSR offset array (`offsets[u]..offsets[u+1]` indexes the arcs of
    /// `u`). Exposed for cost accounting and advanced consumers.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw CSR arc-target array, parallel to [`Graph::weights`]. Exposed for
    /// the binary snapshot writer and advanced consumers.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Raw CSR arc-weight array, parallel to [`Graph::targets`].
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }
}

/// Neighbor iterator of the dense tier: a zip of the target and weight
/// slices of one node.
pub type DenseNeighbors<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, NodeId>>,
    std::iter::Copied<std::slice::Iter<'a, Weight>>,
>;

impl NeighborSource for Graph {
    type Neighbors<'a> = DenseNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        Graph::num_arcs(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> DenseNeighbors<'_> {
        let (targets, weights) = self.neighbor_slices(u);
        targets.iter().copied().zip(weights.iter().copied())
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }

    #[inline]
    fn is_directed(&self) -> bool {
        Graph::is_directed(self)
    }

    fn min_weight(&self) -> Option<Weight> {
        Graph::min_weight(self)
    }

    fn max_weight(&self) -> Option<Weight> {
        Graph::max_weight(self)
    }

    fn avg_weight(&self) -> Option<Weight> {
        Graph::avg_weight(self)
    }

    fn total_weight(&self) -> Dist {
        Graph::total_weight(self)
    }

    fn memory_bytes(&self) -> usize {
        Graph::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 10), (1, 2, 20), (0, 2, 30)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_empty());
    }

    #[test]
    fn neighbors_are_symmetric_and_sorted() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 10), (2, 30)]);
        let n2: Vec<_> = g.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 30), (1, 20)]);
    }

    #[test]
    fn edge_queries() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(1, 0), Some(10));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn weight_statistics() {
        let g = triangle();
        assert_eq!(g.min_weight(), Some(10));
        assert_eq!(g.max_weight(), Some(30));
        assert_eq!(g.avg_weight(), Some(20));
        assert_eq!(g.total_weight(), 60);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 10), (0, 2, 30), (1, 2, 20)]);
        assert_eq!(g.arcs().count(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_weight(), None);
        assert_eq!(g.avg_weight(), None);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn from_csr_rejects_self_loops() {
        Graph::from_csr(vec![0, 1], vec![0], vec![1]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn from_csr_rejects_zero_weights() {
        Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_csr_rejects_dangling_targets() {
        Graph::from_csr(vec![0, 1, 1], vec![7], vec![1]);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }

    /// A directed triangle cycle 0→1→2→0 plus a chord 0→2.
    fn directed_cycle() -> Graph {
        Graph::from_directed_csr(vec![0, 2, 3, 4], vec![1, 2, 2, 0], vec![10, 40, 20, 30])
    }

    #[test]
    fn directed_counts_and_queries() {
        let g = directed_cycle();
        assert!(g.is_directed());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.total_weight(), 100);
        let out0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(out0, vec![(1, 10), (2, 40)]);
        let in2: Vec<_> = g.in_neighbors(2).collect();
        assert_eq!(in2, vec![(0, 40), (1, 20)]);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.in_degree(2), 2);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 10), (0, 2, 40), (1, 2, 20), (2, 0, 30)]);
    }

    #[test]
    fn reversed_swaps_adjacencies() {
        let g = directed_cycle();
        let r = g.reversed();
        assert!(r.is_directed());
        let out2: Vec<_> = r.neighbors(2).collect();
        assert_eq!(out2, vec![(0, 40), (1, 20)]);
        let in0: Vec<_> = r.in_neighbors(0).collect();
        assert_eq!(in0, vec![(1, 10), (2, 40)]);
        // Reversing twice restores the original graph bit-for-bit.
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn undirected_in_neighbors_match_out_neighbors() {
        let g = triangle();
        assert!(!g.is_directed());
        for u in g.nodes() {
            let out: Vec<_> = g.neighbors(u).collect();
            let inn: Vec<_> = g.in_neighbors(u).collect();
            assert_eq!(out, inn);
            assert_eq!(g.degree(u), g.in_degree(u));
        }
        assert_eq!(g.reversed(), g);
    }
}
