//! Fault-injection failpoints for the I/O layer.
//!
//! Every I/O seam in this crate — buffered file reads, snapshot cache
//! writes, mmap setup, cache regeneration — consults a named failpoint
//! before (and sometimes after) touching the disk. When the registry is
//! empty the consultation is one relaxed atomic load, so production runs
//! pay nothing; chaos tests (and downstream users via the
//! `CLDIAM_FAILPOINTS` environment variable) arm sites with faults:
//!
//! * `eio` / `enospc` / `interrupted` / `eof` — return the corresponding
//!   [`std::io::Error`] from the seam.
//! * `truncate:N` — truncate a just-read (or about-to-be-written) buffer
//!   to `N` bytes, simulating a torn read or a crash mid-write.
//! * `bitflip:N` — flip one bit at byte offset `N % len`, simulating
//!   silent media corruption.
//! * `partial:N` — write only the first `N` bytes, then fail with
//!   `enospc` (a disk-full mid-write; the atomic writer discards the
//!   partial temp file).
//! * `torn:N` — write only the first `N` bytes but report success,
//!   simulating a crash *after* the rename: the next load must recover.
//! * `delay:MS` — sleep `MS` milliseconds at the seam.
//!
//! An action may carry a shot count (`action*K`): the fault fires on the
//! first `K` consultations and the site behaves normally afterwards —
//! how transient-error retry paths are exercised (`interrupted*2`).
//!
//! The environment variable holds `site=action` pairs separated by `;`,
//! e.g. `CLDIAM_FAILPOINTS='io::read=eio;cache::write=torn:100'`. Tests
//! use [`scoped`], which also serializes chaos scenarios across test
//! threads (the registry is process-global).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when its site is consulted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return an I/O error of this kind from the seam.
    Err(std::io::ErrorKind),
    /// Truncate the buffer passing through the seam to this many bytes.
    Truncate(usize),
    /// Flip one bit at this byte offset (modulo the buffer length).
    BitFlip(usize),
    /// Write only this many bytes, then fail with `ENOSPC`.
    Partial(usize),
    /// Write only this many bytes but report success (crash simulation).
    Torn(usize),
    /// Sleep this many milliseconds.
    Delay(u64),
}

struct Entry {
    action: FailAction,
    /// Remaining shots; `None` = unlimited.
    remaining: Option<usize>,
}

/// Fast-path switch: `true` only while at least one site is armed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Whether `CLDIAM_FAILPOINTS` has been consulted yet. Until it has, an
/// inactive-looking registry might just be an unparsed environment, so the
/// fast path must fall through to [`init_from_env`] once.
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    // lint:allow(hash-determinism): lookup-only registry keyed by site name;
    // iteration order is never observed by any output path.
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Entry>> {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses and arms `CLDIAM_FAILPOINTS` once per process.
fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("CLDIAM_FAILPOINTS") {
            let mut map = lock_registry();
            for pair in spec.split(';').filter(|p| !p.trim().is_empty()) {
                match parse_pair(pair) {
                    Ok((site, entry)) => {
                        map.insert(site, entry);
                    }
                    Err(e) => eprintln!("[cldiam] ignoring bad CLDIAM_FAILPOINTS entry: {e}"),
                }
            }
            if !map.is_empty() {
                ACTIVE.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Parses one `site=action[:arg][*count]` pair.
fn parse_pair(pair: &str) -> Result<(String, Entry), String> {
    let (site, spec) =
        pair.split_once('=').ok_or_else(|| format!("{pair:?} is not site=action"))?;
    let (spec, remaining) = match spec.rsplit_once('*') {
        Some((action, count)) => {
            let count =
                count.parse::<usize>().map_err(|_| format!("bad shot count in {pair:?}"))?;
            (action, Some(count))
        }
        None => (spec, None),
    };
    let (name, arg) = match spec.split_once(':') {
        Some((name, arg)) => (name, Some(arg)),
        None => (spec, None),
    };
    let num = |what: &str| -> Result<usize, String> {
        arg.and_then(|a| a.parse().ok()).ok_or_else(|| format!("{name} needs a numeric {what}"))
    };
    let action = match name.trim() {
        "eio" => FailAction::Err(std::io::ErrorKind::Other),
        "enospc" => FailAction::Err(std::io::ErrorKind::StorageFull),
        "interrupted" => FailAction::Err(std::io::ErrorKind::Interrupted),
        "eof" => FailAction::Err(std::io::ErrorKind::UnexpectedEof),
        "truncate" => FailAction::Truncate(num("length")?),
        "bitflip" => FailAction::BitFlip(num("offset")?),
        "partial" => FailAction::Partial(num("length")?),
        "torn" => FailAction::Torn(num("length")?),
        "delay" => FailAction::Delay(num("milliseconds")? as u64),
        other => return Err(format!("unknown action {other:?}")),
    };
    Ok((site.trim().to_string(), Entry { action, remaining }))
}

/// Consults `site` and consumes one shot if armed. `None` on the fast path.
fn consume(site: &str) -> Option<FailAction> {
    if !ACTIVE.load(Ordering::Relaxed) {
        if ENV_CHECKED.load(Ordering::Relaxed) {
            return None;
        }
        init_from_env();
        ENV_CHECKED.store(true, Ordering::Relaxed);
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
    }
    let mut map = lock_registry();
    let entry = map.get_mut(site)?;
    let action = entry.action.clone();
    match &mut entry.remaining {
        Some(0) => return None,
        Some(n) => *n -= 1,
        None => {}
    }
    Some(action)
}

/// Injects a plain error or delay at `site`. Data-mutating actions
/// (`truncate`/`bitflip`) do not fire here — they wait for
/// [`mutate_buffer`] — but write-seam actions (`partial`/`torn`) report
/// `ENOSPC` so read seams armed with them fail loudly instead of silently.
pub fn inject(site: &str) -> std::io::Result<()> {
    match consume(site) {
        None => Ok(()),
        Some(FailAction::Err(kind)) => Err(std::io::Error::new(kind, format!("failpoint {site}"))),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Truncate(_)) | Some(FailAction::BitFlip(_)) => Ok(()),
        Some(FailAction::Partial(_)) | Some(FailAction::Torn(_)) => Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("failpoint {site} (write action on a read seam)"),
        )),
    }
}

/// Applies a data-mutating fault to a just-read buffer: truncation or a
/// bit flip. Error actions also fire here so a read seam that only has a
/// post-read hook still fails. Delays sleep.
pub fn mutate_buffer(site: &str, buf: &mut Vec<u8>) -> std::io::Result<()> {
    match consume(site) {
        None => Ok(()),
        Some(FailAction::Truncate(len)) => {
            buf.truncate(len);
            Ok(())
        }
        Some(FailAction::BitFlip(offset)) => {
            if !buf.is_empty() {
                let at = offset % buf.len();
                buf[at] ^= 1 << (offset % 8);
            }
            Ok(())
        }
        Some(FailAction::Err(kind)) => Err(std::io::Error::new(kind, format!("failpoint {site}"))),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Partial(_)) | Some(FailAction::Torn(_)) => Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("failpoint {site} (write action on a read seam)"),
        )),
    }
}

/// Outcome of consulting a write seam before it writes `bytes`.
pub enum WriteFault {
    /// No fault: write all bytes normally.
    None,
    /// Fail without writing anything.
    Err(std::io::Error),
    /// Write only this prefix, then fail with `ENOSPC`.
    Partial(usize),
    /// Write only this prefix but report success (crash simulation).
    Torn(usize),
    /// Write a copy of the buffer with one bit flipped (silent corruption).
    Corrupt(Vec<u8>),
}

/// Consults a write seam about to persist `bytes`.
pub fn on_write(site: &str, bytes: &[u8]) -> WriteFault {
    match consume(site) {
        None => WriteFault::None,
        Some(FailAction::Err(kind)) => {
            WriteFault::Err(std::io::Error::new(kind, format!("failpoint {site}")))
        }
        Some(FailAction::Partial(len)) => WriteFault::Partial(len.min(bytes.len())),
        Some(FailAction::Torn(len)) | Some(FailAction::Truncate(len)) => {
            WriteFault::Torn(len.min(bytes.len()))
        }
        Some(FailAction::BitFlip(offset)) => {
            let mut copy = bytes.to_vec();
            if !copy.is_empty() {
                let at = offset % copy.len();
                copy[at] ^= 1 << (offset % 8);
            }
            WriteFault::Corrupt(copy)
        }
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            WriteFault::None
        }
    }
}

/// A scoped failpoint configuration for tests. Arms the given
/// `(site, action)` pairs on construction and clears the whole registry on
/// drop. Also holds a process-global lock so concurrently running chaos
/// scenarios never see each other's faults.
pub struct FailpointGuard {
    _serial: MutexGuard<'static, ()>,
}

fn serial_lock() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms failpoints from `site=action` specs (the env-var syntax) for the
/// lifetime of the returned guard.
///
/// # Panics
///
/// Panics on a malformed spec — test configuration errors should be loud.
pub fn scoped(specs: &[&str]) -> FailpointGuard {
    let serial = serial_lock();
    let mut map = lock_registry();
    map.clear();
    for spec in specs {
        let (site, entry) = parse_pair(spec).expect("bad failpoint spec");
        map.insert(site, entry);
    }
    ACTIVE.store(!map.is_empty(), Ordering::Relaxed);
    drop(map);
    FailpointGuard { _serial: serial }
}

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        let mut map = lock_registry();
        map.clear();
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_failpoints_are_inert() {
        assert!(inject("io::read").is_ok());
        let mut buf = vec![1, 2, 3];
        assert!(mutate_buffer("io::read", &mut buf).is_ok());
        assert_eq!(buf, vec![1, 2, 3]);
        assert!(matches!(on_write("cache::write", &buf), WriteFault::None));
    }

    #[test]
    fn scoped_guard_arms_and_disarms() {
        {
            let _guard = scoped(&["io::read=eio"]);
            let err = inject("io::read").unwrap_err();
            assert!(err.to_string().contains("failpoint io::read"));
            // Other sites stay clean.
            assert!(inject("cache::write").is_ok());
        }
        assert!(inject("io::read").is_ok());
    }

    #[test]
    fn shot_counts_expire() {
        let _guard = scoped(&["io::read=interrupted*2"]);
        assert_eq!(inject("io::read").unwrap_err().kind(), std::io::ErrorKind::Interrupted);
        assert_eq!(inject("io::read").unwrap_err().kind(), std::io::ErrorKind::Interrupted);
        assert!(inject("io::read").is_ok());
    }

    #[test]
    fn buffer_mutations_truncate_and_flip() {
        {
            let _guard = scoped(&["a=truncate:2"]);
            let mut buf = vec![1u8, 2, 3, 4];
            mutate_buffer("a", &mut buf).unwrap();
            assert_eq!(buf, vec![1, 2]);
        }
        let _guard = scoped(&["a=bitflip:1"]);
        let mut buf = vec![0u8, 0, 0];
        mutate_buffer("a", &mut buf).unwrap();
        assert_eq!(buf, vec![0, 2, 0]);
    }

    #[test]
    fn write_faults_partial_and_torn() {
        {
            let _guard = scoped(&["w=partial:3"]);
            match on_write("w", &[9u8; 10]) {
                WriteFault::Partial(3) => {}
                other => panic!("unexpected {:?}", discriminant_name(&other)),
            }
        }
        let _guard = scoped(&["w=torn:0"]);
        match on_write("w", &[9u8; 10]) {
            WriteFault::Torn(0) => {}
            other => panic!("unexpected {:?}", discriminant_name(&other)),
        }
    }

    fn discriminant_name(fault: &WriteFault) -> &'static str {
        match fault {
            WriteFault::None => "None",
            WriteFault::Err(_) => "Err",
            WriteFault::Partial(_) => "Partial",
            WriteFault::Torn(_) => "Torn",
            WriteFault::Corrupt(_) => "Corrupt",
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(parse_pair("no-equals").is_err());
        assert!(parse_pair("a=unknown").is_err());
        assert!(parse_pair("a=truncate").is_err());
        assert!(parse_pair("a=eio*x").is_err());
    }
}
