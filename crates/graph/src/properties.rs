//! Structural probes related to the doubling-dimension assumption.
//!
//! Corollary 1 of the paper applies to graphs of bounded doubling dimension
//! (Definition 2): the smallest `b` such that every ball of radius `2R` can be
//! covered by at most `2^b` balls of radius `R`. Computing the doubling
//! dimension exactly is intractable, so the benchmark harness uses the
//! ball-growth probes in this module to *estimate* it on sampled nodes: for a
//! graph of doubling dimension `b`, `|ball(v, 2R)| ≲ 2^b · |ball(v, R)|`.

use crate::csr::Graph;
use crate::traversal::{bfs_hops, UNREACHABLE};
use crate::weight::NodeId;

/// Sizes of the balls of unweighted radius `0..=max_radius` around `source`.
///
/// `result[r]` is the number of nodes within `r` hops of `source`.
pub fn ball_sizes(graph: &Graph, source: NodeId, max_radius: u32) -> Vec<usize> {
    let hops = bfs_hops(graph, source);
    let mut counts = vec![0usize; max_radius as usize + 1];
    for &h in &hops {
        if h != UNREACHABLE && h <= max_radius {
            counts[h as usize] += 1;
        }
    }
    // Prefix sum: ball of radius r contains every node at hop distance <= r.
    for r in 1..counts.len() {
        counts[r] += counts[r - 1];
    }
    counts
}

/// Estimates the doubling exponent at `source`: the maximum over radii `R` of
/// `log2(|ball(2R)| / |ball(R)|)`, which lower-bounds the doubling dimension.
pub fn doubling_exponent_estimate(graph: &Graph, source: NodeId, max_radius: u32) -> f64 {
    let sizes = ball_sizes(graph, source, max_radius);
    let mut worst: f64 = 0.0;
    let mut r = 1usize;
    while 2 * r < sizes.len() {
        let small = sizes[r] as f64;
        let big = sizes[2 * r] as f64;
        if small > 0.0 && big > small {
            worst = worst.max((big / small).log2());
        }
        r += 1;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::Weight;

    fn grid(side: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| (r * side + c) as NodeId;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    edges.push((id(r, c), id(r, c + 1), 1 as Weight));
                }
                if r + 1 < side {
                    edges.push((id(r, c), id(r + 1, c), 1 as Weight));
                }
            }
        }
        Graph::from_edges(side * side, &edges)
    }

    #[test]
    fn ball_sizes_are_monotone_and_bounded() {
        let g = grid(9);
        let center = (4 * 9 + 4) as NodeId;
        let sizes = ball_sizes(&g, center, 8);
        assert_eq!(sizes[0], 1);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*sizes.last().unwrap(), 81);
    }

    #[test]
    fn grid_doubling_exponent_is_small() {
        let g = grid(17);
        let center = (8 * 17 + 8) as NodeId;
        let b = doubling_exponent_estimate(&g, center, 8);
        // A 2-dimensional mesh has doubling dimension 2; the empirical
        // exponent should land near 2 and certainly below 3.
        assert!(b > 1.0 && b < 3.0, "estimated exponent {b}");
    }

    #[test]
    fn star_doubling_exponent_is_large() {
        let edges: Vec<_> = (1..512).map(|v| (0 as NodeId, v as NodeId, 1 as Weight)).collect();
        let star = Graph::from_edges(512, &edges);
        let b = doubling_exponent_estimate(&star, 1, 4);
        assert!(b > 5.0, "estimated exponent {b}");
    }
}
