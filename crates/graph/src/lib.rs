//! Weighted undirected graph substrate for the CL-DIAM reproduction.
//!
//! This crate provides the storage layer every other crate builds on:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation of a
//!   weighted undirected graph with `u32` node identifiers and positive
//!   integer edge weights (see [`Weight`], [`Dist`]).
//! * [`atomic`] — unsafe-free atomic fetch-min cells: single-word
//!   [`MinDistCells`] for SSSP relaxation and the multi-word seqlock
//!   [`SeqMinCells`] behind the Δ-growing hot path in `cldiam-core`.
//! * [`GraphBuilder`] — an edge-list accumulator that deduplicates, removes
//!   self loops, symmetrizes and produces a [`Graph`].
//! * [`components`] — connected components (sequential union-find and a
//!   parallel label-propagation variant) and largest-component extraction.
//! * [`traversal`] — unweighted BFS utilities (hop distances, double sweep).
//! * [`ops`] — graph transformations: cartesian product (used by the paper's
//!   `roads(S)` family), induced subgraphs, relabelling and reweighting.
//! * [`stats`] — degree/weight statistics used by the benchmark harness to
//!   regenerate Table 1.
//! * [`io`] — file ingestion: SNAP/TSV edge lists, DIMACS `.gr`, a versioned
//!   binary CSR snapshot, and format auto-detection ([`load_graph`]). Text
//!   parsing is parallel over newline-aligned chunks and deterministic at any
//!   thread count.
//! * [`properties`] — ball-growth probes related to the doubling dimension
//!   assumption of Corollary 1.
//! * [`cancel`] — the cooperative [`CancelToken`] polled at engine phase
//!   boundaries for deadline-bounded, gracefully degrading runs.
//! * [`failpoint`] — fault-injection hooks on every I/O seam (zero-cost
//!   when disarmed; armed via `CLDIAM_FAILPOINTS` or the test registry).
//!
//! The paper assumes positive integral edge weights polynomial in `n`; graphs
//! that are "born unweighted" get uniform random weights in `(0, 1]` which we
//! represent in fixed point with scale [`WEIGHT_SCALE`].

// Unsafe is confined to the `storage` and `mmap` modules, which opt
// back in at module scope with their invariants documented per site.
#![deny(unsafe_code)]

pub mod atomic;
pub mod builder;
pub mod cancel;
pub mod components;
pub mod compressed;
pub mod csr;
pub mod failpoint;
pub mod io;
pub mod mmap;
pub mod ops;
pub mod properties;
pub mod source;
pub mod stats;
mod storage;
pub mod traversal;
pub mod weight;

pub use atomic::{MinDistCells, SeqMinCells};
pub use builder::GraphBuilder;
pub use cancel::CancelToken;
pub use components::{
    component_subgraphs, connected_components, largest_component, ComponentLabels,
};
pub use compressed::CompressedGraph;
pub use csr::Graph;
pub use io::edgelist;
pub use io::snapshot::{
    parse_snapshot_bytes, read_snapshot_file, snapshot_version, write_snapshot_file, Snapshot,
    SnapshotGraph, SnapshotOptions, SnapshotPayload,
};
pub use io::{
    detect_format, load_graph, load_graph_as, load_graph_cached, load_graph_cached_with,
    CacheOptions, EdgeDirection, FileFormat, IoError, LoadedGraph,
};
pub use source::NeighborSource;
pub use stats::GraphStats;
pub use weight::{
    dist_to_unit, weight_from_unit, weight_to_unit, Dist, NodeId, Weight, INFINITY, WEIGHT_SCALE,
};
