//! Unweighted traversal utilities.
//!
//! The paper's analysis distinguishes the *weighted* diameter `Φ(G)` from the
//! *unweighted* diameter `Ψ(G)` (the round-complexity lower bound of the
//! Δ-stepping baseline under linear space). These BFS helpers compute hop
//! distances, eccentricities and a double-sweep estimate of `Ψ(G)`.

use std::collections::VecDeque;

use rayon::prelude::*;

use crate::source::NeighborSource;
use crate::weight::NodeId;

/// Hop distance assigned to unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first search from `source`; returns the hop distance of every node
/// ([`UNREACHABLE`] for nodes in other components).
pub fn bfs_hops<G: NeighborSource>(graph: &G, source: NodeId) -> Vec<u32> {
    multi_source_bfs(graph, std::slice::from_ref(&source))
}

/// Breadth-first search from a set of sources; each node gets the hop distance
/// to the nearest source.
pub fn multi_source_bfs<G: NeighborSource>(graph: &G, sources: &[NodeId]) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (v, _) in graph.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A frontier-parallel BFS that processes one level per step, mirroring how a
/// MapReduce round would expand the frontier. Returns the same hop distances
/// as [`bfs_hops`] together with the number of levels (rounds) executed.
pub fn parallel_bfs_hops<G: NeighborSource>(graph: &G, source: NodeId) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        let next: Vec<NodeId> = frontier
            .par_iter()
            .with_min_len(64)
            .flat_map_iter(|&u| {
                graph
                    .neighbors(u)
                    .filter(|&(v, _)| dist[v as usize] == UNREACHABLE)
                    .map(|(v, _)| v)
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut dedup_next = Vec::with_capacity(next.len());
        for v in next {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = level + 1;
                dedup_next.push(v);
            }
        }
        frontier = dedup_next;
        level += 1;
    }
    (dist, rounds)
}

/// Unweighted eccentricity of `source` restricted to its component (maximum
/// finite hop distance).
pub fn hop_eccentricity<G: NeighborSource>(graph: &G, source: NodeId) -> u32 {
    bfs_hops(graph, source).into_iter().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Double-sweep lower bound for the unweighted diameter `Ψ(G)`: BFS from a
/// start node, then BFS again from the farthest node found. On many practical
/// graph classes (road networks, meshes) this is exact or nearly so.
pub fn double_sweep_hop_diameter<G: NeighborSource>(graph: &G, start: NodeId) -> u32 {
    if graph.num_nodes() == 0 {
        return 0;
    }
    let first = bfs_hops(graph, start);
    let farthest = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| i as NodeId)
        .unwrap_or(start);
    hop_eccentricity(graph, farthest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId, 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_hops(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = path(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_with_duplicate_sources() {
        let g = path(3);
        let d = multi_source_bfs(&g, &[1, 1]);
        assert_eq!(d, vec![1, 0, 1]);
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        let g = path(64);
        let (par, rounds) = parallel_bfs_hops(&g, 0);
        assert_eq!(par, bfs_hops(&g, 0));
        // One round per frontier expansion, including the final round that
        // discovers nothing: eccentricity(0) + 1 = 64.
        assert_eq!(rounds, 64);
    }

    #[test]
    fn eccentricity_and_double_sweep() {
        let g = path(10);
        assert_eq!(hop_eccentricity(&g, 0), 9);
        assert_eq!(hop_eccentricity(&g, 5), 5);
        // Double sweep from the middle still finds the true hop diameter of a path.
        assert_eq!(double_sweep_hop_diameter(&g, 5), 9);
    }

    #[test]
    fn double_sweep_on_empty_graph() {
        assert_eq!(double_sweep_hop_diameter(&Graph::empty(0), 0), 0);
    }
}
