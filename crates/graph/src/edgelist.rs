//! Plain-text edge-list input/output.
//!
//! The format is the one used by the DIMACS/SNAP benchmark collections the
//! paper evaluates on: one edge per line, whitespace separated, with an
//! optional integer weight (`u v [w]`). Lines starting with `#`, `%` or `c`
//! are treated as comments. Unweighted lines get weight 1.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weight::{NodeId, Weight};

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid `u v [w]` triple.
    Parse { line_number: usize, line: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line_number, line } => {
                write!(f, "cannot parse edge on line {line_number}: {line:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses an edge list from any buffered reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, EdgeListError> {
    let mut builder = GraphBuilder::new(0);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('#')
            || trimmed.starts_with('%')
            || trimmed.starts_with('c')
        {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| s.and_then(|t| t.parse::<u64>().ok());
        let u = parse(parts.next());
        let v = parse(parts.next());
        let w = match parts.next() {
            None => Some(1u64),
            Some(t) => t.parse::<u64>().ok(),
        };
        match (u, v, w) {
            (Some(u), Some(v), Some(w))
                if u <= NodeId::MAX as u64
                    && v <= NodeId::MAX as u64
                    && w <= Weight::MAX as u64 =>
            {
                builder.add_edge(u as NodeId, v as NodeId, w as Weight);
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx + 1,
                    line: trimmed.to_string(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Parses an edge list stored in a string (convenient for tests and examples).
pub fn parse_edge_list(text: &str) -> Result<Graph, EdgeListError> {
    read_edge_list(io::Cursor::new(text))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes the graph as a weighted edge list (`u v w`, one undirected edge per
/// line).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# cldiam edge list: {} nodes, {} edges", graph.num_nodes(), graph.num_edges())?;
    for (u, v, w) in graph.edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    out.flush()
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_weighted_and_unweighted_lines() {
        let g = parse_edge_list("# comment\n0 1 5\n1 2\n% other comment\n\n2 3 7\n").unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(2, 3), Some(7));
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_edge_list("0 1 5\nnot an edge\n").unwrap_err();
        match err {
            EdgeListError::Parse { line_number, .. } => assert_eq!(line_number, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let g = Graph::from_edges(4, &[(0, 1, 3), (1, 2, 4), (0, 3, 9)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn roundtrip_through_file() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 8)]);
        let dir = std::env::temp_dir().join("cldiam_edgelist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        assert_eq!(parsed, g);
    }
}
