//! The DIMACS shortest-path graph format (`.gr`).
//!
//! The format of the 9th DIMACS Implementation Challenge road networks the
//! paper benchmarks on (roads-USA, roads-CAL):
//!
//! ```text
//! c comment lines
//! p sp <num_nodes> <num_arcs>
//! a <u> <v> <w>        (1-based endpoints, one line per directed arc)
//! ```
//!
//! Arcs are symmetrized into undirected edges by [`crate::GraphBuilder`]
//! (road networks list both directions; parallel arcs collapse to the
//! minimum weight). The `p` header must precede every `a` line; arc
//! endpoints must lie in `1..=num_nodes` and the number of `a` lines must
//! match the header's arc count — violations are reported with the offending
//! line number.
//!
//! Parsing of the arc section is parallel over newline-aligned chunks with a
//! chunk-ordered merge; see [`crate::io`] for the determinism contract.

use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Graph;
use crate::io::{
    count_asymmetric_arcs, graph_from_arcs, parse_lines_parallel, EdgeDirection, IoError,
    LoadedGraph,
};
use crate::weight::{NodeId, Weight};

/// The parsed `p sp <n> <m>` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Header {
    num_nodes: usize,
    num_arcs: usize,
    /// Byte offset of the first line after the header.
    body_offset: usize,
    /// 1-based line number of the first line after the header.
    body_first_line: usize,
}

/// Locates and parses the `p` line sequentially (it must precede the arcs and
/// is virtually always within the first few lines).
fn parse_header(bytes: &[u8]) -> Result<Header, IoError> {
    let mut offset = 0usize;
    let mut line_number = 0usize;
    while offset < bytes.len() {
        line_number += 1;
        let end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| offset + i + 1)
            .unwrap_or(bytes.len());
        let line = std::str::from_utf8(bytes[offset..end].trim_ascii()).map_err(|_| {
            IoError::Parse { line_number, message: "line is not valid UTF-8".to_string() }
        })?;
        offset = end;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                // `p sp <n> <m>`; the problem identifier is not enforced so
                // that `p edge` style variants still load.
                let _problem = parts.next().ok_or_else(|| IoError::Parse {
                    line_number,
                    message: "bad header: expected `p sp <nodes> <arcs>`".to_string(),
                })?;
                let mut count = |what: &str| -> Result<usize, IoError> {
                    parts.next().and_then(|t| t.parse::<usize>().ok()).ok_or_else(|| {
                        IoError::Parse {
                            line_number,
                            message: format!("bad header: missing or non-numeric {what} count"),
                        }
                    })
                };
                let num_nodes = count("node")?;
                let num_arcs = count("arc")?;
                if num_nodes >= NodeId::MAX as usize {
                    return Err(IoError::Parse {
                        line_number,
                        message: format!("bad header: {num_nodes} nodes exceeds the node limit"),
                    });
                }
                if let Some(extra) = parts.next() {
                    return Err(IoError::Parse {
                        line_number,
                        message: format!("bad header: unexpected trailing token {extra:?}"),
                    });
                }
                return Ok(Header {
                    num_nodes,
                    num_arcs,
                    body_offset: offset,
                    body_first_line: line_number + 1,
                });
            }
            Some("a") => {
                return Err(IoError::Parse {
                    line_number,
                    message: "arc line before the `p sp <nodes> <arcs>` header".to_string(),
                })
            }
            _ => {
                return Err(IoError::Parse {
                    line_number,
                    message: format!("expected a `c` comment or the `p` header, got {line:?}"),
                })
            }
        }
    }
    Err(IoError::Format("missing `p sp <nodes> <arcs>` header".to_string()))
}

/// Parses one `a <u> <v> <w>` payload line against the header's node count.
fn parse_arc(line: &str, num_nodes: usize) -> Result<(NodeId, NodeId, Weight), String> {
    let mut parts = line.split_whitespace();
    let marker = parts.next();
    debug_assert_eq!(marker, Some("a"));
    let endpoint = |token: Option<&str>, which: &str| -> Result<NodeId, String> {
        let token = token.ok_or_else(|| format!("missing {which} endpoint"))?;
        let id = token
            .parse::<u64>()
            .map_err(|_| format!("{which} endpoint {token:?} is not a positive integer"))?;
        if id == 0 || id > num_nodes as u64 {
            return Err(format!(
                "{which} endpoint {id} out of range 1..={num_nodes} declared by the header"
            ));
        }
        Ok((id - 1) as NodeId)
    };
    let u = endpoint(parts.next(), "source")?;
    let v = endpoint(parts.next(), "target")?;
    let w_token = parts.next().ok_or("missing arc weight")?;
    let w = w_token
        .parse::<u64>()
        .map_err(|_| format!("weight {w_token:?} is not a non-negative integer"))?;
    if w == 0 {
        // The builder would silently clamp a zero weight to 1, altering
        // every distance through the arc; reject instead of rewriting.
        return Err("weight 0 is not allowed (weights must be strictly positive)".to_string());
    }
    if w > Weight::MAX as u64 {
        return Err(format!("weight {w} exceeds the weight limit {}", Weight::MAX));
    }
    if let Some(extra) = parts.next() {
        return Err(format!("unexpected trailing token {extra:?}"));
    }
    Ok((u, v, w as Weight))
}

/// A raw parsed arc list: `(u, v, w)` in file order.
type ArcList = Vec<(NodeId, NodeId, Weight)>;

/// Parses the header and the full arc section of a DIMACS document.
fn parse_arc_section(bytes: &[u8]) -> Result<(Header, ArcList), IoError> {
    let header = parse_header(bytes)?;
    let arcs =
        parse_lines_parallel(&bytes[header.body_offset..], header.body_first_line, |_, line| {
            if line.is_empty() || line.starts_with('c') {
                return Ok(None);
            }
            // Tokenize rather than test for a literal "a " prefix so that
            // tab-delimited files are treated like the edge-list parser does.
            if line.split_whitespace().next() != Some("a") {
                return Err(format!("expected an `a <u> <v> <w>` arc line, got {line:?}"));
            }
            parse_arc(line, header.num_nodes).map(Some)
        })?;
    if arcs.len() != header.num_arcs {
        return Err(IoError::Format(format!(
            "header declares {} arcs but the file contains {}",
            header.num_arcs,
            arcs.len()
        )));
    }
    Ok((header, arcs))
}

/// Parses a DIMACS `.gr` document from raw bytes (header sequentially, arc
/// section parallel over newline-aligned chunks).
pub fn parse_dimacs_bytes(bytes: &[u8]) -> Result<Graph, IoError> {
    let (header, arcs) = parse_arc_section(bytes)?;
    Ok(graph_from_arcs(header.num_nodes, &arcs, EdgeDirection::Symmetrize))
}

/// Parses a DIMACS document with an explicit [`EdgeDirection`], also counting
/// the arcs whose reverse is absent (directedness evidence for the caller).
pub fn parse_dimacs_bytes_as(
    bytes: &[u8],
    direction: EdgeDirection,
) -> Result<LoadedGraph, IoError> {
    let (header, arcs) = parse_arc_section(bytes)?;
    let asymmetric_arcs = count_asymmetric_arcs(&arcs);
    Ok(LoadedGraph { graph: graph_from_arcs(header.num_nodes, &arcs, direction), asymmetric_arcs })
}

/// Parses a DIMACS document stored in a string.
pub fn parse_dimacs(text: &str) -> Result<Graph, IoError> {
    parse_dimacs_bytes(text.as_bytes())
}

/// Parses a DIMACS document from any reader (buffered fully first).
pub fn read_dimacs<R: Read>(mut reader: R) -> Result<Graph, IoError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_dimacs_bytes(&bytes)
}

/// Reads a DIMACS document from a file path (through the `io::read`
/// failpoint seam, with transient-error retry).
pub fn read_dimacs_file<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let bytes = crate::io::read_file_bytes(path.as_ref(), "io::read")?;
    parse_dimacs_bytes(&bytes)
}

/// Writes the graph in DIMACS `.gr` form (both directions of every
/// undirected edge, as road-network files do).
pub fn write_dimacs<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "c cldiam DIMACS export")?;
    writeln!(out, "p sp {} {}", graph.num_nodes(), graph.num_arcs())?;
    for (u, v, w) in graph.arcs() {
        writeln!(out, "a {} {} {}", u + 1, v + 1, w)?;
    }
    out.flush()
}

/// Writes the graph to a file path in DIMACS form.
pub fn write_dimacs_file<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    let file = super::create_file(path.as_ref(), "dimacs::write")?;
    write_dimacs(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "c tiny example\n\
                         p sp 4 5\n\
                         a 1 2 10\n\
                         a 2 1 10\n\
                         a 2 3 20\n\
                         c interleaved comment\n\
                         a 3 4 5\n\
                         a 4 1 7\n";

    #[test]
    fn parses_small_document() {
        let g = parse_dimacs(SMALL).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(2, 3), Some(5));
        assert_eq!(g.edge_weight(3, 0), Some(7));
    }

    #[test]
    fn parses_tab_delimited_arc_lines() {
        let g = parse_dimacs("p\tsp\t3\t2\na\t1\t2\t4\na\t2\t3\t6\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 2), Some(6));
    }

    #[test]
    fn keeps_isolated_trailing_nodes() {
        let g = parse_dimacs("p sp 6 1\na 1 2 3\n").unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn rejects_bad_header() {
        for (text, expect_line) in [
            ("p sp\na 1 2 3\n", 1),
            ("p sp 4 nope\n", 1),
            ("c ok\nhello world\n", 2),
            ("a 1 2 3\np sp 4 1\n", 1),
            ("p sp 4 1 extra\n", 1),
        ] {
            match parse_dimacs(text).unwrap_err() {
                IoError::Parse { line_number, .. } => {
                    assert_eq!(line_number, expect_line, "input {text:?}")
                }
                other => panic!("unexpected error {other} for {text:?}"),
            }
        }
        assert!(matches!(parse_dimacs("c nothing else\n").unwrap_err(), IoError::Format(_)));
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let err = parse_dimacs("p sp 3 1\na 1 9 5\n").unwrap_err();
        match err {
            IoError::Parse { line_number, message } => {
                assert_eq!(line_number, 2);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(parse_dimacs("p sp 3 1\na 0 2 5\n").is_err());
    }

    #[test]
    fn rejects_negative_weight_and_arc_count_mismatch() {
        assert!(matches!(
            parse_dimacs("p sp 3 1\na 1 2 -4\n").unwrap_err(),
            IoError::Parse { line_number: 2, .. }
        ));
        assert!(matches!(
            parse_dimacs("p sp 3 1\na 1 2 0\n").unwrap_err(),
            IoError::Parse { line_number: 2, ref message } if message.contains("strictly positive")
        ));
        assert!(matches!(parse_dimacs("p sp 3 2\na 1 2 4\n").unwrap_err(), IoError::Format(_)));
    }

    #[test]
    fn roundtrips_through_writer() {
        let g = Graph::from_edges(5, &[(0, 1, 3), (1, 2, 4), (0, 3, 9), (3, 4, 1)]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let parsed = read_dimacs(io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn directed_mode_keeps_one_way_arcs() {
        let loaded = parse_dimacs_bytes_as(SMALL.as_bytes(), EdgeDirection::Directed).unwrap();
        assert!(loaded.graph.is_directed());
        // Arcs 1↔2 are mutual; 2→3, 3→4, 4→1 are one-way.
        assert_eq!(loaded.graph.num_edges(), 5);
        assert_eq!(loaded.graph.edge_weight(0, 1), Some(10));
        assert_eq!(loaded.graph.edge_weight(1, 0), Some(10));
        assert_eq!(loaded.graph.edge_weight(2, 1), None);
        assert_eq!(loaded.asymmetric_arcs, 3);
    }

    #[test]
    fn symmetrize_mode_matches_plain_parse() {
        let loaded = parse_dimacs_bytes_as(SMALL.as_bytes(), EdgeDirection::Symmetrize).unwrap();
        assert!(!loaded.graph.is_directed());
        assert_eq!(loaded.graph, parse_dimacs(SMALL).unwrap());
        assert_eq!(loaded.asymmetric_arcs, 3);
    }

    #[test]
    fn large_arc_section_parses_across_chunks() {
        let n = 4_000u32;
        let mut text = format!("p sp {} {}\n", n, n - 1);
        for i in 1..n {
            text.push_str(&format!("a {} {} {}\n", i, i + 1, 1 + (i % 9)));
        }
        let g = parse_dimacs(&text).unwrap();
        assert_eq!(g.num_nodes(), n as usize);
        assert_eq!(g.num_edges(), (n - 1) as usize);
    }
}
