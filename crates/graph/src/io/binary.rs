//! Versioned binary CSR snapshots (`.cldg`).
//!
//! Re-parsing a multi-gigabyte DIMACS or SNAP text file on every run is
//! wasteful: the snapshot stores the canonical CSR arrays directly so a
//! re-run deserializes in one pass with no text processing, builder sorting
//! or deduplication. The layout (all integers little-endian):
//!
//! ```text
//! magic     4 bytes   b"CLDG"
//! version   u32       format version (currently 1)
//! num_nodes u64
//! num_arcs  u64
//! hdr_sum   u64       FNV-1a of the 24 bytes above
//! section × 3 (offsets as u64, targets as u32, weights as u32):
//!   len     u64       payload length in bytes
//!   sum     u64       FNV-1a of the payload
//!   payload len bytes
//! ```
//!
//! Every section is checksummed, so truncation and corruption are detected
//! before any CSR invariant is trusted; [`read_binary`] additionally
//! re-validates the structural invariants (monotone offsets, in-range
//! targets, positive weights, no self loops, sorted adjacency lists,
//! symmetric arcs) and therefore never panics on hostile input and never
//! yields a [`Graph`] that violates what its query methods assume.

use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Graph;
use crate::io::{le_u32, le_u64, IoError};
use crate::weight::{NodeId, Weight};

/// Leading magic bytes of a snapshot file.
pub const MAGIC: &[u8; 4] = b"CLDG";

/// Current format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a, the integrity checksum of the snapshot sections (shared
/// with the v2 layout in [`crate::io::snapshot`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn write_section<W: Write>(out: &mut W, payload: &[u8]) -> std::io::Result<()> {
    out.write_all(&(payload.len() as u64).to_le_bytes())?;
    out.write_all(&fnv1a(payload).to_le_bytes())?;
    out.write_all(payload)
}

/// Serializes the graph as a binary snapshot.
///
/// Directed graphs are refused: format v1 stores only the forward arrays and
/// [`parse_binary`] validates arc symmetry, so a directed snapshot would
/// either fail to load or silently come back symmetrized.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    if graph.is_directed() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "binary snapshots (format v1) only support undirected graphs",
        ));
    }
    let mut out = BufWriter::new(writer);
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(graph.num_nodes() as u64).to_le_bytes());
    header.extend_from_slice(&(graph.num_arcs() as u64).to_le_bytes());
    out.write_all(&header)?;
    out.write_all(&fnv1a(&header).to_le_bytes())?;

    let mut offsets = Vec::with_capacity(graph.offsets().len() * 8);
    for &o in graph.offsets() {
        offsets.extend_from_slice(&(o as u64).to_le_bytes());
    }
    write_section(&mut out, &offsets)?;
    drop(offsets);

    let mut targets = Vec::with_capacity(graph.targets().len() * 4);
    for &t in graph.targets() {
        targets.extend_from_slice(&t.to_le_bytes());
    }
    write_section(&mut out, &targets)?;
    drop(targets);

    let mut weights = Vec::with_capacity(graph.weights().len() * 4);
    for &w in graph.weights() {
        weights.extend_from_slice(&w.to_le_bytes());
    }
    write_section(&mut out, &weights)?;
    out.flush()
}

/// Writes a snapshot to a file path.
pub fn write_binary_file<P: AsRef<Path>>(graph: &Graph, path: P) -> std::io::Result<()> {
    let file = super::create_file(path.as_ref(), "binary::write")?;
    write_binary(graph, file)
}

/// Cursor over the snapshot bytes with bounds-checked reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], IoError> {
        let end =
            self.pos.checked_add(len).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
                IoError::Format(format!("truncated snapshot: {what} needs {len} bytes"))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, IoError> {
        let bytes = self.take(8, what)?;
        Ok(le_u64(bytes))
    }

    fn take_section(&mut self, expected_len: usize, what: &str) -> Result<&'a [u8], IoError> {
        let len = self.take_u64(what)?;
        if len != expected_len as u64 {
            return Err(IoError::Format(format!(
                "{what} section is {len} bytes, expected {expected_len}"
            )));
        }
        let sum = self.take_u64(what)?;
        let payload = self.take(expected_len, what)?;
        if fnv1a(payload) != sum {
            return Err(IoError::Format(format!("{what} section checksum mismatch")));
        }
        Ok(payload)
    }
}

/// Deserializes a snapshot from raw bytes, verifying checksums and every CSR
/// invariant.
pub fn parse_binary(bytes: &[u8]) -> Result<Graph, IoError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let header = cur.take(24, "header")?;
    if &header[..4] != MAGIC {
        return Err(IoError::Format("not a cldiam binary snapshot (bad magic)".to_string()));
    }
    let version = le_u32(&header[4..8]);
    if version != FORMAT_VERSION {
        return Err(IoError::Format(format!(
            "unsupported snapshot version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let num_nodes = le_u64(&header[8..16]);
    let num_arcs = le_u64(&header[16..24]);
    let hdr_sum = cur.take_u64("header checksum")?;
    if fnv1a(header) != hdr_sum {
        return Err(IoError::Format("header checksum mismatch".to_string()));
    }
    if num_nodes >= NodeId::MAX as u64 || num_arcs > usize::MAX as u64 / 8 {
        return Err(IoError::Format(format!(
            "implausible snapshot dimensions: {num_nodes} nodes, {num_arcs} arcs"
        )));
    }
    let (n, arcs) = (num_nodes as usize, num_arcs as usize);

    let offsets_raw = cur.take_section((n + 1) * 8, "offsets")?;
    let targets_raw = cur.take_section(arcs * 4, "targets")?;
    let weights_raw = cur.take_section(arcs * 4, "weights")?;
    if cur.pos != bytes.len() {
        return Err(IoError::Format(format!(
            "{} trailing bytes after the weights section",
            bytes.len() - cur.pos
        )));
    }
    decode_validated_dense(n, arcs, offsets_raw, targets_raw, weights_raw)
}

/// Decodes little-endian CSR sections into an undirected [`Graph`], checking
/// every structural invariant (monotone spanning offsets, sorted in-range
/// targets, no self loops, positive weights, arc symmetry). Never panics on
/// hostile input. Shared by the v1 parser and the buffered v2 dense loader.
pub(crate) fn decode_validated_dense(
    n: usize,
    arcs: usize,
    offsets_raw: &[u8],
    targets_raw: &[u8],
    weights_raw: &[u8],
) -> Result<Graph, IoError> {
    if offsets_raw.len() != (n + 1) * 8
        || targets_raw.len() != arcs * 4
        || weights_raw.len() != arcs * 4
    {
        return Err(IoError::Format("CSR section sizes do not match the header".to_string()));
    }
    let num_arcs = arcs as u64;
    let mut offsets = Vec::with_capacity(n + 1);
    for chunk in offsets_raw.chunks_exact(8) {
        let o = le_u64(chunk);
        if o > num_arcs {
            return Err(IoError::Format(format!("offset {o} exceeds the arc count {num_arcs}")));
        }
        if let Some(&prev) = offsets.last() {
            if (o as usize) < prev {
                return Err(IoError::Format("offsets are not nondecreasing".to_string()));
            }
        }
        offsets.push(o as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
        return Err(IoError::Format("offsets do not span the arc array".to_string()));
    }

    let targets: Vec<NodeId> = targets_raw.chunks_exact(4).map(le_u32).collect();
    let weights: Vec<Weight> = weights_raw.chunks_exact(4).map(le_u32).collect();
    for (u, window) in offsets.windows(2).enumerate() {
        let mut prev: Option<NodeId> = None;
        for i in window[0]..window[1] {
            let v = targets[i];
            if prev.is_some_and(|p| v <= p) {
                return Err(IoError::Format(format!(
                    "adjacency list of node {u} is not strictly increasing (edge queries \
                     binary-search it)"
                )));
            }
            prev = Some(v);
            if v as usize >= n {
                return Err(IoError::Format(format!("arc target {v} out of range (n = {n})")));
            }
            if v as usize == u {
                return Err(IoError::Format(format!("self loop on node {u}")));
            }
            if weights[i] == 0 {
                return Err(IoError::Format(format!("zero weight on an arc of node {u}")));
            }
        }
    }
    // Symmetry: every arc must have its reverse with the same weight, or the
    // "undirected" graph would traverse directionally and miscount edges.
    // Adjacency lists are sorted (checked above), so the reverse lookup is a
    // binary search.
    for (u, window) in offsets.windows(2).enumerate() {
        for i in window[0]..window[1] {
            let v = targets[i] as usize;
            let back = &targets[offsets[v]..offsets[v + 1]];
            let reverse = back.binary_search(&(u as NodeId)).ok().map(|j| weights[offsets[v] + j]);
            if reverse != Some(weights[i]) {
                return Err(IoError::Format(format!(
                    "arc {u}->{v} (weight {}) has no matching reverse arc",
                    weights[i]
                )));
            }
        }
    }
    Ok(Graph::from_csr(offsets, targets, weights))
}

/// Deserializes a snapshot from any reader (buffered fully first).
pub fn read_binary<R: Read>(mut reader: R) -> Result<Graph, IoError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_binary(&bytes)
}

/// Reads a snapshot from a file path (through the `snapshot::read`
/// failpoint seam, with transient-error retry).
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let bytes = crate::io::read_file_bytes(path.as_ref(), "snapshot::read")?;
    parse_binary(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(6, &[(0, 1, 3), (1, 2, 4), (0, 3, 9), (3, 4, 1), (2, 4, 8)])
    }

    fn snapshot(graph: &Graph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_binary(graph, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrips_through_memory() {
        let g = sample();
        assert_eq!(parse_binary(&snapshot(&g)).unwrap(), g);
    }

    #[test]
    fn roundtrips_empty_and_edgeless_graphs() {
        for g in [Graph::empty(0), Graph::empty(7)] {
            assert_eq!(parse_binary(&snapshot(&g)).unwrap(), g);
        }
    }

    #[test]
    fn roundtrips_through_file() {
        let g = sample();
        let dir = std::env::temp_dir().join("cldiam_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.cldg");
        write_binary_file(&g, &path).unwrap();
        assert_eq!(read_binary_file(&path).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = snapshot(&sample());
        buf[0] = b'X';
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("magic"))
        );
        let mut buf = snapshot(&sample());
        buf[4] = 99;
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("version"))
        );
    }

    #[test]
    fn detects_corruption_and_truncation() {
        let full = snapshot(&sample());
        // Flip one payload byte somewhere after the header.
        let mut corrupt = full.clone();
        let idx = full.len() - 3;
        corrupt[idx] ^= 0xFF;
        assert!(parse_binary(&corrupt).is_err());
        // Truncate at every prefix length: must error, never panic.
        for len in 0..full.len() {
            assert!(parse_binary(&full[..len]).is_err(), "prefix {len} accepted");
        }
    }

    /// Serializes raw CSR arrays with valid checksums — for forging
    /// structurally invalid but well-checksummed snapshots.
    fn forge(offsets: &[u64], targets: &[u32], weights: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(offsets.len() as u64 - 1).to_le_bytes());
        buf.extend_from_slice(&(targets.len() as u64).to_le_bytes());
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        let bytes = |xs: &[u64]| xs.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>();
        let bytes32 = |xs: &[u32]| xs.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>();
        for payload in [bytes(offsets), bytes32(targets), bytes32(weights)] {
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        buf
    }

    #[test]
    fn rejects_unsorted_adjacency_lists() {
        // Node 0's targets stored [2, 1]: checksums fine, but edge queries
        // binary-search the list, so this must be rejected.
        let buf = forge(&[0, 2, 3, 4], &[2, 1, 0, 0], &[5, 5, 5, 5]);
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("increasing"))
        );
    }

    #[test]
    fn rejects_asymmetric_arcs() {
        // Arc 0->1 with no 1->0: num_edges() would be wrong and traversal
        // directional.
        let buf = forge(&[0, 1, 1], &[1], &[5]);
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("reverse"))
        );
        // Reverse present but with a different weight.
        let buf = forge(&[0, 1, 2], &[1, 0], &[5, 6]);
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("reverse"))
        );
    }

    #[test]
    fn accepts_forged_but_valid_snapshot() {
        let buf = forge(&[0, 1, 2], &[1, 0], &[5, 5]);
        let g = parse_binary(&buf).unwrap();
        assert_eq!(g, Graph::from_edges(2, &[(0, 1, 5)]));
    }

    #[test]
    fn refuses_directed_graphs() {
        let mut b = crate::GraphBuilder::new_directed(2);
        b.add_arc(0, 1, 3);
        let g = b.build();
        let err = write_binary(&g, &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = snapshot(&sample());
        buf.push(0);
        assert!(
            matches!(parse_binary(&buf).unwrap_err(), IoError::Format(m) if m.contains("trailing"))
        );
    }
}
