//! SNAP/TSV-style plain-text edge lists.
//!
//! The format of the SNAP benchmark collection the paper evaluates on: one
//! edge per line, whitespace separated, with an optional integer weight
//! (`u v [w]`). Lines starting with `#`, `%` or `c` are treated as comments.
//! Unweighted lines get weight 1. Node identifiers are 0-based and the node
//! set grows to cover the largest id seen.
//!
//! Parsing is parallel over newline-aligned chunks with a chunk-ordered
//! merge; see [`crate::io`] for the determinism contract.

use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Graph;
use crate::io::{
    count_asymmetric_arcs, graph_from_arcs, parse_lines_parallel, EdgeDirection, IoError,
    LoadedGraph,
};
use crate::weight::{NodeId, Weight};

/// Parses one `u v [w]` payload line (already trimmed, not a comment).
fn parse_edge(line: &str) -> Result<(NodeId, NodeId, Weight), String> {
    let mut parts = line.split_whitespace();
    let endpoint = |token: Option<&str>, which: &str| -> Result<NodeId, String> {
        let token = token.ok_or_else(|| format!("missing {which} endpoint"))?;
        let id = token
            .parse::<u64>()
            .map_err(|_| format!("{which} endpoint {token:?} is not a non-negative integer"))?;
        if id >= NodeId::MAX as u64 {
            return Err(format!("{which} endpoint {id} exceeds the node-id limit"));
        }
        Ok(id as NodeId)
    };
    let u = endpoint(parts.next(), "source")?;
    let v = endpoint(parts.next(), "target")?;
    let w = match parts.next() {
        None => 1u64,
        Some(token) => token
            .parse::<u64>()
            .map_err(|_| format!("weight {token:?} is not a non-negative integer"))?,
    };
    if w == 0 {
        // The builder would silently clamp a zero weight to 1, altering
        // every distance through the edge; reject instead of rewriting.
        return Err("weight 0 is not allowed (weights must be strictly positive)".to_string());
    }
    if w > Weight::MAX as u64 {
        return Err(format!("weight {w} exceeds the weight limit {}", Weight::MAX));
    }
    if let Some(extra) = parts.next() {
        return Err(format!("unexpected trailing token {extra:?}"));
    }
    Ok((u, v, w as Weight))
}

/// Parses the raw arc list of an edge-list document.
fn parse_arc_lines(bytes: &[u8]) -> Result<Vec<(NodeId, NodeId, Weight)>, IoError> {
    parse_lines_parallel(bytes, 1, |_, line| {
        if line.is_empty() || matches!(line.as_bytes()[0], b'#' | b'%' | b'c') {
            return Ok(None);
        }
        parse_edge(line).map(Some)
    })
}

/// Parses an edge list from raw bytes (parallel over newline-aligned chunks).
pub fn parse_edge_list_bytes(bytes: &[u8]) -> Result<Graph, IoError> {
    let arcs = parse_arc_lines(bytes)?;
    Ok(graph_from_arcs(0, &arcs, EdgeDirection::Symmetrize))
}

/// Parses an edge list with an explicit [`EdgeDirection`], also counting the
/// arcs whose reverse is absent (directedness evidence for the caller).
pub fn parse_edge_list_bytes_as(
    bytes: &[u8],
    direction: EdgeDirection,
) -> Result<LoadedGraph, IoError> {
    let arcs = parse_arc_lines(bytes)?;
    let asymmetric_arcs = count_asymmetric_arcs(&arcs);
    Ok(LoadedGraph { graph: graph_from_arcs(0, &arcs, direction), asymmetric_arcs })
}

/// Parses an edge list stored in a string (convenient for tests and examples).
pub fn parse_edge_list(text: &str) -> Result<Graph, IoError> {
    parse_edge_list_bytes(text.as_bytes())
}

/// Parses an edge list from any reader (buffered fully, then parsed in
/// parallel).
pub fn read_edge_list<R: Read>(mut reader: R) -> Result<Graph, IoError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_edge_list_bytes(&bytes)
}

/// Reads an edge list from a file path (through the `io::read` failpoint
/// seam, with transient-error retry).
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let bytes = crate::io::read_file_bytes(path.as_ref(), "io::read")?;
    parse_edge_list_bytes(&bytes)
}

/// Writes the graph as a weighted edge list (`u v w`, one undirected edge per
/// line).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# cldiam edge list: {} nodes, {} edges", graph.num_nodes(), graph.num_edges())?;
    for (u, v, w) in graph.edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    out.flush()
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    let file = super::create_file(path.as_ref(), "edgelist::write")?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_weighted_and_unweighted_lines() {
        let g = parse_edge_list("# comment\n0 1 5\n1 2\n% other comment\n\n2 3 7\n").unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(2, 3), Some(7));
    }

    #[test]
    fn parses_tab_separated_snap_style() {
        let g = parse_edge_list("# FromNodeId\tToNodeId\n0\t1\n1\t2\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = parse_edge_list("0 1 5\nnot an edge\n").unwrap_err();
        match err {
            IoError::Parse { line_number, .. } => assert_eq!(line_number, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_negative_weight() {
        let err = parse_edge_list("0 1 -5\n").unwrap_err();
        match err {
            IoError::Parse { line_number, message } => {
                assert_eq!(line_number, 1);
                assert!(message.contains("weight"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_zero_weight() {
        // The builder clamps 0 to 1; accepting it here would silently alter
        // distances relative to the input file.
        let err = parse_edge_list("0 1 0\n").unwrap_err();
        assert!(
            matches!(err, IoError::Parse { line_number: 1, ref message } if message.contains("strictly positive"))
        );
    }

    #[test]
    fn rejects_missing_endpoint_and_trailing_tokens() {
        assert!(parse_edge_list("7\n").is_err());
        assert!(parse_edge_list("0 1 2 3\n").is_err());
        assert!(parse_edge_list(&format!("0 {}\n", u64::from(NodeId::MAX))).is_err());
    }

    #[test]
    fn roundtrip_through_text() {
        let g = Graph::from_edges(4, &[(0, 1, 3), (1, 2, 4), (0, 3, 9)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn roundtrip_through_file() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 8)]);
        let dir = std::env::temp_dir().join("cldiam_edgelist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn directed_mode_keeps_one_way_arcs() {
        let text = "0 1 5\n1 2 3\n2 0 4\n";
        let loaded = parse_edge_list_bytes_as(text.as_bytes(), EdgeDirection::Directed).unwrap();
        assert!(loaded.graph.is_directed());
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.graph.edge_weight(0, 1), Some(5));
        assert_eq!(loaded.graph.edge_weight(1, 0), None);
        // Every arc lacks its reverse.
        assert_eq!(loaded.asymmetric_arcs, 3);
    }

    #[test]
    fn symmetric_input_reports_no_asymmetric_arcs() {
        let text = "0 1 5\n1 0 5\n1 2 3\n2 1 3\n";
        let loaded = parse_edge_list_bytes_as(text.as_bytes(), EdgeDirection::Symmetrize).unwrap();
        assert!(!loaded.graph.is_directed());
        assert_eq!(loaded.asymmetric_arcs, 0);
        assert_eq!(loaded.graph, parse_edge_list(text).unwrap());
    }

    #[test]
    fn asymmetry_count_ignores_weight_mismatches() {
        // 0→1 and 1→0 exist with different weights: directionally symmetric.
        let text = "0 1 5\n1 0 7\n0 2 1\n";
        let loaded = parse_edge_list_bytes_as(text.as_bytes(), EdgeDirection::Symmetrize).unwrap();
        assert_eq!(loaded.asymmetric_arcs, 1);
    }

    #[test]
    fn large_input_parses_identically_to_sequential_reference() {
        // Enough lines to spread across many chunks.
        let mut text = String::from("# header\n");
        for i in 0..5_000u32 {
            text.push_str(&format!("{} {} {}\n", i, i + 1, 1 + (i % 40)));
        }
        let g = parse_edge_list(&text).unwrap();
        assert_eq!(g.num_nodes(), 5_001);
        assert_eq!(g.num_edges(), 5_000);
        assert_eq!(g.edge_weight(17, 18), Some(18));
    }
}
