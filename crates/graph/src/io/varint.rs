//! LEB128 variable-length integers, the byte-level alphabet of the
//! compressed CSR blocks and the `.cldg` v2 snapshot payloads.
//!
//! Two decoders live here on purpose. [`decode_u64`] is the *strict* decoder
//! used when parsing untrusted snapshot bytes: it rejects truncated streams,
//! values that overflow `u64`, and non-canonical (over-long) encodings, so
//! every value has exactly one byte representation and checksummed payloads
//! cannot be mutated into equal-value aliases. [`decode_u64_fast`] is the
//! hot-path decoder used by the neighbor-block iterators on data this crate
//! encoded itself; it skips the canonicality checks but still bounds-checks
//! every byte access (corrupt input panics, it never reads out of bounds).

/// Maximum encoded length of a `u64` varint: `ceil(64 / 7)` bytes.
pub const MAX_VARINT_LEN: usize = 10;

/// Decoding failure of a strict varint read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarintError {
    /// The stream ended before a byte with the continuation bit clear.
    Truncated,
    /// The encoded value does not fit in 64 bits.
    Overflow,
    /// The encoding is longer than necessary (trailing zero groups).
    NonCanonical,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
            VarintError::NonCanonical => write!(f, "non-canonical varint encoding"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `value` to `buf`.
pub fn encode_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Strictly decodes one varint starting at `*pos`, advancing `*pos` past it.
///
/// Rejects truncation, 64-bit overflow, and over-long encodings; on error
/// `*pos` is left unspecified and the stream must be abandoned.
pub fn decode_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = bytes.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        let group = u64::from(byte & 0x7f);
        // The tenth byte may only carry the single remaining high bit.
        if shift == 63 && group > 1 {
            return Err(VarintError::Overflow);
        }
        if shift > 63 {
            return Err(VarintError::Overflow);
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            // Canonical form: a multi-byte encoding must not end in an
            // all-zero group (e.g. `80 00` is a two-byte alias of `00`).
            if shift > 0 && group == 0 {
                return Err(VarintError::NonCanonical);
            }
            return Ok(value);
        }
        shift += 7;
    }
}

/// Hot-path decoder for varints this crate produced itself. Bounds-checked
/// (panics on truncated input) but does not police canonical form.
#[inline(always)]
pub fn decode_u64_fast(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small absolute values staying
/// small: `0, -1, 1, -2, …` → `0, 1, 2, 3, …`.
#[inline(always)]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline(always)]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: u64) -> usize {
        let mut buf = Vec::new();
        encode_u64(&mut buf, value);
        let mut pos = 0;
        assert_eq!(decode_u64(&buf, &mut pos), Ok(value), "strict decode of {value}");
        assert_eq!(pos, buf.len(), "strict decode consumed whole encoding of {value}");
        let mut fast_pos = 0;
        assert_eq!(decode_u64_fast(&buf, &mut fast_pos), value, "fast decode of {value}");
        assert_eq!(fast_pos, buf.len());
        buf.len()
    }

    #[test]
    fn boundary_values_roundtrip() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        for power in 1..=9u32 {
            let edge = 1u64 << (7 * power);
            roundtrip(edge - 1);
            roundtrip(edge);
            roundtrip(edge + 1);
        }
        assert_eq!(roundtrip(u64::MAX), MAX_VARINT_LEN);
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                decode_u64(&buf[..cut], &mut pos),
                Err(VarintError::Truncated),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn over_long_encodings_are_rejected() {
        // `0` padded with a continuation byte: a two-byte alias of one byte.
        let mut pos = 0;
        assert_eq!(decode_u64(&[0x80, 0x00], &mut pos), Err(VarintError::NonCanonical));
        // `1` with a redundant zero continuation group.
        pos = 0;
        assert_eq!(decode_u64(&[0x81, 0x00], &mut pos), Err(VarintError::NonCanonical));
        // Canonical u64::MAX is ten bytes ending in 0x01; a zero tail group
        // would both overflow and be non-canonical — overflow wins.
        pos = 0;
        assert_eq!(
            decode_u64(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos),
            Err(VarintError::Overflow)
        );
    }

    #[test]
    fn eleven_byte_streams_overflow() {
        let bytes = [0x80u8; 12];
        let mut pos = 0;
        assert_eq!(decode_u64(&bytes, &mut pos), Err(VarintError::Overflow));
    }

    #[test]
    fn zigzag_is_an_involution_on_boundaries() {
        for value in
            [0i64, -1, 1, -2, 2, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1, 12345, -12345]
        {
            assert_eq!(zigzag_decode(zigzag_encode(value)), value);
        }
        // Small magnitudes stay small: one-byte varints for |v| < 64.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-64), 127);
    }
}
