//! `.cldg` format v2: sectioned snapshots with an mmap-backed zero-copy
//! read path and optional compressed payloads.
//!
//! Layout (all integers little-endian, every payload section 8-byte-aligned
//! and zero-padded up to the next section):
//!
//! ```text
//! 0x00 magic           b"CLDG"
//! 0x04 version         u32 = 2
//! 0x08 flags           u32   bit0 = compressed payload;
//!                            bits 8..10 = weight coding (0 varint, 1 palette,
//!                            2 constant, 3 fixed-width — width derived from max_weight)
//! 0x0C num_shards      u32   node-range shards (1 for dense payloads)
//! 0x10 num_nodes       u64
//! 0x18 num_arcs        u64
//! 0x20 min_weight      u32
//! 0x24 max_weight      u32
//! 0x28 weight_sum      u64   sum of weights over stored arcs
//! 0x30 num_sections    u32
//! 0x34 nodes_per_shard u32   0 for dense payloads
//! 0x38 hdr_sum         u64   FNV-1a of bytes 0x00..0x38
//! 0x40 section table   num_sections × { kind u32, shard u32, offset u64,
//!                                       len u64, checksum u64 }
//!      table_sum       u64   FNV-1a of the table bytes
//!      payload sections...
//! ```
//!
//! Dense payloads carry three sections (`offsets` as u64, `targets` and
//! `weights` as u32) — exactly the v1 arrays, but at known aligned offsets,
//! so the mmap loader can serve them to [`Graph`] as zero-copy typed slices
//! with O(header) work before the first query. Compressed payloads carry a
//! `bases` + `blocks` section pair per shard (plus one `palette` section
//! when the weight coding needs it); see [`crate::compressed`] for the block
//! format.
//!
//! ## Trust model
//!
//! The header and section table are validated eagerly on every load
//! (checksums, plausibility, section bounds/alignment), and so are the
//! per-shard group bases of compressed payloads (each must stay inside its
//! blob section, nondecreasing) — no offset read from disk is ever used to
//! index memory before being bounds-checked. Buffered loads also verify
//! every payload checksum and fully re-validate dense CSR invariants, so
//! hostile input errors cleanly, exactly like v1. The mmap path instead
//! trusts payload *contents* — v2 snapshots are only written from
//! already-validated graphs — and verifies payload checksums only when
//! [`SnapshotOptions::verify`] is set (the CLI's `--verify-snapshot`): a
//! deliberately corrupted unverified mapped blob can still panic at
//! traversal time (bounds checks inside the varint decoder), but never
//! causes undefined behaviour; pass `verify` to detect it at load time.

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::compressed::{
    mapped_shard, weight_width, CompressedGraph, Shard, WeightCoding, GROUP, MAX_PALETTE,
};
use crate::csr::Graph;
use crate::io::binary::{decode_validated_dense, fnv1a, MAGIC};
use crate::io::{le_u32, le_u64, IoError};
use crate::mmap::Mmap;
use crate::storage::Storage;
use crate::weight::{NodeId, Weight};

/// Version written by [`write_snapshot`] and read by the v2 parser.
pub const FORMAT_VERSION_2: u32 = 2;

const HEADER_LEN: usize = 0x40;
const SECTION_ENTRY_LEN: usize = 32;

const FLAG_COMPRESSED: u32 = 1;
const CODING_SHIFT: u32 = 8;
const CODING_VARINT: u32 = 0;
const CODING_PALETTE: u32 = 1;
const CODING_CONSTANT: u32 = 2;
const CODING_FIXED: u32 = 3;

const KIND_OFFSETS: u32 = 1;
const KIND_TARGETS: u32 = 2;
const KIND_WEIGHTS: u32 = 3;
const KIND_BASES: u32 = 4;
const KIND_BLOCKS: u32 = 5;
const KIND_PALETTE: u32 = 6;

/// Whether mapped sections can be served as zero-copy typed slices: the
/// on-disk layout is little-endian with 8-byte offsets.
const ZERO_COPY: bool = cfg!(all(target_endian = "little", target_pointer_width = "64"));

/// What to serialize into a v2 snapshot.
pub enum SnapshotPayload<'a> {
    /// Dense CSR sections (the v1 arrays at aligned offsets).
    Dense(&'a Graph),
    /// Delta-varint compressed blocks, sharded.
    Compressed(&'a CompressedGraph),
}

/// What a snapshot load produced.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotGraph {
    /// A dense graph (v1 files, or v2 files with dense payloads).
    Dense(Graph),
    /// A compressed graph (v2 files with compressed payloads).
    Compressed(CompressedGraph),
}

impl SnapshotGraph {
    /// The dense view, decompressing if needed.
    pub fn into_dense(self) -> Graph {
        match self {
            SnapshotGraph::Dense(g) => g,
            SnapshotGraph::Compressed(c) => c.to_graph(),
        }
    }

    /// Number of nodes, whichever tier is loaded.
    pub fn num_nodes(&self) -> usize {
        match self {
            SnapshotGraph::Dense(g) => g.num_nodes(),
            SnapshotGraph::Compressed(c) => c.num_nodes(),
        }
    }
}

/// A loaded snapshot: the graph plus the format version it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The deserialized payload.
    pub graph: SnapshotGraph,
    /// On-disk format version (1 or 2).
    pub version: u32,
}

/// Read-path knobs.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotOptions {
    /// Serve payload sections straight from a memory mapping instead of
    /// buffering and copying the file (v2 only; v1 files are buffered).
    pub mmap: bool,
    /// Verify payload checksums even on the mmap path. Buffered loads always
    /// verify.
    pub verify: bool,
}

impl Default for SnapshotOptions {
    fn default() -> Self {
        SnapshotOptions { mmap: false, verify: true }
    }
}

struct SectionDesc {
    kind: u32,
    shard: u32,
    payload: Vec<u8>,
}

fn le_bytes_u64(values: impl Iterator<Item = u64>, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_bytes_u32(values: impl Iterator<Item = u32>, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serializes a v2 snapshot.
///
/// Directed graphs are refused for the same reason as in v1: the format
/// stores only forward arrays and the loader assumes symmetry.
pub fn write_snapshot<W: Write>(payload: &SnapshotPayload<'_>, writer: W) -> std::io::Result<()> {
    let (flags, num_shards, nodes_per_shard, stats, sections) = match payload {
        SnapshotPayload::Dense(graph) => {
            if graph.is_directed() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "binary snapshots only support undirected graphs",
                ));
            }
            let sections = vec![
                SectionDesc {
                    kind: KIND_OFFSETS,
                    shard: 0,
                    payload: le_bytes_u64(
                        graph.offsets().iter().map(|&o| o as u64),
                        graph.offsets().len(),
                    ),
                },
                SectionDesc {
                    kind: KIND_TARGETS,
                    shard: 0,
                    payload: le_bytes_u32(graph.targets().iter().copied(), graph.targets().len()),
                },
                SectionDesc {
                    kind: KIND_WEIGHTS,
                    shard: 0,
                    payload: le_bytes_u32(graph.weights().iter().copied(), graph.weights().len()),
                },
            ];
            let stats = (
                graph.num_nodes() as u64,
                graph.num_arcs() as u64,
                graph.min_weight().unwrap_or(0),
                graph.max_weight().unwrap_or(0),
                graph.weights().iter().map(|&w| u64::from(w)).sum::<u64>(),
            );
            (0u32, 1u32, 0u32, stats, sections)
        }
        SnapshotPayload::Compressed(c) => {
            let coding_flag = match c.coding() {
                WeightCoding::Varint => CODING_VARINT,
                WeightCoding::Palette(_) => CODING_PALETTE,
                WeightCoding::Constant(_) => CODING_CONSTANT,
                WeightCoding::Fixed(_) => CODING_FIXED,
            };
            let mut sections = Vec::with_capacity(1 + 2 * c.num_shards());
            if let WeightCoding::Palette(table) = c.coding() {
                sections.push(SectionDesc {
                    kind: KIND_PALETTE,
                    shard: 0,
                    payload: le_bytes_u32(table.iter().copied(), table.len()),
                });
            }
            for (s, shard) in c.shards().iter().enumerate() {
                sections.push(SectionDesc {
                    kind: KIND_BASES,
                    shard: s as u32,
                    payload: le_bytes_u32(shard.bases.iter().copied(), shard.bases.len()),
                });
                sections.push(SectionDesc {
                    kind: KIND_BLOCKS,
                    shard: s as u32,
                    payload: shard.blob.to_vec(),
                });
            }
            let stats = (
                c.num_nodes() as u64,
                c.num_arcs() as u64,
                c.min_weight_raw(),
                c.max_weight_raw(),
                c.weight_sum(),
            );
            (
                FLAG_COMPRESSED | (coding_flag << CODING_SHIFT),
                c.num_shards() as u32,
                c.nodes_per_shard() as u32,
                stats,
                sections,
            )
        }
    };
    let (num_nodes, num_arcs, min_weight, max_weight, weight_sum) = stats;

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION_2.to_le_bytes());
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&num_shards.to_le_bytes());
    header.extend_from_slice(&num_nodes.to_le_bytes());
    header.extend_from_slice(&num_arcs.to_le_bytes());
    header.extend_from_slice(&min_weight.to_le_bytes());
    header.extend_from_slice(&max_weight.to_le_bytes());
    header.extend_from_slice(&weight_sum.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    header.extend_from_slice(&nodes_per_shard.to_le_bytes());
    let hdr_sum = fnv1a(&header);
    header.extend_from_slice(&hdr_sum.to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);

    // Assign aligned payload offsets and build the table.
    let mut table = Vec::with_capacity(sections.len() * SECTION_ENTRY_LEN);
    let mut offset = HEADER_LEN + sections.len() * SECTION_ENTRY_LEN + 8;
    debug_assert_eq!(offset % 8, 0);
    let mut offsets = Vec::with_capacity(sections.len());
    for section in &sections {
        offsets.push(offset);
        table.extend_from_slice(&section.kind.to_le_bytes());
        table.extend_from_slice(&section.shard.to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&(section.payload.len() as u64).to_le_bytes());
        table.extend_from_slice(&fnv1a(&section.payload).to_le_bytes());
        offset += section.payload.len().div_ceil(8) * 8;
    }
    let table_sum = fnv1a(&table);

    let mut out = BufWriter::new(writer);
    out.write_all(&header)?;
    out.write_all(&table)?;
    out.write_all(&table_sum.to_le_bytes())?;
    for (i, section) in sections.iter().enumerate() {
        out.write_all(&section.payload)?;
        let pad = section.payload.len().div_ceil(8) * 8 - section.payload.len();
        // The final section is unpadded: file length equals the last
        // payload's end.
        if i + 1 < sections.len() {
            out.write_all(&[0u8; 8][..pad])?;
        }
    }
    out.flush()
}

/// Writes a v2 snapshot to a file path, crash-safely: the bytes are
/// serialized in memory and land via temp file + fsync + atomic rename, so
/// a crashed or concurrent writer never leaves a torn snapshot at `path`.
pub fn write_snapshot_file<P: AsRef<Path>>(
    payload: &SnapshotPayload<'_>,
    path: P,
) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    write_snapshot(payload, &mut bytes)?;
    super::write_bytes_atomic(&bytes, path.as_ref())
}

/// One parsed (and eagerly validated) section table entry.
#[derive(Clone, Copy)]
struct SectionEntry {
    kind: u32,
    shard: u32,
    offset: usize,
    len: usize,
    checksum: u64,
}

/// Parsed header + table, shared by the mapped and buffered assembly paths.
struct Layout {
    flags: u32,
    num_shards: usize,
    num_nodes: usize,
    num_arcs: usize,
    min_weight: Weight,
    max_weight: Weight,
    weight_sum: u64,
    nodes_per_shard: usize,
    entries: Vec<SectionEntry>,
}

fn format_err<T>(message: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Format(message.into()))
}

/// Validates magic, version, header and table checksums, plausibility and
/// section bounds/alignment. O(header + table), independent of payload size.
fn parse_layout(bytes: &[u8]) -> Result<Layout, IoError> {
    if bytes.len() < HEADER_LEN {
        return format_err("truncated snapshot: header incomplete");
    }
    if &bytes[..4] != MAGIC {
        return format_err("not a cldiam binary snapshot (bad magic)");
    }
    let u32_at = |at: usize| le_u32(&bytes[at..at + 4]);
    let u64_at = |at: usize| le_u64(&bytes[at..at + 8]);
    let version = u32_at(0x04);
    if version != FORMAT_VERSION_2 {
        return format_err(format!(
            "unsupported snapshot version {version} (the v2 reader handles {FORMAT_VERSION_2})"
        ));
    }
    if fnv1a(&bytes[..HEADER_LEN - 8]) != u64_at(HEADER_LEN - 8) {
        return format_err("header checksum mismatch");
    }
    let flags = u32_at(0x08);
    let num_shards = u32_at(0x0C) as usize;
    let num_nodes = u64_at(0x10);
    let num_arcs = u64_at(0x18);
    let num_sections = u32_at(0x30) as usize;
    if num_nodes >= NodeId::MAX as u64 || num_arcs > usize::MAX as u64 / 8 {
        return format_err(format!(
            "implausible snapshot dimensions: {num_nodes} nodes, {num_arcs} arcs"
        ));
    }
    let (num_nodes, num_arcs) = (num_nodes as usize, num_arcs as usize);
    if num_shards == 0 || num_shards > num_nodes.max(1) {
        return format_err(format!("implausible shard count {num_shards}"));
    }
    if num_sections > 1 + 2 * num_shards {
        return format_err(format!("implausible section count {num_sections}"));
    }
    let table_len = num_sections * SECTION_ENTRY_LEN;
    let payload_start = HEADER_LEN + table_len + 8;
    if bytes.len() < payload_start {
        return format_err("truncated snapshot: section table incomplete");
    }
    let table = &bytes[HEADER_LEN..HEADER_LEN + table_len];
    if fnv1a(table) != u64_at(HEADER_LEN + table_len) {
        return format_err("section table checksum mismatch");
    }
    let mut entries = Vec::with_capacity(num_sections);
    let mut end_max = payload_start;
    for chunk in table.chunks_exact(SECTION_ENTRY_LEN) {
        let entry = SectionEntry {
            kind: le_u32(&chunk[0..4]),
            shard: le_u32(&chunk[4..8]),
            offset: le_u64(&chunk[8..16]) as usize,
            len: le_u64(&chunk[16..24]) as usize,
            checksum: le_u64(&chunk[24..32]),
        };
        if !entry.offset.is_multiple_of(8) || entry.offset < payload_start {
            return format_err(format!("section {} is misaligned", entry.kind));
        }
        let end =
            entry.offset.checked_add(entry.len).filter(|&e| e <= bytes.len()).ok_or_else(|| {
                IoError::Format(format!("section {} overruns the file", entry.kind))
            })?;
        end_max = end_max.max(end);
        entries.push(entry);
    }
    if end_max != bytes.len() {
        return format_err(format!(
            "{} trailing bytes after the last section",
            bytes.len() - end_max
        ));
    }
    Ok(Layout {
        flags,
        num_shards,
        num_nodes,
        num_arcs,
        min_weight: u32_at(0x20),
        max_weight: u32_at(0x24),
        weight_sum: u64_at(0x28),
        nodes_per_shard: u32_at(0x34) as usize,
        entries,
    })
}

impl Layout {
    /// The unique section of `kind`/`shard`, with its exact expected length
    /// (or `None` for variable-length sections).
    fn section(
        &self,
        kind: u32,
        shard: u32,
        expect_len: Option<usize>,
    ) -> Result<SectionEntry, IoError> {
        let mut found = None;
        for entry in &self.entries {
            if entry.kind == kind && entry.shard == shard {
                if found.is_some() {
                    return format_err(format!("duplicate section kind {kind} shard {shard}"));
                }
                found = Some(*entry);
            }
        }
        let entry = found
            .ok_or_else(|| IoError::Format(format!("missing section kind {kind} shard {shard}")))?;
        if let Some(expected) = expect_len {
            if entry.len != expected {
                return format_err(format!(
                    "section kind {kind} is {} bytes, expected {expected}",
                    entry.len
                ));
            }
        }
        Ok(entry)
    }

    fn verify_payloads(&self, bytes: &[u8]) -> Result<(), IoError> {
        for entry in &self.entries {
            if fnv1a(&bytes[entry.offset..entry.offset + entry.len]) != entry.checksum {
                return format_err(format!("section kind {} checksum mismatch", entry.kind));
            }
        }
        Ok(())
    }

    /// Node span of shard `s`.
    fn shard_span(&self, s: usize) -> usize {
        let lo = (s * self.nodes_per_shard).min(self.num_nodes);
        let hi = ((s + 1) * self.nodes_per_shard).min(self.num_nodes);
        hi - lo
    }
}

/// Parses a v2 snapshot from fully buffered bytes: payload checksums always
/// verified, dense payloads fully re-validated, everything copied to owned
/// storage.
pub fn parse_snapshot_v2(bytes: &[u8]) -> Result<SnapshotGraph, IoError> {
    let layout = parse_layout(bytes)?;
    layout.verify_payloads(bytes)?;
    assemble(&layout, bytes, None)
}

/// Parses a v2 snapshot served from a memory mapping: payload sections become
/// zero-copy typed views into the mapping (on little-endian 64-bit hosts;
/// other hosts fall back to owned copies), checksums verified only when
/// `verify` is set.
fn parse_snapshot_v2_mapped(map: Arc<Mmap>, verify: bool) -> Result<SnapshotGraph, IoError> {
    let layout = parse_layout(map.as_slice())?;
    if verify {
        layout.verify_payloads(map.as_slice())?;
    }
    if ZERO_COPY {
        assemble(&layout, map.as_slice(), Some(&map))
    } else {
        // Big-endian or 32-bit host: mapped sections cannot be reinterpreted
        // in place; decode owned copies with full validation instead.
        layout.verify_payloads(map.as_slice())?;
        assemble(&layout, map.as_slice(), None)
    }
}

/// Builds the graph from a validated layout. With `map`, payloads become
/// zero-copy mapped storage (trusting structure, see the module docs); without
/// it, payloads are decoded into owned storage with full validation.
fn assemble(
    layout: &Layout,
    bytes: &[u8],
    map: Option<&Arc<Mmap>>,
) -> Result<SnapshotGraph, IoError> {
    if layout.flags & FLAG_COMPRESSED == 0 {
        assemble_dense(layout, bytes, map).map(SnapshotGraph::Dense)
    } else {
        assemble_compressed(layout, bytes, map).map(SnapshotGraph::Compressed)
    }
}

fn assemble_dense(
    layout: &Layout,
    bytes: &[u8],
    map: Option<&Arc<Mmap>>,
) -> Result<Graph, IoError> {
    let (n, arcs) = (layout.num_nodes, layout.num_arcs);
    let offsets = layout.section(KIND_OFFSETS, 0, Some((n + 1) * 8))?;
    let targets = layout.section(KIND_TARGETS, 0, Some(arcs * 4))?;
    let weights = layout.section(KIND_WEIGHTS, 0, Some(arcs * 4))?;
    match map {
        Some(map) => {
            let misaligned = || IoError::Format("dense section misaligned for mapping".to_string());
            let offsets: Storage<usize> =
                Storage::mapped(Arc::clone(map), offsets.offset, n + 1).ok_or_else(misaligned)?;
            let targets: Storage<NodeId> =
                Storage::mapped(Arc::clone(map), targets.offset, arcs).ok_or_else(misaligned)?;
            let weights: Storage<Weight> =
                Storage::mapped(Arc::clone(map), weights.offset, arcs).ok_or_else(misaligned)?;
            // O(1) shape checks; the O(arcs) invariants were validated when
            // the snapshot was written.
            if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
                return format_err("offsets do not span the arc array");
            }
            Ok(Graph::from_storage_unchecked(offsets, targets, weights))
        }
        None => decode_validated_dense(
            n,
            arcs,
            &bytes[offsets.offset..offsets.offset + offsets.len],
            &bytes[targets.offset..targets.offset + targets.len],
            &bytes[weights.offset..weights.offset + weights.len],
        ),
    }
}

fn assemble_compressed(
    layout: &Layout,
    bytes: &[u8],
    map: Option<&Arc<Mmap>>,
) -> Result<CompressedGraph, IoError> {
    let coding = match (layout.flags >> CODING_SHIFT) & 0b11 {
        CODING_VARINT => WeightCoding::Varint,
        CODING_PALETTE => {
            let entry = layout.section(KIND_PALETTE, 0, None)?;
            let count = entry.len / 4;
            if entry.len % 4 != 0 || count == 0 || count > MAX_PALETTE {
                return format_err(format!("implausible palette section ({} bytes)", entry.len));
            }
            let table: Vec<Weight> =
                bytes[entry.offset..entry.offset + entry.len].chunks_exact(4).map(le_u32).collect();
            WeightCoding::Palette(table)
        }
        CODING_CONSTANT => {
            WeightCoding::Constant(if layout.num_arcs > 0 { layout.min_weight } else { 1 })
        }
        // The width is a pure function of the maximum weight, so the header
        // stats pin it without a dedicated field.
        CODING_FIXED => WeightCoding::Fixed(weight_width(layout.max_weight)),
        other => return format_err(format!("unknown weight coding {other}")),
    };
    if layout.nodes_per_shard == 0 {
        return format_err("compressed snapshot with zero nodes per shard");
    }
    let mut shards = Vec::with_capacity(layout.num_shards);
    for s in 0..layout.num_shards {
        let span = layout.shard_span(s);
        let groups = span.div_ceil(GROUP).max(1);
        let bases = layout.section(KIND_BASES, s as u32, Some(groups * 4))?;
        let blob = layout.section(KIND_BLOCKS, s as u32, None)?;
        let shard = match map {
            Some(map) if cfg!(target_endian = "little") => {
                mapped_shard(map, bases.offset, groups, blob.offset, blob.len)
                    .ok_or_else(|| IoError::Format("compressed section misaligned".to_string()))?
            }
            _ => {
                let bases_vec: Vec<u32> = bytes[bases.offset..bases.offset + bases.len]
                    .chunks_exact(4)
                    .map(le_u32)
                    .collect();
                let blob_vec = bytes[blob.offset..blob.offset + blob.len].to_vec();
                Shard { bases: bases_vec.into(), blob: blob_vec.into() }
            }
        };
        // The section table only bounds the *sections*; the group bases
        // inside a `bases` section index into the blob and are trusted by
        // `CompressedGraph::neighbors`. Validate them here (O(bases), still
        // independent of payload size) so a hostile or bit-rotted bases
        // array yields a typed error instead of an out-of-range slice —
        // this covers the unverified mmap path too.
        let mut prev = 0u32;
        for &base in shard.bases.iter() {
            if base as usize > blob.len || base < prev {
                return format_err(format!(
                    "group base {base} out of range for shard {s} ({} blob bytes)",
                    blob.len
                ));
            }
            prev = base;
        }
        shards.push(shard);
    }
    // Reject shard/geometry mismatches the section checks cannot see.
    if layout.num_shards != layout.num_nodes.div_ceil(layout.nodes_per_shard).max(1) {
        return format_err("shard count does not match the node range");
    }
    Ok(CompressedGraph::from_parts(
        layout.num_nodes,
        layout.num_arcs,
        layout.min_weight,
        layout.max_weight,
        layout.weight_sum,
        coding,
        layout.nodes_per_shard,
        shards,
    ))
}

/// Reads a snapshot of either format version from `path`.
///
/// Version 1 files are buffered and fully validated by the v1 parser.
/// Version 2 files honour [`SnapshotOptions`]: with `mmap` the payload is
/// served zero-copy from the mapping after O(header) validation; without it
/// the file is buffered, verified and copied.
pub fn read_snapshot_file<P: AsRef<Path>>(
    path: P,
    options: &SnapshotOptions,
) -> Result<Snapshot, IoError> {
    let path = path.as_ref();
    if options.mmap {
        let file = super::open_file(path, "snapshot::read")?;
        let map = Arc::new(Mmap::map(&file).map_err(IoError::Io)?);
        match snapshot_version(map.as_slice()) {
            Some(1) => Ok(Snapshot {
                graph: SnapshotGraph::Dense(super::binary::parse_binary(map.as_slice())?),
                version: 1,
            }),
            _ => Ok(Snapshot {
                graph: parse_snapshot_v2_mapped(map, options.verify)?,
                version: FORMAT_VERSION_2,
            }),
        }
    } else {
        let bytes = super::read_file_bytes(path, "snapshot::read")?;
        parse_snapshot_bytes(&bytes)
    }
}

/// Parses buffered snapshot bytes of either format version.
pub fn parse_snapshot_bytes(bytes: &[u8]) -> Result<Snapshot, IoError> {
    match snapshot_version(bytes) {
        Some(1) => Ok(Snapshot {
            graph: SnapshotGraph::Dense(super::binary::parse_binary(bytes)?),
            version: 1,
        }),
        _ => Ok(Snapshot { graph: parse_snapshot_v2(bytes)?, version: FORMAT_VERSION_2 }),
    }
}

/// The format version of snapshot bytes, if they carry the magic.
pub fn snapshot_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return None;
    }
    Some(le_u32(&bytes[4..8]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::binary;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(40);
        for u in 0..39u32 {
            b.add_edge(u, u + 1, 1 + (u % 7));
        }
        b.add_edge(0, 20, 9);
        b.build()
    }

    fn snapshot_bytes(payload: &SnapshotPayload<'_>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(payload, &mut buf).unwrap();
        buf
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cldiam-snap-{}-{name}.cldg", std::process::id()))
    }

    #[test]
    fn dense_roundtrips_buffered() {
        let g = sample();
        let buf = snapshot_bytes(&SnapshotPayload::Dense(&g));
        let snap = parse_snapshot_bytes(&buf).unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.graph, SnapshotGraph::Dense(g));
    }

    #[test]
    fn compressed_roundtrips_buffered() {
        let g = sample();
        for shards in [1, 3, 8] {
            let c = CompressedGraph::from_graph(&g, shards);
            let buf = snapshot_bytes(&SnapshotPayload::Compressed(&c));
            let snap = parse_snapshot_bytes(&buf).unwrap();
            match snap.graph {
                SnapshotGraph::Compressed(back) => {
                    assert_eq!(back, c);
                    assert_eq!(back.to_graph(), g);
                }
                other => panic!("expected compressed payload, got {other:?}"),
            }
        }
    }

    #[test]
    fn fixed_width_coding_roundtrips_buffered_and_mapped() {
        // > 256 distinct high-entropy weights select the fixed-width coding,
        // whose byte width travels through the header stats, not a section.
        let mut b = GraphBuilder::new(300);
        for u in 0..299u32 {
            b.add_edge(u, u + 1, 500_000 + u);
        }
        let g = b.build();
        let c = CompressedGraph::from_graph(&g, 2);
        assert!(matches!(c.coding(), WeightCoding::Fixed(3)));

        let buf = snapshot_bytes(&SnapshotPayload::Compressed(&c));
        let snap = parse_snapshot_bytes(&buf).unwrap();
        assert_eq!(snap.graph, SnapshotGraph::Compressed(c.clone()));

        let path = temp_path("fixed");
        write_snapshot_file(&SnapshotPayload::Compressed(&c), &path).unwrap();
        let snap =
            read_snapshot_file(&path, &SnapshotOptions { mmap: true, verify: true }).unwrap();
        match snap.graph {
            SnapshotGraph::Compressed(back) => assert_eq!(back.to_graph(), g),
            other => panic!("expected compressed payload, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dense_and_compressed_roundtrip_mapped() {
        let g = sample();
        let c = CompressedGraph::from_graph(&g, 4);
        for (name, payload, want_dense) in [
            ("dense", SnapshotPayload::Dense(&g), true),
            ("compressed", SnapshotPayload::Compressed(&c), false),
        ] {
            let path = temp_path(name);
            write_snapshot_file(&payload, &path).unwrap();
            for verify in [false, true] {
                let snap =
                    read_snapshot_file(&path, &SnapshotOptions { mmap: true, verify }).unwrap();
                assert_eq!(snap.version, 2);
                match (&snap.graph, want_dense) {
                    (SnapshotGraph::Dense(d), true) => assert_eq!(d, &g),
                    (SnapshotGraph::Compressed(back), false) => {
                        assert_eq!(back.to_graph(), g);
                        assert_eq!(back.num_shards(), c.num_shards());
                    }
                    (other, _) => panic!("unexpected payload {other:?}"),
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v1_files_still_load_through_the_snapshot_reader() {
        let g = sample();
        let path = temp_path("v1");
        binary::write_binary_file(&g, &path).unwrap();
        for mmap in [false, true] {
            let snap = read_snapshot_file(&path, &SnapshotOptions { mmap, verify: true }).unwrap();
            assert_eq!(snap.version, 1);
            assert_eq!(snap.graph, SnapshotGraph::Dense(g.clone()));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graphs_roundtrip() {
        for g in [Graph::empty(0), Graph::empty(5)] {
            let buf = snapshot_bytes(&SnapshotPayload::Dense(&g));
            assert_eq!(parse_snapshot_bytes(&buf).unwrap().graph, SnapshotGraph::Dense(g.clone()));
            let c = CompressedGraph::from_graph(&g, 2);
            let buf = snapshot_bytes(&SnapshotPayload::Compressed(&c));
            assert_eq!(parse_snapshot_bytes(&buf).unwrap().graph.into_dense(), g);
        }
    }

    #[test]
    fn truncation_and_corruption_are_detected() {
        let g = sample();
        let full = snapshot_bytes(&SnapshotPayload::Dense(&g));
        for len in 0..full.len() {
            assert!(parse_snapshot_bytes(&full[..len]).is_err(), "prefix {len} accepted");
        }
        // Flip one byte in every region: header, table, payload.
        for idx in [5usize, 9, HEADER_LEN + 3, full.len() - 2] {
            let mut corrupt = full.clone();
            corrupt[idx] ^= 0x40;
            assert!(parse_snapshot_bytes(&corrupt).is_err(), "corruption at {idx} accepted");
        }
        let mut trailing = full.clone();
        trailing.push(7);
        assert!(matches!(
            parse_snapshot_bytes(&trailing).unwrap_err(),
            IoError::Format(m) if m.contains("trailing")
        ));
    }

    #[test]
    fn mapped_load_without_verify_skips_payload_corruption_but_header_is_checked() {
        let g = sample();
        let c = CompressedGraph::from_graph(&g, 2);
        let path = temp_path("no-verify");
        write_snapshot_file(&SnapshotPayload::Compressed(&c), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the header: caught even without verify.
        bytes[9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot_file(&path, &SnapshotOptions { mmap: true, verify: false }).is_err());
        // Corrupt a payload byte: only the verifying load notices at parse
        // time (the unverified mapped load defers to bounds checks).
        bytes[9] ^= 0xFF;
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot_file(&path, &SnapshotOptions { mmap: true, verify: true }).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn directed_graphs_are_refused() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_arc(0, 1, 3);
        let g = b.build();
        let err = write_snapshot(&SnapshotPayload::Dense(&g), &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn snapshot_version_sniffs_correctly() {
        let g = sample();
        assert_eq!(snapshot_version(&snapshot_bytes(&SnapshotPayload::Dense(&g))), Some(2));
        let mut v1 = Vec::new();
        binary::write_binary(&g, &mut v1).unwrap();
        assert_eq!(snapshot_version(&v1), Some(1));
        assert_eq!(snapshot_version(b"p sp 2 1\n"), None);
        assert_eq!(snapshot_version(b"CL"), None);
    }
}
