//! Graph file ingestion: text parsers, binary snapshots, format detection.
//!
//! The paper's experiments run on external real-world graphs — SNAP social
//! networks and DIMACS road networks — so this module provides a path from
//! files on disk to the pipeline:
//!
//! * [`edgelist`] — SNAP/TSV-style edge lists (`u v [w]`, `#`/`%`/`c`
//!   comments, 0-based ids), the format of the SNAP collection.
//! * [`dimacs`] — the DIMACS shortest-path format (`c` comments, one
//!   `p sp <n> <m>` header, `a <u> <v> <w>` arcs, 1-based ids), the format of
//!   the 9th DIMACS Implementation Challenge road networks.
//! * [`binary`] — a versioned binary CSR snapshot (magic + header +
//!   checksummed sections) so repeated runs on the same input skip text
//!   parsing entirely.
//! * [`load_graph`] / [`detect_format`] — open any of the above by sniffing
//!   the file content (extension as a tie-breaker).
//!
//! Both text parsers are parallel: the input is split into newline-aligned
//! chunks, every chunk is parsed on the rayon pool, and the per-chunk edge
//! vectors are concatenated in chunk order. Because the merge is
//! chunk-ordered and [`crate::GraphBuilder`] canonicalizes the edge set with
//! a deterministic parallel sort, the resulting [`Graph`] is bit-identical at
//! any thread count. Errors carry precise 1-based line numbers; when several
//! lines are malformed the error reported is always the earliest one in file
//! order, again independent of the chunking.

pub mod binary;
pub mod dimacs;
pub mod edgelist;
pub mod snapshot;
pub mod varint;

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use rayon::prelude::*;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::failpoint::{self, WriteFault};
use crate::weight::{NodeId, Weight};

/// Infallible little-endian decodes for length-checked slices. Every
/// hostile-input decode path goes through these (or `from_le_bytes` on a
/// literal array) rather than `try_into().expect(...)`, so the parsers
/// contain no panicking conversions at all — disk faults and corruption
/// surface as [`IoError`], never as a panic.
#[inline]
pub(crate) fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// See [`le_u32`].
#[inline]
pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ])
}

/// Retries `op` over transient I/O errors (`Interrupted`, `WouldBlock`)
/// with a short bounded backoff; any other error — and the fourth
/// transient one in a row — is returned to the caller.
pub(crate) fn with_io_retry<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut backoff_ms = 1u64;
    for _ in 0..3 {
        match op() {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                ) =>
            {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                backoff_ms *= 4;
            }
            other => return other,
        }
    }
    op()
}

/// Reads a whole file through the failpoint seam `site`, retrying
/// transient errors. Every buffered load in this module funnels through
/// here, so chaos tests can inject truncation, bit flips, `EIO` and
/// delays at one place.
pub(crate) fn read_file_bytes(path: &Path, site: &str) -> std::io::Result<Vec<u8>> {
    with_io_retry(|| {
        failpoint::inject(site)?;
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        failpoint::mutate_buffer(site, &mut bytes)?;
        Ok(bytes)
    })
}

/// Opens `path` for reading through the failpoint seam `site`, retrying
/// transient errors. Streaming readers that cannot buffer the whole file
/// (or that hand the handle to `mmap`) funnel through here instead of
/// [`read_file_bytes`]; either way every open in the crate passes a
/// failpoint, so chaos tests can inject `EIO`/`ENOENT`/delays uniformly.
pub(crate) fn open_file(path: &Path, site: &str) -> std::io::Result<std::fs::File> {
    with_io_retry(|| {
        failpoint::inject(site)?;
        std::fs::File::open(path)
    })
}

/// Creates (truncating) `path` for writing through the failpoint seam
/// `site`, retrying transient errors. Streaming writers — section-at-a-time
/// snapshot and text emitters — funnel through here; buffered whole-file
/// writes use [`write_bytes_atomic`] instead.
pub(crate) fn create_file(path: &Path, site: &str) -> std::io::Result<std::fs::File> {
    with_io_retry(|| {
        failpoint::inject(site)?;
        std::fs::File::create(path)
    })
}

/// Persists `bytes` crash-safely: write to a same-directory temp file,
/// fsync, then atomically rename over `path`. A reader never observes a
/// half-written file — it sees either the old contents or the new ones.
/// On error the temp file is removed (best-effort) and `path` is
/// untouched. The `cache::write` failpoint can simulate `ENOSPC`, partial
/// writes, torn renames and silent bit rot.
pub(crate) fn write_bytes_atomic(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let write_tmp = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        match failpoint::on_write("cache::write", bytes) {
            WriteFault::None => file.write_all(bytes)?,
            WriteFault::Err(e) => return Err(e),
            WriteFault::Partial(n) => {
                // Disk-full mid-write: some bytes land, then the write
                // fails. The caller sees the error and `path` is untouched.
                file.write_all(&bytes[..n])?;
                file.sync_all().ok();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "failpoint cache::write (partial)",
                ));
            }
            // Crash simulations: a truncated or bit-flipped image reaches
            // the final path "successfully" — the next load must detect it.
            WriteFault::Torn(n) => file.write_all(&bytes[..n])?,
            WriteFault::Corrupt(copy) => file.write_all(&copy)?,
        }
        file.sync_all()
    };
    match with_io_retry(write_tmp) {
        Ok(()) => std::fs::rename(&tmp, path),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Errors produced while reading or writing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line in a text format, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A structural problem: bad magic, checksum mismatch, unsupported
    /// version, inconsistent section sizes.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line_number, message } => {
                write!(f, "line {line_number}: {message}")
            }
            IoError::Format(message) => write!(f, "invalid file: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// The on-disk graph formats the loader understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFormat {
    /// DIMACS shortest-path (`.gr`): `p sp n m` header and `a u v w` arcs.
    Dimacs,
    /// SNAP/TSV edge list: whitespace-separated `u v [w]` lines.
    EdgeList,
    /// The [`binary`] CSR snapshot.
    Binary,
}

/// Guesses the format of a graph file from its leading bytes, using the file
/// extension as a tie-breaker for empty or all-comment heads.
///
/// The binary magic wins outright; a first significant line starting with
/// `p ` or `a ` means DIMACS; anything else is treated as an edge list.
pub fn detect_format(path: &Path, head: &[u8]) -> FileFormat {
    if head.starts_with(binary::MAGIC) {
        return FileFormat::Binary;
    }
    for line in head.split(|&b| b == b'\n') {
        let line = line.trim_ascii();
        if line.is_empty() || matches!(line[0], b'#' | b'%' | b'c') {
            continue;
        }
        let first_token = line.split(|b: &u8| b.is_ascii_whitespace()).next();
        if matches!(first_token, Some(b"p") | Some(b"a")) {
            return FileFormat::Dimacs;
        }
        return FileFormat::EdgeList;
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some("gr") | Some("dimacs") => FileFormat::Dimacs,
        Some("cldg") => FileFormat::Binary,
        _ => FileFormat::EdgeList,
    }
}

/// How a loader should interpret the arc lines of a text format.
///
/// Both text formats store *directed* arcs on disk (SNAP follower links,
/// DIMACS `a` lines); the historical behaviour — and the
/// [`EdgeDirection::Symmetrize`] default — folds every arc into an
/// undirected edge. [`EdgeDirection::Directed`] keeps the arcs one-way and
/// produces a graph with [`Graph::is_directed`] set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeDirection {
    /// Fold `u → v` into the undirected edge `{u, v}` (today's behaviour).
    #[default]
    Symmetrize,
    /// Keep every arc one-way.
    Directed,
}

/// A loaded graph plus what the loader observed about the raw arc set.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// Number of distinct non-loop arcs `u → v` in the input with no
    /// companion arc `v → u` (any weight). Nonzero means the input is
    /// genuinely directed; a symmetrizing load of such a file silently
    /// invents the missing reverse arcs, and callers should warn.
    pub asymmetric_arcs: usize,
}

/// Counts distinct non-loop arcs whose reverse is absent from the input.
pub(crate) fn count_asymmetric_arcs(arcs: &[(NodeId, NodeId, Weight)]) -> usize {
    let mut pairs: Vec<(NodeId, NodeId)> =
        arcs.iter().filter(|&&(u, v, _)| u != v).map(|&(u, v, _)| (u, v)).collect();
    pairs.par_sort_unstable();
    pairs.dedup();
    pairs.par_iter().filter(|&&(u, v)| pairs.binary_search(&(v, u)).is_err()).count()
}

/// Builds a graph from a parsed arc list according to `direction`.
pub(crate) fn graph_from_arcs(
    num_nodes: usize,
    arcs: &[(NodeId, NodeId, Weight)],
    direction: EdgeDirection,
) -> Graph {
    match direction {
        EdgeDirection::Symmetrize => {
            let mut builder = GraphBuilder::with_capacity(num_nodes, arcs.len());
            builder.extend_edges(arcs.iter().copied());
            builder.build()
        }
        EdgeDirection::Directed => {
            let mut builder = GraphBuilder::new_directed(num_nodes);
            for &(u, v, w) in arcs {
                builder.add_arc(u, v, w);
            }
            builder.build()
        }
    }
}

/// Loads a graph from `path`, auto-detecting the format with
/// [`detect_format`]. Text formats are parsed in parallel on the current
/// rayon pool.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let bytes = read_file_bytes(path, "io::read")?;
    load_graph_bytes(path, &bytes)
}

/// [`load_graph`] over an in-memory buffer (`path` only informs detection).
pub fn load_graph_bytes(path: &Path, bytes: &[u8]) -> Result<Graph, IoError> {
    match detect_format(path, &bytes[..bytes.len().min(4096)]) {
        FileFormat::Binary => Ok(snapshot::parse_snapshot_bytes(bytes)?.graph.into_dense()),
        FileFormat::Dimacs => dimacs::parse_dimacs_bytes(bytes),
        FileFormat::EdgeList => edgelist::parse_edge_list_bytes(bytes),
    }
}

/// Loads a graph with an explicit [`EdgeDirection`], also reporting how many
/// input arcs lack their reverse (see [`LoadedGraph::asymmetric_arcs`]).
///
/// Binary snapshots store undirected CSR arrays only, so requesting
/// [`EdgeDirection::Directed`] on one is a [`IoError::Format`] error.
pub fn load_graph_as<P: AsRef<Path>>(
    path: P,
    direction: EdgeDirection,
) -> Result<LoadedGraph, IoError> {
    let path = path.as_ref();
    let bytes = read_file_bytes(path, "io::read")?;
    load_graph_bytes_as(path, &bytes, direction)
}

/// [`load_graph_as`] over an in-memory buffer.
pub fn load_graph_bytes_as(
    path: &Path,
    bytes: &[u8],
    direction: EdgeDirection,
) -> Result<LoadedGraph, IoError> {
    match detect_format(path, &bytes[..bytes.len().min(4096)]) {
        FileFormat::Binary => match direction {
            EdgeDirection::Symmetrize => Ok(LoadedGraph {
                graph: snapshot::parse_snapshot_bytes(bytes)?.graph.into_dense(),
                asymmetric_arcs: 0,
            }),
            EdgeDirection::Directed => Err(IoError::Format(
                "binary snapshots are undirected; load the original text file in directed mode"
                    .to_string(),
            )),
        },
        FileFormat::Dimacs => dimacs::parse_dimacs_bytes_as(bytes, direction),
        FileFormat::EdgeList => edgelist::parse_edge_list_bytes_as(bytes, direction),
    }
}

/// The conventional location of the binary snapshot companion of a text
/// graph file: the same path with `.cldg` appended (`roads.gr` →
/// `roads.gr.cldg`).
pub fn snapshot_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".cldg");
    PathBuf::from(name)
}

/// How [`load_graph_cached_with`] should materialize and serve the snapshot
/// cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheOptions {
    /// Write (and prefer) compressed v2 payloads instead of dense ones.
    pub compress: bool,
    /// Shard count for compressed payloads (clamped to `1..=num_nodes`).
    pub shards: usize,
    /// Serve snapshot payloads zero-copy from a memory mapping.
    pub mmap: bool,
    /// Verify payload checksums on the mmap path (buffered loads always do).
    pub verify: bool,
}

impl Default for CacheOptions {
    fn default() -> Self {
        CacheOptions { compress: false, shards: 1, mmap: false, verify: true }
    }
}

impl CacheOptions {
    fn snapshot_options(&self) -> snapshot::SnapshotOptions {
        snapshot::SnapshotOptions { mmap: self.mmap, verify: self.verify }
    }

    /// Whether an already-loaded cache payload matches what was requested
    /// (tier and, for the compressed tier, shard count).
    fn matches(&self, graph: &snapshot::SnapshotGraph) -> bool {
        match graph {
            snapshot::SnapshotGraph::Dense(_) => !self.compress,
            snapshot::SnapshotGraph::Compressed(c) => {
                self.compress
                    && c.num_shards()
                        == crate::CompressedGraph::from_graph_shard_count(
                            c.num_nodes(),
                            self.shards,
                        )
            }
        }
    }

    /// Converts a dense graph into the requested payload tier.
    fn payload_of(&self, graph: Graph) -> snapshot::SnapshotGraph {
        if self.compress {
            snapshot::SnapshotGraph::Compressed(crate::CompressedGraph::from_graph(
                &graph,
                self.shards,
            ))
        } else {
            snapshot::SnapshotGraph::Dense(graph)
        }
    }
}

/// Best-effort cache write; a failure (read-only dataset directory, disk
/// full) must never fail a load that already succeeded. Returns whether the
/// write landed. The snapshot is serialized in memory and written
/// crash-safely (temp file + fsync + atomic rename), so a concurrent or
/// crashed run never leaves a half-written cache at the final path.
fn try_write_cache(graph: &snapshot::SnapshotGraph, cache: &Path) -> bool {
    let payload = match graph {
        snapshot::SnapshotGraph::Dense(g) => snapshot::SnapshotPayload::Dense(g),
        snapshot::SnapshotGraph::Compressed(c) => snapshot::SnapshotPayload::Compressed(c),
    };
    let mut bytes = Vec::new();
    if snapshot::write_snapshot(&payload, &mut bytes).is_err() {
        return false;
    }
    match write_bytes_atomic(&bytes, cache) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("[cldiam] warning: cannot write snapshot cache {cache:?} ({e})");
            false
        }
    }
}

/// Moves an unreadable cache aside as `<cache>.corrupt` so the bad bytes
/// stay available for inspection while the path is freed for a clean
/// regeneration. Returns the quarantine path when the rename landed.
fn quarantine_cache(cache: &Path) -> Option<PathBuf> {
    let mut name = cache.as_os_str().to_os_string();
    name.push(".corrupt");
    let target = PathBuf::from(name);
    std::fs::rename(cache, &target).ok()?;
    Some(target)
}

/// Loads `path` through its binary snapshot: if a fresh snapshot exists
/// (newer than the text file), it is read instead of the text; otherwise the
/// text is parsed and the snapshot (re)written for the next run. Returns the
/// graph and `true` when the snapshot was used.
///
/// Robust against format drift: a cache written by an older format version
/// (or any unreadable/corrupt cache) is transparently regenerated from the
/// text source — and a still-valid v1 cache is upgraded to v2 in place.
pub fn load_graph_cached<P: AsRef<Path>>(path: P) -> Result<(Graph, bool), IoError> {
    load_graph_cached_with(path, &CacheOptions::default())
        .map(|(graph, cached)| (graph.into_dense(), cached))
}

/// [`load_graph_cached`] with explicit [`CacheOptions`]: the cache can hold a
/// compressed payload, be served zero-copy via mmap, and is rewritten
/// whenever its tier or shard count does not match the request (converting
/// in memory — the text is only re-parsed when the cache is stale or
/// unreadable).
pub fn load_graph_cached_with<P: AsRef<Path>>(
    path: P,
    options: &CacheOptions,
) -> Result<(snapshot::SnapshotGraph, bool), IoError> {
    let path = path.as_ref();
    let cache = snapshot_path(path);
    let fresh = match (std::fs::metadata(&cache), std::fs::metadata(path)) {
        (Ok(c), Ok(t)) => match (c.modified(), t.modified()) {
            (Ok(cm), Ok(tm)) => cm >= tm,
            _ => false,
        },
        _ => false,
    };
    // A stale, corrupt or future-versioned snapshot falls through to a text
    // re-parse; corrupt files are additionally quarantined so the bad bytes
    // never shadow the regenerated cache.
    if fresh {
        match snapshot::read_snapshot_file(&cache, &options.snapshot_options()) {
            Ok(snap) => {
                if snap.version == snapshot::FORMAT_VERSION_2 && options.matches(&snap.graph) {
                    return Ok((snap.graph, true));
                }
                // Tier/shard/version mismatch: convert in memory, upgrade the
                // cache, and (on the mmap path) re-read so the result is
                // actually served from the new mapping.
                let converted = options.payload_of(snap.graph.into_dense());
                if try_write_cache(&converted, &cache) && options.mmap {
                    if let Ok(snap) =
                        snapshot::read_snapshot_file(&cache, &options.snapshot_options())
                    {
                        return Ok((snap.graph, true));
                    }
                }
                return Ok((converted, true));
            }
            Err(IoError::Format(message)) | Err(IoError::Parse { message, .. }) => {
                // Corrupt or truncated content (torn write, bit rot).
                let note = match quarantine_cache(&cache) {
                    Some(q) => format!("quarantined to {q:?}"),
                    None => "left in place".to_string(),
                };
                eprintln!(
                    "[cldiam] warning: snapshot cache {cache:?} is corrupt ({message}); \
                     {note}, re-parsing {path:?}"
                );
            }
            Err(IoError::Io(e)) => {
                // An I/O failure reading a cache that statted fine: the
                // contents may be good, so warn without quarantining.
                eprintln!(
                    "[cldiam] warning: cannot read snapshot cache {cache:?} ({e}); \
                     re-parsing {path:?}"
                );
            }
        }
    }
    let bytes = read_file_bytes(path, "cache::regen")?;
    if detect_format(path, &bytes[..bytes.len().min(4096)]) == FileFormat::Binary {
        // The input already is a snapshot; writing a `.cldg.cldg` copy next
        // to it would only duplicate it. Honour the requested tier in memory.
        let snap = snapshot::parse_snapshot_bytes(&bytes)?;
        let graph = if options.matches(&snap.graph) {
            snap.graph
        } else {
            options.payload_of(snap.graph.into_dense())
        };
        return Ok((graph, true));
    }
    let graph = load_graph_bytes(path, &bytes)?;
    let payload = options.payload_of(graph);
    if try_write_cache(&payload, &cache) && options.mmap {
        if let Ok(snap) = snapshot::read_snapshot_file(&cache, &options.snapshot_options()) {
            return Ok((snap.graph, false));
        }
    }
    Ok((payload, false))
}

/// One newline-aligned slice of the input plus the number of lines it spans.
struct Chunk<'a> {
    bytes: &'a [u8],
    lines: usize,
}

/// Splits `data` into at most `target` newline-aligned chunks. Chunk
/// boundaries always sit immediately after a `\n`, so no line straddles two
/// chunks; concatenating the chunks in order reproduces `data` exactly.
fn newline_aligned_chunks(data: &[u8], target: usize) -> Vec<Chunk<'_>> {
    let target = target.max(1);
    let mut chunks = Vec::with_capacity(target);
    let mut start = 0usize;
    for i in 1..=target {
        if start >= data.len() {
            break;
        }
        let mut end =
            if i == target { data.len() } else { ((data.len() * i) / target).max(start + 1) };
        // Advance to just past the next newline so the boundary is aligned.
        while end < data.len() && data[end - 1] != b'\n' {
            end += 1;
        }
        let bytes = &data[start..end];
        chunks.push(Chunk { bytes, lines: bytes.iter().filter(|&&b| b == b'\n').count() });
        start = end;
    }
    chunks
}

/// Parses the lines of `data` in parallel with `parse_line`, which receives
/// the 1-based absolute line number and the trimmed line text, and returns
/// `Ok(Some(item))` for payload lines, `Ok(None)` for blank/comment lines,
/// and `Err(message)` for malformed ones.
///
/// The items of each chunk are concatenated in chunk order, so the output is
/// identical to a sequential line-by-line parse; on error, the earliest
/// offending line in file order is reported regardless of the chunking or
/// the thread count. `first_line` is the absolute 1-based number of the
/// first line of `data` (text formats with a header pass the slice after the
/// header here).
pub(crate) fn parse_lines_parallel<T: Send>(
    data: &[u8],
    first_line: usize,
    parse_line: impl Fn(usize, &str) -> Result<Option<T>, String> + Sync,
) -> Result<Vec<T>, IoError> {
    let target = rayon::current_num_threads().max(1) * 4;
    let chunks = newline_aligned_chunks(data, target);
    // Starting line number of every chunk: prefix sums of the line counts.
    let mut chunk_first_line = Vec::with_capacity(chunks.len());
    let mut acc = first_line;
    for chunk in &chunks {
        chunk_first_line.push(acc);
        acc += chunk.lines;
    }
    let results: Vec<Result<Vec<T>, IoError>> = chunks
        .par_iter()
        .zip(chunk_first_line.par_iter())
        .map(|(chunk, &base)| parse_chunk(chunk.bytes, base, &parse_line))
        .collect();
    let mut items = Vec::new();
    for result in results {
        items.extend(result?);
    }
    Ok(items)
}

fn parse_chunk<T>(
    bytes: &[u8],
    first_line: usize,
    parse_line: &(impl Fn(usize, &str) -> Result<Option<T>, String> + Sync),
) -> Result<Vec<T>, IoError> {
    let mut items = Vec::new();
    for (offset, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let line_number = first_line + offset;
        let line = std::str::from_utf8(raw.trim_ascii()).map_err(|_| IoError::Parse {
            line_number,
            message: "line is not valid UTF-8".to_string(),
        })?;
        match parse_line(line_number, line) {
            Ok(Some(item)) => items.push(item),
            Ok(None) => {}
            Err(message) => return Err(IoError::Parse { line_number, message }),
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_newline_aligned_and_cover_input() {
        let data = b"one\ntwo\nthree\nfour\nfive";
        for target in 1..8 {
            let chunks = newline_aligned_chunks(data, target);
            let joined: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.iter().copied()).collect();
            assert_eq!(joined, data, "target {target}");
            for chunk in &chunks[..chunks.len().saturating_sub(1)] {
                assert_eq!(*chunk.bytes.last().unwrap(), b'\n', "target {target}");
            }
        }
    }

    #[test]
    fn parallel_line_parse_is_order_preserving() {
        let data = b"1\n2\n# skip\n3\n4\n";
        let items = parse_lines_parallel(data, 1, |_, line| {
            if line.is_empty() || line.starts_with('#') {
                Ok(None)
            } else {
                line.parse::<u32>().map(Some).map_err(|e| e.to_string())
            }
        })
        .unwrap();
        assert_eq!(items, vec![1, 2, 3, 4]);
    }

    #[test]
    fn earliest_error_line_wins() {
        let mut data = String::new();
        for i in 0..500 {
            data.push_str(&format!("{i}\n"));
        }
        data.insert_str(0, "bad\n");
        data.push_str("also bad\n");
        let err = parse_lines_parallel(data.as_bytes(), 1, |_, line| {
            if line.is_empty() {
                Ok(None)
            } else {
                line.parse::<u32>().map(Some).map_err(|e| e.to_string())
            }
        })
        .unwrap_err();
        match err {
            IoError::Parse { line_number, .. } => assert_eq!(line_number, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn detects_formats_from_content_and_extension() {
        let p = Path::new("x.gr");
        assert_eq!(detect_format(p, b"c comment\np sp 3 2\na 1 2 7\n"), FileFormat::Dimacs);
        assert_eq!(detect_format(Path::new("x.txt"), b"# snap\n0\t1\n"), FileFormat::EdgeList);
        assert_eq!(detect_format(p, b"c only comments\n"), FileFormat::Dimacs);
        assert_eq!(detect_format(Path::new("x.cldg"), b""), FileFormat::Binary);
        let mut magic = binary::MAGIC.to_vec();
        magic.extend_from_slice(&[0; 8]);
        assert_eq!(detect_format(Path::new("anything"), &magic), FileFormat::Binary);
        assert_eq!(detect_format(Path::new("plain.txt"), b"0 1 5\n"), FileFormat::EdgeList);
    }

    #[test]
    fn snapshot_path_appends_extension() {
        assert_eq!(snapshot_path(Path::new("a/roads.gr")), PathBuf::from("a/roads.gr.cldg"));
    }

    #[test]
    fn directed_load_of_binary_snapshot_is_refused() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        let mut buf = Vec::new();
        binary::write_binary(&g, &mut buf).unwrap();
        let err =
            load_graph_bytes_as(Path::new("x.cldg"), &buf, EdgeDirection::Directed).unwrap_err();
        assert!(matches!(err, IoError::Format(m) if m.contains("undirected")));
        let ok = load_graph_bytes_as(Path::new("x.cldg"), &buf, EdgeDirection::Symmetrize).unwrap();
        assert_eq!(ok.graph, g);
        assert_eq!(ok.asymmetric_arcs, 0);
    }

    #[test]
    fn load_graph_as_matches_load_graph_on_symmetrize() {
        let text = b"0 1 5\n1 2 3\n";
        let path = Path::new("x.txt");
        let plain = load_graph_bytes(path, text).unwrap();
        let loaded = load_graph_bytes_as(path, text, EdgeDirection::Symmetrize).unwrap();
        assert_eq!(loaded.graph, plain);
        assert_eq!(loaded.asymmetric_arcs, 2);
    }
}
