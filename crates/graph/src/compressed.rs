//! The compressed adjacency tier: delta-varint CSR blocks.
//!
//! Each node's sorted neighbor list is stored as one byte block: the first
//! target as a zigzag varint of `v₀ − u` (neighbors are usually near their
//! source on renumbered meshes and road networks), every further target as a
//! varint of `gap − 1` (gaps are strictly positive in a sorted, duplicate-free
//! list), and weights coded next to their target by one of three schemes
//! chosen per graph at compression time:
//!
//! * **constant** — one distinct weight in the whole graph: zero bytes/arc;
//! * **palette** — ≤ 256 distinct weights: one byte indexing a sorted table;
//! * **varint** — the general case: LEB128 of the raw weight.
//!
//! Blocks are length-prefixed and grouped [`GROUP`] nodes per *base*: a
//! `u32` array holds the blob offset of every [`GROUP`]-th block, so
//! `neighbors(u)` is one base lookup plus at most `GROUP - 1` length-varint
//! skips — no per-node 8-byte offset.
//! Node ranges are cut into `k` shards at construction; each shard owns its
//! own bases + blob pair (and its own section in a `.cldg` v2 snapshot), the
//! scaffolding for a later shard-at-a-time streaming mode. Today every shard
//! is resident (or mapped) and results are bit-identical to the dense tier.
//!
//! Weight statistics (`min/max/avg/total`) are recorded at compression time
//! from the dense source so that `Δ` suggestion and bucket-ring sizing in the
//! engines see *exactly* the dense values — determinism across tiers depends
//! on it.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::io::varint::{encode_u64, zigzag_decode, zigzag_encode};
use crate::mmap::Mmap;
use crate::source::NeighborSource;
use crate::storage::Storage;
use crate::weight::{Dist, NodeId, Weight};
use crate::Graph;

/// Nodes per base entry: one `u32` blob offset every `GROUP` blocks.
///
/// `neighbors(u)` pays `u % GROUP` length-prefix skips, so the group size
/// trades base-array bytes (4 / `GROUP` per node) against random-access
/// decode latency; 8 keeps Δ-stepping on compressed R-MAT within 1.5x of the
/// dense tier (see the `compressed_traversal` bench) at 0.5 B/node of bases.
pub(crate) const GROUP: usize = 8;

/// Maximum palette size (one-byte indices).
pub(crate) const MAX_PALETTE: usize = 256;

/// How arc weights are coded inside the neighbor blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WeightCoding {
    /// Every edge has this weight; blocks store no weight bytes at all.
    Constant(Weight),
    /// At most [`MAX_PALETTE`] distinct weights; blocks store one-byte
    /// indices into this sorted table.
    Palette(Vec<Weight>),
    /// Fixed-width little-endian weights (1..=4 bytes, enough for the
    /// maximum weight): branch-free decode for high-entropy weights.
    Fixed(u8),
    /// Raw LEB128 weights.
    Varint,
}

impl WeightCoding {
    /// Picks the densest applicable coding for a weight multiset.
    fn choose(weights: &[Weight]) -> WeightCoding {
        let mut distinct = BTreeSet::new();
        for &w in weights {
            distinct.insert(w);
            if distinct.len() > MAX_PALETTE {
                return WeightCoding::beyond_palette(weights);
            }
        }
        match distinct.len() {
            1 => WeightCoding::Constant(*distinct.iter().next().unwrap()),
            0 => WeightCoding::Constant(1),
            _ => WeightCoding::Palette(distinct.into_iter().collect()),
        }
    }

    /// High-entropy fallback (more than [`MAX_PALETTE`] distinct weights):
    /// fixed-width bytes when they cost at most ~5% over LEB128 — uniform
    /// fixed-point weights land here, and Δ-stepping's relax loop decodes
    /// them without per-byte continuation branches — raw varints when the
    /// distribution is skewed enough that LEB128 is genuinely smaller.
    fn beyond_palette(weights: &[Weight]) -> WeightCoding {
        let width = weight_width(weights.iter().copied().max().unwrap_or(0));
        let fixed_total = weights.len() * usize::from(width);
        let varint_total: usize = weights.iter().map(|&w| varint_len(u64::from(w))).sum();
        if fixed_total <= varint_total + varint_total / 20 {
            WeightCoding::Fixed(width)
        } else {
            WeightCoding::Varint
        }
    }
}

/// Little-endian bytes needed to hold `w` (1..=4).
pub(crate) fn weight_width(w: Weight) -> u8 {
    (32 - w.leading_zeros()).max(1).div_ceil(8) as u8
}

/// Encoded LEB128 length of `v` (1..=10).
fn varint_len(v: u64) -> usize {
    ((64 - v.max(1).leading_zeros()).div_ceil(7)) as usize
}

/// One node-range shard: a base array (`u32` blob offset of every
/// [`GROUP`]-th block) plus the concatenated length-prefixed blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Shard {
    pub(crate) bases: Storage<u32>,
    pub(crate) blob: Storage<u8>,
}

/// An immutable undirected weighted graph stored as delta-varint CSR blocks.
///
/// Serves the exact same node/arc set as the [`Graph`] it was compressed
/// from, through the same [`NeighborSource`] interface, at a fraction of the
/// bytes. Construction goes through [`CompressedGraph::from_graph`] (or the
/// `.cldg` v2 loader); the directed tier is not supported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedGraph {
    num_nodes: usize,
    num_arcs: usize,
    /// Weight statistics of the dense source, preserved exactly.
    min_weight: Weight,
    max_weight: Weight,
    /// Sum of weights over stored arcs (each undirected edge counted twice).
    weight_sum: Dist,
    coding: WeightCoding,
    /// Nodes per shard (the last shard may be shorter); ≥ 1.
    nodes_per_shard: usize,
    shards: Vec<Shard>,
}

impl CompressedGraph {
    /// Compresses an undirected dense graph into `num_shards` node-range
    /// shards (clamped to `1..=num_nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `graph` is directed, or if a shard blob would exceed
    /// `u32::MAX` bytes (use more shards).
    pub fn from_graph(graph: &Graph, num_shards: usize) -> CompressedGraph {
        assert!(!graph.is_directed(), "the compressed tier is undirected-only");
        let n = graph.num_nodes();
        let coding = WeightCoding::choose(graph.weights());
        let nodes_per_shard = shard_size(n, num_shards);
        let mut shards = Vec::new();
        let mut lo = 0usize;
        while lo < n || (n == 0 && shards.is_empty()) {
            let hi = (lo + nodes_per_shard).min(n);
            shards.push(encode_shard(graph, &coding, lo, hi));
            if hi == lo {
                break;
            }
            lo = hi;
        }
        let weight_sum: Dist = graph.weights().iter().map(|&w| Dist::from(w)).sum();
        CompressedGraph {
            num_nodes: n,
            num_arcs: graph.num_arcs(),
            min_weight: graph.min_weight().unwrap_or(0),
            max_weight: graph.max_weight().unwrap_or(0),
            weight_sum,
            coding,
            nodes_per_shard,
            shards,
        }
    }

    /// Reassembles a compressed graph from snapshot parts. Trusted input:
    /// the shards must have been produced by [`CompressedGraph::from_graph`]
    /// (directly or via a snapshot written from it).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        num_nodes: usize,
        num_arcs: usize,
        min_weight: Weight,
        max_weight: Weight,
        weight_sum: Dist,
        coding: WeightCoding,
        nodes_per_shard: usize,
        shards: Vec<Shard>,
    ) -> CompressedGraph {
        assert!(nodes_per_shard >= 1);
        assert_eq!(shards.len(), shard_count(num_nodes, nodes_per_shard));
        CompressedGraph {
            num_nodes,
            num_arcs,
            min_weight,
            max_weight,
            weight_sum,
            coding,
            nodes_per_shard,
            shards,
        }
    }

    /// Decompresses back into a dense [`Graph`], re-validating every CSR
    /// invariant on the way (this is the untrusted-input integrity check of
    /// the buffered snapshot loader).
    pub fn to_graph(&self) -> Graph {
        let mut offsets = Vec::with_capacity(self.num_nodes + 1);
        let mut targets = Vec::with_capacity(self.num_arcs);
        let mut weights = Vec::with_capacity(self.num_arcs);
        offsets.push(0);
        for u in 0..self.num_nodes as NodeId {
            for (v, w) in self.neighbors(u) {
                targets.push(v);
                weights.push(w);
            }
            offsets.push(targets.len());
        }
        Graph::from_csr(offsets, targets, weights)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored arcs (twice the undirected edge count).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs / 2
    }

    /// Number of node-range shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards [`CompressedGraph::from_graph`] produces for `n`
    /// nodes and a request of `k` shards (the request is a ceiling: uniform
    /// node ranges may need fewer).
    pub fn from_graph_shard_count(n: usize, k: usize) -> usize {
        shard_count(n, shard_size(n, k))
    }

    /// Nodes per shard (the last shard may hold fewer).
    #[inline]
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// Decoded neighbor block of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> CompressedNeighbors<'_> {
        let ui = u as usize;
        let shard = &self.shards[ui / self.nodes_per_shard];
        let local = ui % self.nodes_per_shard;
        let blob: &[u8] = &shard.blob;
        let mut rest = &blob[shard.bases[local / GROUP] as usize..];
        // Skip the preceding blocks of the group: read each length prefix
        // and jump over the payload.
        for _ in 0..local % GROUP {
            let len = read_varint(&mut rest) as usize;
            rest = &rest[len..];
        }
        let len = read_varint(&mut rest) as usize;
        let weights = match &self.coding {
            WeightCoding::Constant(w) => WeightRead::Constant(*w),
            WeightCoding::Palette(table) => WeightRead::Palette(table),
            WeightCoding::Fixed(width) => WeightRead::Fixed(*width),
            WeightCoding::Varint => WeightRead::Varint,
        };
        CompressedNeighbors { rest: &rest[..len], u, prev: 0, first: true, weights }
    }

    /// Compressed payload bytes (bases + blobs + palette): the number that
    /// goes up against [`Graph::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        let palette = match &self.coding {
            WeightCoding::Palette(table) => table.len() * std::mem::size_of::<Weight>(),
            _ => 0,
        };
        palette
            + self
                .shards
                .iter()
                .map(|s| s.bases.len() * std::mem::size_of::<u32>() + s.blob.len())
                .sum::<usize>()
    }

    /// Name of the weight coding in use (for stats lines and reports).
    pub fn coding_name(&self) -> &'static str {
        match &self.coding {
            WeightCoding::Constant(_) => "constant",
            WeightCoding::Palette(_) => "palette",
            WeightCoding::Fixed(_) => "fixed",
            WeightCoding::Varint => "varint",
        }
    }

    /// Snapshot-writer accessors.
    pub(crate) fn coding(&self) -> &WeightCoding {
        &self.coding
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    pub(crate) fn min_weight_raw(&self) -> Weight {
        self.min_weight
    }

    pub(crate) fn max_weight_raw(&self) -> Weight {
        self.max_weight
    }

    pub(crate) fn weight_sum(&self) -> Dist {
        self.weight_sum
    }
}

/// Shard length for `n` nodes in (at most) `k` shards.
fn shard_size(n: usize, k: usize) -> usize {
    let k = k.clamp(1, n.max(1));
    n.div_ceil(k).max(1)
}

/// Number of shards produced by [`shard_size`]-sized cuts.
fn shard_count(n: usize, nodes_per_shard: usize) -> usize {
    n.div_ceil(nodes_per_shard).max(1)
}

/// Encodes the blocks of nodes `lo..hi` into one shard.
fn encode_shard(graph: &Graph, coding: &WeightCoding, lo: usize, hi: usize) -> Shard {
    let mut bases = Vec::with_capacity((hi - lo).div_ceil(GROUP).max(1));
    let mut blob: Vec<u8> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    for (i, u) in (lo..hi).enumerate() {
        if i % GROUP == 0 {
            let base = u32::try_from(blob.len()).expect("shard blob exceeds u32 range");
            bases.push(base);
        }
        payload.clear();
        let mut prev: Option<NodeId> = None;
        for (v, w) in graph.neighbors(u as NodeId) {
            match prev {
                None => encode_u64(&mut payload, zigzag_encode(i64::from(v) - u as i64)),
                Some(p) => {
                    debug_assert!(v > p, "adjacency must be strictly increasing");
                    encode_u64(&mut payload, u64::from(v - p - 1));
                }
            }
            prev = Some(v);
            match coding {
                WeightCoding::Constant(c) => debug_assert_eq!(w, *c),
                WeightCoding::Palette(table) => {
                    let idx = table.binary_search(&w).expect("weight missing from palette");
                    payload.push(idx as u8);
                }
                WeightCoding::Fixed(width) => {
                    payload.extend_from_slice(&w.to_le_bytes()[..usize::from(*width)]);
                }
                WeightCoding::Varint => encode_u64(&mut payload, u64::from(w)),
            }
        }
        encode_u64(&mut blob, payload.len() as u64);
        blob.extend_from_slice(&payload);
    }
    if bases.is_empty() {
        bases.push(0);
    }
    u32::try_from(blob.len()).expect("shard blob exceeds u32 range");
    Shard { bases: bases.into(), blob: blob.into() }
}

/// How the neighbor iterator reads weights.
#[derive(Clone, Copy, Debug)]
enum WeightRead<'a> {
    Constant(Weight),
    Palette(&'a [Weight]),
    Fixed(u8),
    Varint,
}

/// Consumes one LEB128 varint from the front of `rest`, single-byte values
/// (the overwhelmingly common case for gaps and length prefixes) on the
/// no-loop fast path. Panics on a truncated stream, never reads out of
/// bounds.
#[inline(always)]
fn read_varint(rest: &mut &[u8]) -> u64 {
    let (&byte, tail) = rest.split_first().expect("truncated varint");
    *rest = tail;
    if byte & 0x80 == 0 {
        return u64::from(byte);
    }
    read_varint_cont(rest, byte)
}

/// Multi-byte continuation of [`read_varint`].
#[inline]
fn read_varint_cont(rest: &mut &[u8], first: u8) -> u64 {
    let mut value = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let (&byte, tail) = rest.split_first().expect("truncated varint");
        *rest = tail;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

/// Streaming decoder of one node's neighbor block.
#[derive(Clone, Debug)]
pub struct CompressedNeighbors<'a> {
    /// Remaining payload of this node's block.
    rest: &'a [u8],
    u: NodeId,
    prev: NodeId,
    first: bool,
    weights: WeightRead<'a>,
}

/// Consumes a `WIDTH`-byte little-endian weight from the front of `rest`.
#[inline(always)]
fn read_fixed<const WIDTH: usize>(rest: &mut &[u8]) -> Weight {
    let (chunk, tail) = rest.split_first_chunk::<WIDTH>().expect("truncated fixed-width weight");
    *rest = tail;
    let mut buf = [0u8; 4];
    buf[..WIDTH].copy_from_slice(chunk);
    Weight::from_le_bytes(buf)
}

impl<'a> CompressedNeighbors<'a> {
    /// Shared arc loop with the weight reader monomorphized in: the coding
    /// dispatch happens once per block (in [`Iterator::fold`]), not once per
    /// arc, which is what keeps internal iteration — the relax loops — close
    /// to dense-slice speed.
    #[inline]
    fn fold_with<B, F, W>(mut self, init: B, mut f: F, mut read_weight: W) -> B
    where
        F: FnMut(B, (NodeId, Weight)) -> B,
        W: FnMut(&mut &'a [u8]) -> Weight,
    {
        let mut acc = init;
        while !self.rest.is_empty() {
            let raw = read_varint(&mut self.rest);
            let v = if self.first {
                self.first = false;
                (i64::from(self.u) + zigzag_decode(raw)) as NodeId
            } else {
                self.prev + 1 + raw as NodeId
            };
            self.prev = v;
            let w = read_weight(&mut self.rest);
            acc = f(acc, (v, w));
        }
        acc
    }
}

impl<'a> Iterator for CompressedNeighbors<'a> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, Weight)> {
        if self.rest.is_empty() {
            return None;
        }
        let raw = read_varint(&mut self.rest);
        let v = if self.first {
            self.first = false;
            (i64::from(self.u) + zigzag_decode(raw)) as NodeId
        } else {
            self.prev + 1 + raw as NodeId
        };
        self.prev = v;
        let w = match self.weights {
            WeightRead::Constant(w) => w,
            WeightRead::Palette(table) => {
                let (&idx, tail) = self.rest.split_first().expect("truncated palette index");
                self.rest = tail;
                table[idx as usize]
            }
            WeightRead::Fixed(width) => match width {
                1 => read_fixed::<1>(&mut self.rest),
                2 => read_fixed::<2>(&mut self.rest),
                3 => read_fixed::<3>(&mut self.rest),
                _ => read_fixed::<4>(&mut self.rest),
            },
            WeightRead::Varint => read_varint(&mut self.rest) as Weight,
        };
        Some((v, w))
    }

    /// Internal iteration (`for_each`, `sum`, collectors) dispatches on the
    /// weight coding once per block and then runs one tight loop per coding.
    fn fold<B, F>(self, init: B, f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        match self.weights {
            WeightRead::Constant(w) => self.fold_with(init, f, move |_| w),
            WeightRead::Palette(table) => self.fold_with(init, f, move |rest| {
                let (&idx, tail) = rest.split_first().expect("truncated palette index");
                *rest = tail;
                table[idx as usize]
            }),
            WeightRead::Fixed(width) => match width {
                1 => self.fold_with(init, f, read_fixed::<1>),
                2 => self.fold_with(init, f, read_fixed::<2>),
                3 => self.fold_with(init, f, read_fixed::<3>),
                _ => self.fold_with(init, f, read_fixed::<4>),
            },
            WeightRead::Varint => self.fold_with(init, f, |rest| read_varint(rest) as Weight),
        }
    }
}

impl NeighborSource for CompressedGraph {
    type Neighbors<'a> = CompressedNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> CompressedNeighbors<'_> {
        CompressedGraph::neighbors(self, u)
    }

    fn min_weight(&self) -> Option<Weight> {
        (self.num_arcs > 0).then_some(self.min_weight)
    }

    fn max_weight(&self) -> Option<Weight> {
        (self.num_arcs > 0).then_some(self.max_weight)
    }

    fn avg_weight(&self) -> Option<Weight> {
        if self.num_arcs == 0 {
            return None;
        }
        Some((self.weight_sum / self.num_arcs as Dist).max(1) as Weight)
    }

    fn total_weight(&self) -> Dist {
        self.weight_sum / 2
    }

    fn memory_bytes(&self) -> usize {
        CompressedGraph::memory_bytes(self)
    }
}

/// Maps every shard payload of a snapshot through [`Arc<Mmap>`]-backed
/// storage — used by the v2 loader (the `pub(crate)` seam keeping mmap
/// details out of this module's encoding logic).
pub(crate) fn mapped_shard(
    map: &Arc<Mmap>,
    bases_offset: usize,
    bases_len: usize,
    blob_offset: usize,
    blob_len: usize,
) -> Option<Shard> {
    let bases = Storage::mapped(Arc::clone(map), bases_offset, bases_len)?;
    let blob = Storage::mapped(Arc::clone(map), blob_offset, blob_len)?;
    Some(Shard { bases, blob })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn assert_equivalent(graph: &Graph, compressed: &CompressedGraph) {
        assert_eq!(compressed.num_nodes(), graph.num_nodes());
        assert_eq!(compressed.num_arcs(), graph.num_arcs());
        assert_eq!(compressed.num_edges(), graph.num_edges());
        for u in graph.nodes() {
            let dense: Vec<_> = graph.neighbors(u).collect();
            let packed: Vec<_> = compressed.neighbors(u).collect();
            assert_eq!(packed, dense, "adjacency of node {u} differs");
            assert_eq!(NeighborSource::degree(compressed, u), graph.degree(u));
        }
        assert_eq!(NeighborSource::min_weight(compressed), graph.min_weight());
        assert_eq!(NeighborSource::max_weight(compressed), graph.max_weight());
        assert_eq!(NeighborSource::avg_weight(compressed), graph.avg_weight());
        assert_eq!(NeighborSource::total_weight(compressed), graph.total_weight());
        assert_eq!(&compressed.to_graph(), graph);
    }

    fn ring(n: usize, weight_of: impl Fn(usize) -> Weight) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u as NodeId, ((u + 1) % n) as NodeId, weight_of(u));
        }
        // A long chord exercises large first-neighbor deltas.
        b.add_edge(0, (n / 2) as NodeId, weight_of(0));
        b.build()
    }

    #[test]
    fn constant_weight_graphs_store_no_weight_bytes() {
        let g = ring(40, |_| 7);
        let c = CompressedGraph::from_graph(&g, 1);
        assert!(matches!(c.coding(), WeightCoding::Constant(7)));
        assert_equivalent(&g, &c);
        assert!(c.memory_bytes() < g.memory_bytes() / 3);
    }

    #[test]
    fn small_weight_sets_use_a_palette() {
        let g = ring(40, |u| 10 + (u % 5) as Weight);
        let c = CompressedGraph::from_graph(&g, 3);
        assert!(matches!(c.coding(), WeightCoding::Palette(t) if t.len() == 5));
        assert_equivalent(&g, &c);
    }

    #[test]
    fn skewed_wide_weight_ranges_fall_back_to_varints() {
        // > MAX_PALETTE distinct values, almost all of them one or two
        // LEB128 bytes, with outliers forcing a 4-byte fixed width: varints
        // are genuinely smaller here.
        let g = ring(300, |u| if u % 97 == 0 { 50_000_000 } else { 1 + u as Weight });
        let c = CompressedGraph::from_graph(&g, 4);
        assert!(matches!(c.coding(), WeightCoding::Varint));
        assert_equivalent(&g, &c);
    }

    #[test]
    fn high_entropy_weights_use_fixed_width_bytes() {
        // > MAX_PALETTE distinct three-varint-byte weights: the fixed coding
        // matches LEB128 byte for byte and decodes branch-free.
        let g = ring(300, |u| 500_000 + u as Weight);
        let c = CompressedGraph::from_graph(&g, 4);
        assert!(matches!(c.coding(), WeightCoding::Fixed(3)));
        assert_equivalent(&g, &c);
    }

    #[test]
    fn sharding_never_changes_the_adjacency() {
        let g = ring(97, |u| 1 + (u % 9) as Weight);
        for shards in [1, 2, 3, 7, 16, 97, 1000] {
            let c = CompressedGraph::from_graph(&g, shards);
            assert!(c.num_shards() <= shards.max(1));
            assert_equivalent(&g, &c);
        }
    }

    #[test]
    fn empty_and_edgeless_graphs_compress() {
        let empty = Graph::empty(0);
        let c = CompressedGraph::from_graph(&empty, 4);
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(&c.to_graph(), &empty);

        let isolated = Graph::empty(5);
        let c = CompressedGraph::from_graph(&isolated, 2);
        assert_equivalent(&isolated, &c);
        assert_eq!(NeighborSource::min_weight(&c), None);
        assert_eq!(NeighborSource::avg_weight(&c), None);
    }

    #[test]
    fn group_boundaries_are_exact() {
        // Degrees straddling the 16-node group boundary: stars at nodes
        // 15/16/17 with varying degrees.
        let mut b = GraphBuilder::new(64);
        for u in 0..63u32 {
            b.add_edge(u, u + 1, 3);
        }
        for v in [1u32, 30, 40, 50, 60] {
            b.add_edge(15, v, 5);
            b.add_edge(17, v, 9);
        }
        let g = b.build();
        let c = CompressedGraph::from_graph(&g, 2);
        assert_equivalent(&g, &c);
    }
}
