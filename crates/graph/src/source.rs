//! The [`NeighborSource`] abstraction: one traversal interface served by
//! both storage tiers.
//!
//! Every undirected engine in the workspace — BFS, connected components,
//! Dijkstra, Δ-stepping, Δ-growing, the bounds engine — is generic over this
//! trait, so the dense [`Graph`](crate::Graph) (slice zips) and the
//! [`CompressedGraph`](crate::CompressedGraph) (varint block decoding) run
//! the *same monomorphized* inner loops: the choice of representation is a
//! compile-time parameter, not a branch in the relax loop.
//!
//! The trait deliberately mirrors the subset of `Graph`'s inherent API those
//! engines use. Weight statistics are part of the contract because engine
//! behaviour depends on them (`suggest_delta`, bucket-ring sizing): a
//! representation must report the exact same values as the dense graph it
//! encodes or determinism across tiers breaks.

use crate::weight::{Dist, NodeId, Weight};

/// A graph whose out-neighbors can be iterated per node.
///
/// Implementations must be cheap to query concurrently (`Sync`) — the
/// parallel engines fan node ranges out across threads.
pub trait NeighborSource: Sync {
    /// Iterator over `(target, weight)` pairs of one node's out-arcs, in
    /// strictly increasing target order.
    type Neighbors<'a>: Iterator<Item = (NodeId, Weight)> + 'a
    where
        Self: 'a;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of stored arcs (twice the edge count on undirected graphs).
    fn num_arcs(&self) -> usize;

    /// Neighbors of `u` with their edge weights, sorted by target id.
    fn neighbors(&self, u: NodeId) -> Self::Neighbors<'_>;

    /// Out-degree of `u`.
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).count()
    }

    /// Whether arcs are one-directional. The compressed tier is
    /// undirected-only, so the default is `false`.
    fn is_directed(&self) -> bool {
        false
    }

    /// Number of undirected edges (arcs on directed graphs).
    fn num_edges(&self) -> usize {
        if self.is_directed() {
            self.num_arcs()
        } else {
            self.num_arcs() / 2
        }
    }

    /// Whether the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// All node ids, in increasing order.
    fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Smallest edge weight, `None` on edgeless graphs.
    fn min_weight(&self) -> Option<Weight>;

    /// Largest edge weight, `None` on edgeless graphs.
    fn max_weight(&self) -> Option<Weight>;

    /// Mean edge weight rounded down (minimum 1), `None` on edgeless graphs.
    /// Must equal the dense graph's value exactly — `Δ` suggestion feeds off
    /// it.
    fn avg_weight(&self) -> Option<Weight>;

    /// Sum of all edge weights (each undirected edge counted once).
    fn total_weight(&self) -> Dist;

    /// Resident bytes of the adjacency payload, for reporting.
    fn memory_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> crate::Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n.saturating_sub(1) {
            b.add_edge(u as NodeId, (u + 1) as NodeId, (u + 1) as Weight);
        }
        b.build()
    }

    // Exercises the trait through a generic function, the way the engines do.
    fn arc_sum<G: NeighborSource>(graph: &G) -> (usize, u64) {
        let mut arcs = 0;
        let mut sum = 0u64;
        for u in graph.node_ids() {
            for (_, w) in graph.neighbors(u) {
                arcs += 1;
                sum += u64::from(w);
            }
        }
        (arcs, sum)
    }

    #[test]
    fn dense_graph_serves_the_trait() {
        let g = path_graph(5);
        let (arcs, sum) = arc_sum(&g);
        assert_eq!(arcs, g.num_arcs());
        assert_eq!(sum, 2 * g.total_weight());
        assert_eq!(NeighborSource::num_edges(&g), 4);
        assert_eq!(NeighborSource::degree(&g, 1), 2);
        assert!(!NeighborSource::is_directed(&g));
        assert_eq!(g.node_ids(), 0..5);
    }
}
