//! Backing storage for CSR and compressed-block arrays: an owned `Vec<T>` or
//! a typed window into a shared memory mapping.
//!
//! [`Storage`] is what lets the `.cldg` v2 mmap loader hand out a fully
//! functional [`Graph`](crate::Graph) whose `offsets/targets/weights` point
//! straight into the page cache: every consumer sees a `&[T]` and cannot
//! tell the tiers apart. The mapped variant holds an `Arc` on the mapping,
//! so clones are O(1) and the file stays mapped for as long as any array
//! refers into it.

// The crate denies unsafe; this module opts back in for the documented
// raw-slice reinterpretations below (every site carries a SAFETY note).
#![allow(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

use crate::mmap::Mmap;

/// A read-only `[T]` that is either heap-owned or a view into an [`Mmap`].
///
/// Only instantiated with plain little-endian-on-disk scalar types (`u8`,
/// `u32`, `usize`); the mapped constructor enforces alignment and bounds, so
/// the internal pointer cast is sound for any bit pattern of those types.
pub(crate) enum Storage<T: Copy> {
    Owned(Vec<T>),
    Mapped { map: Arc<Mmap>, byte_offset: usize, len: usize },
}

impl<T: Copy> Storage<T> {
    /// A typed window of `len` elements starting `byte_offset` bytes into
    /// the mapping. Fails (returns `None`) when the window overruns the file
    /// or is misaligned for `T` — callers translate that into a parse error.
    pub(crate) fn mapped(map: Arc<Mmap>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        let addr = map.as_slice().as_ptr() as usize + byte_offset;
        if !addr.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Storage::Mapped { map, byte_offset, len })
    }
}

impl<T: Copy> Deref for Storage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped { map, byte_offset, len } => {
                // Safety: the constructor proved the window lies inside the
                // mapping and is aligned for `T`; the `Arc` keeps the mapping
                // alive for the lifetime of `self`.
                unsafe {
                    std::slice::from_raw_parts(
                        map.as_slice().as_ptr().add(*byte_offset).cast::<T>(),
                        *len,
                    )
                }
            }
        }
    }
}

impl<T: Copy> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Self {
        Storage::Owned(v)
    }
}

impl<T: Copy> Clone for Storage<T> {
    fn clone(&self) -> Self {
        match self {
            Storage::Owned(v) => Storage::Owned(v.clone()),
            Storage::Mapped { map, byte_offset, len } => {
                Storage::Mapped { map: Arc::clone(map), byte_offset: *byte_offset, len: *len }
            }
        }
    }
}

/// `Debug` prints the logical slice, hiding the storage tier.
impl<T: Copy + std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self[..], f)
    }
}

/// Equality is by contents: a mapped array equals its owned copy.
impl<T: Copy + PartialEq> PartialEq for Storage<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Eq> Eq for Storage<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    fn mapped_file(contents: &[u8]) -> Arc<Mmap> {
        let path = std::env::temp_dir().join(format!("cldiam-storage-{}.bin", std::process::id()));
        File::create(&path).unwrap().write_all(contents).unwrap();
        let map = Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        std::fs::remove_file(&path).ok();
        map
    }

    #[test]
    fn owned_and_mapped_compare_equal() {
        let bytes: Vec<u8> = (1u8..=16).collect();
        let map = mapped_file(&bytes);
        let mapped: Storage<u32> = Storage::mapped(Arc::clone(&map), 0, 4).unwrap();
        let expected: Vec<u32> =
            bytes.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        let owned: Storage<u32> = Storage::Owned(expected);
        // Both tiers deref to the same logical contents (little-endian host).
        if cfg!(target_endian = "little") {
            assert_eq!(mapped, owned);
            assert_eq!(mapped.clone(), owned);
        }
        assert_eq!(mapped.len(), 4);
    }

    #[test]
    fn out_of_bounds_windows_are_rejected() {
        let map = mapped_file(&[0u8; 16]);
        assert!(Storage::<u32>::mapped(Arc::clone(&map), 0, 5).is_none());
        assert!(Storage::<u32>::mapped(Arc::clone(&map), 8, 3).is_none());
        assert!(Storage::<u8>::mapped(Arc::clone(&map), 16, 1).is_none());
        assert!(Storage::<u8>::mapped(map, 16, 0).is_some());
    }

    #[test]
    fn misaligned_windows_are_rejected() {
        let map = mapped_file(&[0u8; 16]);
        // The mapping is page-aligned, so offset 2 is misaligned for u32.
        assert!(Storage::<u32>::mapped(Arc::clone(&map), 2, 1).is_none());
        assert!(Storage::<u8>::mapped(map, 2, 1).is_some());
    }
}
