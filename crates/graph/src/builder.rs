//! Edge-list accumulator producing canonical CSR graphs.

use rayon::prelude::*;

use crate::csr::Graph;
use crate::weight::{NodeId, Weight};

/// Accumulates undirected weighted edges and produces a [`Graph`].
///
/// The builder enforces the invariants every algorithm in the workspace relies
/// on:
///
/// * self loops are dropped,
/// * parallel edges are collapsed keeping the *minimum* weight (a parallel
///   edge can never shorten a shortest path otherwise),
/// * the edge set is symmetrized (each edge stored in both endpoints'
///   adjacency lists),
/// * adjacency lists are sorted by target node.
///
/// Building is parallelized with rayon (sorting dominates) so that the large
/// synthetic benchmark graphs can be materialized quickly.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with (at least) `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new() }
    }

    /// Creates a builder with pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::with_capacity(edge_capacity) }
    }

    /// Number of nodes the built graph will have (grows automatically when an
    /// edge references a larger node id).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of raw (pre-deduplication) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self loops are silently ignored; zero weights are clamped to 1 so that
    /// the positivity invariant always holds.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if u == v {
            return;
        }
        let w = w.max(1);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.num_nodes = self.num_nodes.max(b as usize + 1);
        self.edges.push((a, b, w));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId, Weight)>>(&mut self, iter: I) {
        for (u, v, w) in iter {
            self.add_edge(u, v, w);
        }
    }

    /// Consumes the builder and produces the canonical CSR graph.
    ///
    /// The two super-linear stages — canonicalizing the undirected edge set
    /// and ordering every adjacency list — are both expressed as parallel
    /// sorts, so CSR construction scales with the thread pool instead of
    /// bottlenecking on a per-node sorting loop.
    pub fn build(mut self) -> Graph {
        let n = self.num_nodes;
        // Canonical order: by (u, v, w); keeping the first of each (u, v) run
        // keeps the minimum weight.
        self.edges.par_sort_unstable();
        self.edges.dedup_by_key(|e| (e.0, e.1));

        // Symmetrize into a directed half-edge array and sort it by
        // (source, target): one parallel sort yields every adjacency list
        // already in target order, replacing the sequential per-node sorts.
        let mut directed: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v, w) in &self.edges {
            directed.push((u, v, w));
            directed.push((v, u, w));
        }
        drop(self.edges);
        directed.par_sort_unstable();

        let mut degrees = vec![0usize; n];
        for &(u, _, _) in &directed {
            degrees[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = Vec::with_capacity(directed.len());
        let mut weights = Vec::with_capacity(directed.len());
        for &(_, v, w) in &directed {
            targets.push(v);
            weights.push(w);
        }
        Graph::from_csr(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 0, 3);
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 5);
        b.add_edge(0, 2, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn node_count_grows_with_edges() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 9, 2);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn adjacency_sorted_by_target() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        let neigh: Vec<_> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(neigh, vec![0, 1, 3, 4]);
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let edges = vec![(0, 1, 2), (1, 2, 3), (2, 3, 4)];
        let mut a = GraphBuilder::new(4);
        a.extend_edges(edges.iter().copied());
        let mut b = GraphBuilder::new(4);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
