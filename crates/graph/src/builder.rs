//! Edge-list accumulator producing canonical CSR graphs.

use rayon::prelude::*;

use crate::csr::Graph;
use crate::weight::{NodeId, Weight};

/// Accumulates weighted edges (undirected by default, directed via
/// [`GraphBuilder::new_directed`]) and produces a [`Graph`].
///
/// The builder enforces the invariants every algorithm in the workspace relies
/// on:
///
/// * self loops are dropped,
/// * parallel edges are collapsed keeping the *minimum* weight (a parallel
///   edge can never shorten a shortest path otherwise),
/// * in undirected mode the edge set is symmetrized (each edge stored in both
///   endpoints' adjacency lists); in directed mode every arc is kept as
///   given and a reverse CSR is derived,
/// * adjacency lists are sorted by target node.
///
/// Building is parallelized with rayon (sorting dominates) so that the large
/// synthetic benchmark graphs can be materialized quickly.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
    directed: bool,
}

impl GraphBuilder {
    /// Creates a builder for an undirected graph with (at least) `num_nodes`
    /// nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new(), directed: false }
    }

    /// Creates a builder for a *directed* graph: arcs added with
    /// [`GraphBuilder::add_arc`] are kept one-way, and [`GraphBuilder::build`]
    /// produces a graph with [`Graph::is_directed`] set.
    pub fn new_directed(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new(), directed: true }
    }

    /// Creates a builder with pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::with_capacity(edge_capacity), directed: false }
    }

    /// `true` if the builder produces a directed graph.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of nodes the built graph will have (grows automatically when an
    /// edge references a larger node id).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of raw (pre-deduplication) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `{u, v}` with weight `w` — both directions, even on a
    /// directed builder (a symmetric pair of arcs).
    ///
    /// Self loops are silently ignored; zero weights are clamped to 1 so that
    /// the positivity invariant always holds.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if self.directed {
            self.add_arc(u, v, w);
            self.add_arc(v, u, w);
            return;
        }
        if u == v {
            return;
        }
        let w = w.max(1);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.num_nodes = self.num_nodes.max(b as usize + 1);
        self.edges.push((a, b, w));
    }

    /// Adds the arc `u → v` with weight `w`. On an undirected builder this is
    /// the same as [`GraphBuilder::add_edge`] (the arc is symmetrized); on a
    /// directed builder the arc stays one-way.
    ///
    /// Self loops are silently ignored; zero weights are clamped to 1.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if !self.directed {
            self.add_edge(u, v, w);
            return;
        }
        if u == v {
            return;
        }
        let w = w.max(1);
        self.num_nodes = self.num_nodes.max(u.max(v) as usize + 1);
        self.edges.push((u, v, w));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId, Weight)>>(&mut self, iter: I) {
        for (u, v, w) in iter {
            self.add_edge(u, v, w);
        }
    }

    /// Consumes the builder and produces the canonical CSR graph.
    ///
    /// The two super-linear stages — canonicalizing the edge set and ordering
    /// every adjacency list — are both expressed as parallel sorts, so CSR
    /// construction scales with the thread pool instead of bottlenecking on a
    /// per-node sorting loop.
    pub fn build(mut self) -> Graph {
        if self.directed {
            return self.build_directed();
        }
        let n = self.num_nodes;
        // Canonical order: by (u, v, w); keeping the first of each (u, v) run
        // keeps the minimum weight.
        self.edges.par_sort_unstable();
        self.edges.dedup_by_key(|e| (e.0, e.1));

        // Symmetrize into a directed half-edge array and sort it by
        // (source, target): one parallel sort yields every adjacency list
        // already in target order, replacing the sequential per-node sorts.
        let mut directed: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v, w) in &self.edges {
            directed.push((u, v, w));
            directed.push((v, u, w));
        }
        drop(self.edges);
        directed.par_sort_unstable();

        let (offsets, targets, weights) = csr_arrays(n, &directed);
        Graph::from_csr(offsets, targets, weights)
    }

    /// Directed half of [`GraphBuilder::build`]: arcs are canonicalized by
    /// the same parallel sort (dedup keeps the minimum weight per `(u, v)`
    /// arc — `u → v` and `v → u` are distinct arcs) and the reverse CSR is
    /// derived inside [`Graph::from_directed_csr`].
    fn build_directed(mut self) -> Graph {
        let n = self.num_nodes;
        self.edges.par_sort_unstable();
        self.edges.dedup_by_key(|e| (e.0, e.1));
        let (offsets, targets, weights) = csr_arrays(n, &self.edges);
        Graph::from_directed_csr(offsets, targets, weights)
    }
}

/// Scatters a `(source, target, weight)` array sorted by `(source, target)`
/// into CSR offset/target/weight arrays.
fn csr_arrays(
    n: usize,
    arcs: &[(NodeId, NodeId, Weight)],
) -> (Vec<usize>, Vec<NodeId>, Vec<Weight>) {
    let mut degrees = vec![0usize; n];
    for &(u, _, _) in arcs {
        degrees[u as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for d in &degrees {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = Vec::with_capacity(arcs.len());
    let mut weights = Vec::with_capacity(arcs.len());
    for &(_, v, w) in arcs {
        targets.push(v);
        weights.push(w);
    }
    (offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 0, 3);
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 5);
        b.add_edge(0, 2, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn node_count_grows_with_edges() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 9, 2);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn adjacency_sorted_by_target() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        let neigh: Vec<_> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(neigh, vec![0, 1, 3, 4]);
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let edges = vec![(0, 1, 2), (1, 2, 3), (2, 3, 4)];
        let mut a = GraphBuilder::new(4);
        a.extend_edges(edges.iter().copied());
        let mut b = GraphBuilder::new(4);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn directed_arcs_stay_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_arc(0, 1, 5);
        b.add_arc(1, 2, 7);
        let g = b.build();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), None);
        let in1: Vec<_> = g.in_neighbors(1).collect();
        assert_eq!(in1, vec![(0, 5)]);
    }

    #[test]
    fn directed_dedup_is_per_arc() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_arc(0, 1, 9);
        b.add_arc(0, 1, 4);
        b.add_arc(1, 0, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 0), Some(2));
    }

    #[test]
    fn directed_add_edge_symmetrizes() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn undirected_add_arc_symmetrizes() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1, 3);
        let g = b.build();
        assert!(!g.is_directed());
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn symmetric_directed_build_matches_undirected_arcs() {
        // A directed graph whose arc set happens to be symmetric stores the
        // same forward CSR as the undirected build of the same edges.
        let edges = [(0u32, 1u32, 2u32), (1, 2, 3), (0, 2, 9)];
        let mut d = GraphBuilder::new_directed(3);
        let mut u = GraphBuilder::new(3);
        for &(a, b, w) in &edges {
            d.add_edge(a, b, w);
            u.add_edge(a, b, w);
        }
        let dg = d.build();
        let ug = u.build();
        assert_eq!(dg.offsets(), ug.offsets());
        assert_eq!(dg.targets(), ug.targets());
        assert_eq!(dg.weights(), ug.weights());
    }
}
