//! Unsafe-free atomic fetch-min cells — the shared relaxation machinery of
//! the workspace.
//!
//! Both parallel hot paths of this repository are, at their core, *fetch-min
//! races*: many threads propose values for a node and the node's cell must
//! converge to the minimum proposal regardless of thread count or
//! scheduling. This module provides the two flavours they need:
//!
//! * [`MinDistCells`] — one `AtomicU64` per node, relaxed with the hardware
//!   `fetch_min`. This is what single-key relaxations (Δ-stepping SSSP in
//!   `cldiam-sssp`) use: a tentative distance is a single word, so the
//!   fetch-min is a single atomic RMW and the cell trivially converges to the
//!   minimum of all proposals.
//! * [`SeqMinCells`] — a *multi-word* fetch-min for keys too wide to pack
//!   into one portable atomic word. The Δ-growing hot path of `cldiam-core`
//!   relaxes the 128-bit key `(eff: i64, center: u32, src: u32)` with a
//!   `u64` payload riding along; each node carries a sequence word that turns
//!   its four field words into one logically-atomic value, seqlock style.
//!
//! # The seqlock protocol of [`SeqMinCells`]
//!
//! * even `seq` — the fields are consistent and may be read optimistically
//!   (validate by re-reading `seq` afterwards);
//! * a writer acquires the cell by CAS-ing `seq` from even to odd, stores the
//!   fields, and releases with `seq + 2`.
//!
//! The CAS loop in [`SeqMinCells::propose`] is therefore a fetch-min over the
//! lexicographic triple `(key1, key2, key3)`: a proposal is rejected without
//! ever taking the cell lock unless it strictly improves the current value,
//! every successful write strictly decreases the key, and the cell converges
//! to the global minimum of all proposals regardless of thread count or
//! scheduling. All of this is unsafe-free: the fields are ordinary
//! `std::sync::atomic` types.
//!
//! The fast-reject in both flavours relies on the same monotonicity argument:
//! a cell's value never increases over its lifetime, so any relaxed load
//! upper-bounds the final value — a proposal already above it can never win
//! and is dismissed with a single load.

// Behind the `model-check` feature the atomics (and the spin hint) route
// through the cldiam-modelcheck shims, so the very code below — not a
// transcription of it — runs under the schedule-exploring model checker
// (see crates/modelcheck and the feature-gated tests/model_atomic.rs).
// Outside an exploration the shims delegate to std with zero overhead.
#[cfg(not(feature = "model-check"))]
use std::hint::spin_loop;
#[cfg(not(feature = "model-check"))]
use std::sync::atomic::{fence, AtomicI64, AtomicU32, AtomicU64, Ordering};

#[cfg(feature = "model-check")]
use cldiam_modelcheck::hint::spin_loop;
#[cfg(feature = "model-check")]
use cldiam_modelcheck::sync::atomic::{fence, AtomicI64, AtomicU32, AtomicU64, Ordering};

use crate::weight::{Dist, INFINITY};

/// Per-node atomic tentative distances supporting concurrent fetch-min
/// relaxation. The cell block is grown lazily and never shrunk, so a single
/// instance can serve repeated runs (resetting only the entries a run
/// touched).
#[derive(Debug, Default)]
pub struct MinDistCells {
    cells: Vec<AtomicU64>,
}

impl MinDistCells {
    /// Empty cell block; sized by [`MinDistCells::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Grows the block to at least `n` cells, initializing new cells to
    /// [`INFINITY`]. Existing cells are untouched.
    pub fn ensure(&mut self, n: usize) {
        if self.cells.len() < n {
            self.cells.resize_with(n, || AtomicU64::new(INFINITY));
        }
    }

    /// Relaxed load of cell `v`.
    #[inline]
    pub fn load(&self, v: usize) -> Dist {
        self.cells[v].load(Ordering::Relaxed)
    }

    /// Relaxed store into cell `v` (quiescent use only: initialization and
    /// between-phase resets).
    #[inline]
    pub fn store(&self, v: usize, d: Dist) {
        self.cells[v].store(d, Ordering::Relaxed);
    }

    /// Atomically lowers cell `v` to `min(current, d)` and returns the value
    /// the cell held *before* the operation. The caller learns whether it
    /// improved the cell (`previous > d`) and whether it reached the node
    /// first (`previous == INFINITY`).
    ///
    /// Concurrent callers converge to the minimum proposal; the final cell
    /// value is independent of thread count and scheduling.
    #[inline]
    pub fn fetch_min(&self, v: usize, d: Dist) -> Dist {
        // Fast reject on a relaxed load: the value is non-increasing, so any
        // observed value upper-bounds the final one.
        let seen = self.cells[v].load(Ordering::Relaxed);
        if seen <= d {
            return seen;
        }
        self.cells[v].fetch_min(d, Ordering::Relaxed)
    }
}

/// Per-node multi-word fetch-min cells under the lexicographic order
/// `(key1, key2, key3)`, with an arbitrary `u64` payload riding along (the
/// payload is *not* part of the order — it is whatever the winning proposal
/// carried). See the module docs for the seqlock protocol.
#[derive(Debug, Default)]
pub struct SeqMinCells {
    /// Sequence word per node: even = consistent, odd = writer active.
    seq: Vec<AtomicU32>,
    /// Primary key component.
    key1: Vec<AtomicI64>,
    /// Secondary key component.
    key2: Vec<AtomicU32>,
    /// Final tie-break component. By convention `0` can be reserved by the
    /// caller to mean "settled before the current wave" (see
    /// [`SeqMinCells::settle`]).
    key3: Vec<AtomicU32>,
    /// Payload, not part of the key.
    payload: Vec<AtomicU64>,
}

impl SeqMinCells {
    /// Empty cell block; sized by [`SeqMinCells::resize`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Resizes the block to exactly `n` cells. Cell contents are unspecified
    /// afterwards; callers must [`SeqMinCells::set`] every cell before use.
    pub fn resize(&mut self, n: usize) {
        if self.seq.len() != n {
            self.seq = (0..n).map(|_| AtomicU32::new(0)).collect();
            self.key1 = (0..n).map(|_| AtomicI64::new(0)).collect();
            self.key2 = (0..n).map(|_| AtomicU32::new(0)).collect();
            self.key3 = (0..n).map(|_| AtomicU32::new(0)).collect();
            self.payload = (0..n).map(|_| AtomicU64::new(0)).collect();
        }
    }

    /// Quiescent initialization of cell `v` (no wave in flight): resets the
    /// sequence word and stores the value with relaxed ordering.
    #[inline]
    pub fn set(&self, v: usize, key1: i64, key2: u32, key3: u32, payload: u64) {
        self.seq[v].store(0, Ordering::Relaxed);
        self.key1[v].store(key1, Ordering::Relaxed);
        self.key2[v].store(key2, Ordering::Relaxed);
        self.key3[v].store(key3, Ordering::Relaxed);
        self.payload[v].store(payload, Ordering::Relaxed);
    }

    /// Quiescent read of `(key1, key2, payload)` for node `v` (no wave in
    /// flight).
    #[inline]
    pub fn read(&self, v: usize) -> (i64, u32, u64) {
        (
            self.key1[v].load(Ordering::Relaxed),
            self.key2[v].load(Ordering::Relaxed),
            self.payload[v].load(Ordering::Relaxed),
        )
    }

    /// Quiescent read of the primary key component of node `v` alone — for
    /// bulk per-field exports that would otherwise pay for all three words of
    /// [`SeqMinCells::read`].
    #[inline]
    pub fn read_key1(&self, v: usize) -> i64 {
        self.key1[v].load(Ordering::Relaxed)
    }

    /// Quiescent read of the secondary key component of node `v` alone.
    #[inline]
    pub fn read_key2(&self, v: usize) -> u32 {
        self.key2[v].load(Ordering::Relaxed)
    }

    /// Quiescent read of the tie-break component of node `v`.
    #[inline]
    pub fn read_key3(&self, v: usize) -> u32 {
        self.key3[v].load(Ordering::Relaxed)
    }

    /// Quiescent read of the payload of node `v` alone.
    #[inline]
    pub fn read_payload(&self, v: usize) -> u64 {
        self.payload[v].load(Ordering::Relaxed)
    }

    /// Clears the tie-break component of node `v` (sets it to `0`), so that
    /// later proposals with an equal `(key1, key2)` lose against the current
    /// value. Must only be called between waves.
    #[inline]
    pub fn settle(&self, v: usize) {
        self.key3[v].store(0, Ordering::Relaxed);
    }

    /// Seqlock-validated read of the full `(key1, key2, key3, payload)`
    /// tuple of node `v`, safe *during* a wave: retries until a read is
    /// bracketed by the same even sequence value, so the returned tuple is
    /// never torn across a concurrent [`SeqMinCells::propose`] write. Use
    /// the quiescent [`SeqMinCells::read`] family between waves instead —
    /// it skips the validation loop.
    pub fn read_coherent(&self, v: usize) -> (i64, u32, u32, u64) {
        let seq = &self.seq[v];
        loop {
            let s = seq.load(Ordering::Acquire);
            if s & 1 == 1 {
                spin_loop();
                continue;
            }
            let key1 = self.key1[v].load(Ordering::Relaxed);
            let key2 = self.key2[v].load(Ordering::Relaxed);
            let key3 = self.key3[v].load(Ordering::Relaxed);
            let payload = self.payload[v].load(Ordering::Relaxed);
            // Order the field loads before the validating re-read of `seq`.
            fence(Ordering::Acquire);
            if seq.load(Ordering::Relaxed) == s {
                return (key1, key2, key3, payload);
            }
            spin_loop();
        }
    }

    /// Attempts to improve node `v` with the proposal
    /// `(key1, key2, key3, payload)`. Returns `Some(previous_key2)` when the
    /// cell was improved (the caller can detect a first-ever assignment from
    /// the previous secondary key), `None` when the proposal was ≥ the
    /// current value.
    ///
    /// Concurrent callers converge to the minimum proposal under the
    /// `(key1, key2, key3)` order; the outcome is independent of thread count
    /// and scheduling.
    #[inline]
    pub fn propose(&self, v: usize, key1: i64, key2: u32, key3: u32, payload: u64) -> Option<u32> {
        // Fast reject on a single relaxed load: `key1` is non-increasing over
        // a cell's lifetime (every write strictly decreases the key), so any
        // observed value upper-bounds the final one — if the proposal is
        // already above it, it can never win. This is the common case in dense
        // waves and skips the validated read entirely.
        if key1 > self.key1[v].load(Ordering::Relaxed) {
            return None;
        }
        let seq = &self.seq[v];
        loop {
            let s = seq.load(Ordering::Acquire);
            if s & 1 == 1 {
                // A writer holds the cell; it is about to strictly decrease
                // the key, so we must re-read before deciding anything.
                spin_loop();
                continue;
            }
            let cur_key1 = self.key1[v].load(Ordering::Relaxed);
            let cur_key2 = self.key2[v].load(Ordering::Relaxed);
            let cur_key3 = self.key3[v].load(Ordering::Relaxed);
            // Order the field loads before the validating re-read of `seq`.
            fence(Ordering::Acquire);
            if seq.load(Ordering::Relaxed) != s {
                continue; // torn read; retry
            }
            if (key1, key2, key3) >= (cur_key1, cur_key2, cur_key3) {
                return None;
            }
            // Acquire the cell: even -> odd. Success proves the fields did not
            // change since the validated read (every write bumps `seq`), so
            // the comparison above still holds and we can write immediately.
            if seq.compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed).is_ok() {
                // Order the odd `seq` store before the field stores: without
                // this store-store barrier a weakly-ordered machine could make
                // a half-written field visible while `seq` still reads as the
                // stale even value, letting a concurrent proposer validate a
                // torn key and wrongly reject a winning proposal.
                fence(Ordering::Release);
                self.key1[v].store(key1, Ordering::Relaxed);
                self.key2[v].store(key2, Ordering::Relaxed);
                self.key3[v].store(key3, Ordering::Relaxed);
                self.payload[v].store(payload, Ordering::Relaxed);
                seq.store(s.wrapping_add(2), Ordering::Release);
                return Some(cur_key2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_dist_cells_fetch_min_reports_previous() {
        let mut cells = MinDistCells::new();
        cells.ensure(3);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.load(0), INFINITY);
        assert_eq!(cells.fetch_min(0, 10), INFINITY);
        assert_eq!(cells.fetch_min(0, 4), 10);
        // Equal or worse proposals do not write and report the blocking value.
        assert_eq!(cells.fetch_min(0, 4), 4);
        assert_eq!(cells.fetch_min(0, 9), 4);
        assert_eq!(cells.load(0), 4);
    }

    #[test]
    fn min_dist_cells_ensure_grows_without_clobbering() {
        let mut cells = MinDistCells::new();
        cells.ensure(2);
        cells.store(1, 7);
        cells.ensure(4);
        assert_eq!(cells.load(1), 7);
        assert_eq!(cells.load(3), INFINITY);
        cells.ensure(1); // never shrinks
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn min_dist_cells_concurrent_relaxation_converges() {
        let mut cells = MinDistCells::new();
        cells.ensure(1);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cells = &cells;
                scope.spawn(move || {
                    for round in 0..1000u64 {
                        cells.fetch_min(0, (round.wrapping_mul(13) + t) % 64 + 1);
                    }
                    cells.fetch_min(0, 1);
                });
            }
        });
        assert_eq!(cells.load(0), 1);
    }

    #[test]
    fn seq_min_cells_propose_and_settle() {
        let mut cells = SeqMinCells::new();
        cells.resize(2);
        cells.set(1, i64::MAX, u32::MAX, 0, u64::MAX);
        assert_eq!(cells.propose(1, 10, 3, 1, 10), Some(u32::MAX));
        assert_eq!(cells.propose(1, 10, 3, 1, 99), None); // equal key
        assert_eq!(cells.propose(1, 10, 2, 5, 7), Some(3)); // better key2
        assert_eq!(cells.read(1), (10, 2, 7));
        assert_eq!(cells.read_key3(1), 5);
        cells.settle(1);
        assert_eq!(cells.read_key3(1), 0);
        // Same (key1, key2) from any source now loses against the settled
        // value; a strictly better key1 still wins.
        assert_eq!(cells.propose(1, 10, 2, 1, 0), None);
        assert_eq!(cells.propose(1, 9, 9, 1, 9), Some(2));
    }

    #[test]
    fn seq_min_cells_read_coherent_matches_quiescent_read() {
        let mut cells = SeqMinCells::new();
        cells.resize(1);
        cells.set(0, i64::MAX, u32::MAX, 0, u64::MAX);
        assert_eq!(cells.read_coherent(0), (i64::MAX, u32::MAX, 0, u64::MAX));
        cells.propose(0, 5, 2, 9, 77);
        assert_eq!(cells.read_coherent(0), (5, 2, 9, 77));
        let (k1, k2, p) = cells.read(0);
        assert_eq!((k1, k2, cells.read_key3(0), p), cells.read_coherent(0));
    }

    #[test]
    fn seq_min_cells_read_coherent_is_never_torn_under_contention() {
        let mut cells = SeqMinCells::new();
        cells.resize(1);
        cells.set(0, i64::MAX, u32::MAX, 0, u64::MAX);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cells = &cells;
                scope.spawn(move || {
                    for round in 0..1000i64 {
                        // Writers keep key1 == payload in every proposal, so
                        // any torn tuple is detectable by value.
                        let key1 = i64::from(t) + 4000 - round * 4;
                        cells.propose(0, key1, t, t + 1, key1 as u64);
                    }
                });
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let (key1, _, _, payload) = cells.read_coherent(0);
                        assert_eq!(key1 as u64, payload, "torn concurrent read");
                    }
                });
            }
        });
    }

    #[test]
    fn seq_min_cells_concurrent_proposals_converge() {
        let mut cells = SeqMinCells::new();
        cells.resize(1);
        cells.set(0, i64::MAX, u32::MAX, 0, u64::MAX);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cells = &cells;
                scope.spawn(move || {
                    for round in 0..1000u32 {
                        let key1 = i64::from((round.wrapping_mul(7) + t) % 64) + 1;
                        cells.propose(0, key1, (round + t) % 16, t + 1, key1 as u64);
                    }
                    cells.propose(0, 1, 0, t + 1, 1);
                });
            }
        });
        assert_eq!(cells.read(0), (1, 0, 1));
        assert_eq!(cells.read_key3(0), 1);
    }
}
