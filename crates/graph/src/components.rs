//! Connected components.
//!
//! The paper defines the diameter of a disconnected graph as the largest
//! distance between two nodes *in the same connected component*, and the
//! benchmark harness runs every algorithm on the largest component of the
//! generated graphs (as is standard for the SNAP/LAW social networks). Two
//! implementations are provided: a sequential union-find (the oracle) and a
//! parallel label-propagation variant used for large graphs.

use rayon::prelude::*;

use crate::csr::Graph;
use crate::ops;
use crate::source::NeighborSource;
use crate::weight::NodeId;

/// Result of a connected-components computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `labels[u]` is the component identifier of node `u`. Identifiers are
    /// dense in `0..count`, assigned in order of smallest member node.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub count: usize,
}

impl ComponentLabels {
    /// Sizes of each component, indexed by component identifier.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Identifier of the largest component (ties broken by smaller id).
    pub fn largest(&self) -> Option<u32> {
        let sizes = self.sizes();
        sizes
            .iter()
            .enumerate()
            .max_by_key(|&(id, &s)| (s, std::cmp::Reverse(id)))
            .map(|(id, _)| id as u32)
    }

    /// `true` if every node is in a single component.
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Sequential union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Computes connected components with a sequential union-find. On a directed
/// graph this yields *weakly* connected components (arc direction ignored).
pub fn connected_components<G: NeighborSource>(graph: &G) -> ComponentLabels {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in graph.node_ids() {
        for (v, _) in graph.neighbors(u) {
            uf.union(u, v);
        }
    }
    canonicalize(n, |u| uf.find(u))
}

/// Computes connected components with parallel label propagation
/// (hook-and-shortcut). Produces the same labelling as
/// [`connected_components`].
pub fn connected_components_parallel<G: NeighborSource>(graph: &G) -> ComponentLabels {
    let n = graph.num_nodes();
    if n == 0 {
        return ComponentLabels { labels: Vec::new(), count: 0 };
    }
    let mut labels: Vec<u32> = (0..n as u32).collect();
    loop {
        // Hook: every node adopts the minimum label in its closed neighborhood.
        // Per-node work is trivial, so chunks stay large (min-len hint).
        let next: Vec<u32> = (0..n)
            .into_par_iter()
            .with_min_len(256)
            .map(|u| {
                let mut best = labels[u];
                for (v, _) in graph.neighbors(u as NodeId) {
                    best = best.min(labels[v as usize]);
                }
                best
            })
            .collect();
        // Shortcut: pointer jumping to accelerate convergence.
        let jumped: Vec<u32> =
            (0..n).into_par_iter().with_min_len(256).map(|u| next[next[u] as usize]).collect();
        let changed =
            jumped.par_iter().with_min_len(256).zip(labels.par_iter()).any(|(a, b)| a != b);
        labels = jumped;
        if !changed {
            break;
        }
    }
    // Labels now point to the minimum node of each component (after full
    // convergence of min-propagation). Converge fully: repeat pointer jumping
    // until stable in case of long chains.
    canonicalize(n, |u| {
        let mut x = u;
        while labels[x as usize] != x {
            x = labels[x as usize];
        }
        x
    })
}

fn canonicalize(n: usize, mut root_of: impl FnMut(u32) -> u32) -> ComponentLabels {
    let mut remap = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    let mut count = 0u32;
    for u in 0..n as u32 {
        let root = root_of(u);
        if remap[root as usize] == u32::MAX {
            remap[root as usize] = count;
            count += 1;
        }
        labels[u as usize] = remap[root as usize];
    }
    ComponentLabels { labels, count: count as usize }
}

/// Extracts every component with at least two nodes as a standalone graph in
/// one pass, returning for each the subgraph and the ascending mapping
/// `new id -> original id`, ordered by component identifier.
///
/// Unlike calling [`crate::ops::induced_subgraph`] per component (which pays
/// an `O(n)` relabelling array per call), the total cost here is `O(n + m)`
/// plus the builder sorts, independent of the component count — the
/// difference between tractable and quadratic on raw real-world graphs with
/// tens of thousands of small components. Singleton components are omitted:
/// their subgraph is a single isolated node, which no distance computation
/// can say anything interesting about.
pub fn component_subgraphs<G: NeighborSource>(
    graph: &G,
    labels: &ComponentLabels,
) -> Vec<(Graph, Vec<NodeId>)> {
    assert!(!graph.is_directed(), "component_subgraphs expects an undirected graph");
    let sizes = labels.sizes();
    // Dense slot per non-singleton component, in label (= smallest-member)
    // order, and the member list of each.
    let mut slot = vec![usize::MAX; labels.count];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut local = vec![NodeId::MAX; graph.num_nodes()];
    for (u, &label) in labels.labels.iter().enumerate() {
        if sizes[label as usize] < 2 {
            continue;
        }
        if slot[label as usize] == usize::MAX {
            slot[label as usize] = members.len();
            members.push(Vec::with_capacity(sizes[label as usize]));
        }
        let list = &mut members[slot[label as usize]];
        local[u] = list.len() as NodeId;
        list.push(u as NodeId);
    }
    let mut builders: Vec<crate::GraphBuilder> =
        members.iter().map(|m| crate::GraphBuilder::new(m.len())).collect();
    for u in graph.node_ids() {
        let s = slot[labels.labels[u as usize] as usize];
        if s == usize::MAX {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            if u < v {
                builders[s].add_edge(local[u as usize], local[v as usize], w);
            }
        }
    }
    builders.into_iter().zip(members).map(|(b, m)| (b.build(), m)).collect()
}

/// Extracts the largest connected component as a standalone graph.
///
/// Returns the subgraph and the mapping `new id -> original id`.
pub fn largest_component(graph: &Graph) -> (Graph, Vec<NodeId>) {
    let labels = connected_components(graph);
    match labels.largest() {
        None => (Graph::empty(0), Vec::new()),
        Some(target) => {
            let keep: Vec<NodeId> = (0..graph.num_nodes() as NodeId)
                .filter(|&u| labels.labels[u as usize] == target)
                .collect();
            let sub = ops::induced_subgraph(graph, &keep);
            (sub, keep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> Graph {
        // {0,1,2} triangle and {3,4} edge, node 5 isolated.
        Graph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (3, 4, 5)])
    }

    #[test]
    fn union_find_counts_components() {
        let labels = connected_components(&two_components());
        assert_eq!(labels.count, 3);
        assert_eq!(labels.labels[0], labels.labels[2]);
        assert_eq!(labels.labels[3], labels.labels[4]);
        assert_ne!(labels.labels[0], labels.labels[3]);
        assert_ne!(labels.labels[3], labels.labels[5]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_components();
        assert_eq!(connected_components(&g), connected_components_parallel(&g));
    }

    #[test]
    fn parallel_matches_sequential_on_path() {
        // A long path stresses the pointer-jumping convergence.
        let edges: Vec<_> = (0..999).map(|i| (i as NodeId, (i + 1) as NodeId, 1)).collect();
        let g = Graph::from_edges(1000, &edges);
        let seq = connected_components(&g);
        let par = connected_components_parallel(&g);
        assert_eq!(seq, par);
        assert!(seq.is_connected());
    }

    #[test]
    fn sizes_and_largest() {
        let labels = connected_components(&two_components());
        let sizes = labels.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        let largest = labels.largest().unwrap();
        assert_eq!(sizes[largest as usize], 3);
    }

    #[test]
    fn largest_component_extraction() {
        let (sub, mapping) = largest_component(&two_components());
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
    }

    #[test]
    fn component_subgraphs_split_and_relabel() {
        let g = two_components();
        let labels = connected_components(&g);
        let parts = component_subgraphs(&g, &labels);
        // The isolated node 5 is omitted; components come in label order.
        assert_eq!(parts.len(), 2);
        let (triangle, tri_map) = &parts[0];
        assert_eq!(tri_map, &vec![0, 1, 2]);
        assert_eq!(triangle.num_nodes(), 3);
        assert_eq!(triangle.num_edges(), 3);
        let (pair, pair_map) = &parts[1];
        assert_eq!(pair_map, &vec![3, 4]);
        assert_eq!(pair.edge_weight(0, 1), Some(5));
    }

    #[test]
    fn component_subgraphs_of_edgeless_graphs_are_empty() {
        let g = Graph::empty(4);
        let labels = connected_components(&g);
        assert!(component_subgraphs(&g, &labels).is_empty());
    }

    #[test]
    fn component_subgraphs_match_induced_subgraph() {
        // Interleaved components: {0,2,4} path and {1,3} edge.
        let g = Graph::from_edges(5, &[(0, 2, 1), (2, 4, 2), (1, 3, 9)]);
        let labels = connected_components(&g);
        for (sub, mapping) in component_subgraphs(&g, &labels) {
            assert_eq!(sub, crate::ops::induced_subgraph(&g, &mapping));
        }
    }

    #[test]
    fn empty_graph_has_no_components() {
        let labels = connected_components(&Graph::empty(0));
        assert_eq!(labels.count, 0);
        assert!(labels.largest().is_none());
        let (sub, mapping) = largest_component(&Graph::empty(0));
        assert!(sub.is_empty());
        assert!(mapping.is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let labels = connected_components(&Graph::empty(4));
        assert_eq!(labels.count, 4);
        assert!(!labels.is_connected());
    }
}
