//! Scalar types shared across the workspace.
//!
//! The paper works with positive integral edge weights that are polynomial in
//! `n`, and notes that real-valued weights reduce to this case as long as the
//! ratio between the maximum and minimum weight is polynomial. We therefore
//! use fixed-point integers everywhere:
//!
//! * [`Weight`] (`u32`) — the weight of a single edge.
//! * [`Dist`] (`u64`) — a path weight / distance; wide enough that summing
//!   `u32::MAX` weights over billions of hops cannot overflow in practice.
//! * [`WEIGHT_SCALE`] — the fixed-point scale used to embed weights drawn
//!   uniformly from `(0, 1]` (the convention the paper adopts for graphs that
//!   are born unweighted).

/// Node identifier. Graphs are limited to `u32::MAX - 1` nodes, which is far
/// beyond what a single-machine reproduction materializes.
pub type NodeId = u32;

/// Weight of a single edge (positive, fixed-point integer).
pub type Weight = u32;

/// Weight of a path (sum of edge weights).
pub type Dist = u64;

/// Sentinel for "unreachable" / "not yet reached" distances.
pub const INFINITY: Dist = u64::MAX;

/// Fixed-point scale for weights drawn from the real interval `(0, 1]`:
/// a real weight `x` is stored as `ceil(x * WEIGHT_SCALE)`.
pub const WEIGHT_SCALE: Weight = 1_000_000;

/// Converts a real-valued weight in `(0, 1]` to its fixed-point representation.
///
/// Values are clamped so that the result is always a positive weight, matching
/// the paper's requirement that every edge weight is strictly positive.
///
/// # Examples
///
/// ```
/// use cldiam_graph::{weight_from_unit, WEIGHT_SCALE};
/// assert_eq!(weight_from_unit(1.0), WEIGHT_SCALE);
/// assert_eq!(weight_from_unit(0.0), 1); // clamped to the minimum positive weight
/// ```
pub fn weight_from_unit(x: f64) -> Weight {
    let scaled = (x * f64::from(WEIGHT_SCALE)).ceil();
    if scaled < 1.0 {
        1
    } else if scaled >= f64::from(Weight::MAX) {
        Weight::MAX
    } else {
        scaled as Weight
    }
}

/// Converts a fixed-point weight back to its real value in `(0, 1]`.
pub fn weight_to_unit(w: Weight) -> f64 {
    f64::from(w) / f64::from(WEIGHT_SCALE)
}

/// Converts a fixed-point distance back to real units (inverse of the
/// [`WEIGHT_SCALE`] embedding). Returns `f64::INFINITY` for [`INFINITY`].
pub fn dist_to_unit(d: Dist) -> f64 {
    if d == INFINITY {
        f64::INFINITY
    } else {
        d as f64 / f64::from(WEIGHT_SCALE)
    }
}

/// Saturating addition of a distance and a weight that preserves [`INFINITY`].
#[inline]
pub fn dist_add(d: Dist, w: Weight) -> Dist {
    if d == INFINITY {
        INFINITY
    } else {
        d.saturating_add(Dist::from(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weight_roundtrip_is_close() {
        for &x in &[0.001, 0.25, 0.5, 0.75, 1.0] {
            let w = weight_from_unit(x);
            let back = weight_to_unit(w);
            assert!((back - x).abs() < 2.0 / f64::from(WEIGHT_SCALE), "{x} -> {w} -> {back}");
        }
    }

    #[test]
    fn unit_weight_is_always_positive() {
        assert_eq!(weight_from_unit(0.0), 1);
        assert_eq!(weight_from_unit(-3.0), 1);
        assert!(weight_from_unit(1e-12) >= 1);
    }

    #[test]
    fn unit_weight_saturates() {
        assert_eq!(weight_from_unit(1e10), Weight::MAX);
    }

    #[test]
    fn dist_add_preserves_infinity() {
        assert_eq!(dist_add(INFINITY, 5), INFINITY);
        assert_eq!(dist_add(10, 5), 15);
    }

    #[test]
    fn dist_to_unit_handles_infinity() {
        assert!(dist_to_unit(INFINITY).is_infinite());
        assert!((dist_to_unit(Dist::from(WEIGHT_SCALE)) - 1.0).abs() < 1e-9);
    }
}
