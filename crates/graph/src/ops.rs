//! Graph transformations: cartesian products, induced subgraphs, relabelling
//! and reweighting.
//!
//! The paper's `roads(S)` benchmark family is "the cartesian product of a
//! linear array of `S` nodes and unit edge weights with roads-USA"; the
//! [`cartesian_product`] implemented here is the general graph operation used
//! by the generator crate to build that family.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weight::{NodeId, Weight};

/// Cartesian product `G □ H`.
///
/// Nodes are pairs `(g, h)` encoded as `g * H.num_nodes() + h`. Two nodes are
/// adjacent when they agree on one coordinate and the other coordinates are
/// adjacent in the corresponding factor; the edge inherits the factor edge's
/// weight.
///
/// # Panics
///
/// Panics if the product would exceed `u32::MAX` nodes.
pub fn cartesian_product(g: &Graph, h: &Graph) -> Graph {
    assert!(!g.is_directed() && !h.is_directed(), "cartesian_product expects undirected factors");
    let ng = g.num_nodes();
    let nh = h.num_nodes();
    let product = ng.checked_mul(nh).expect("product size overflow");
    assert!(product <= NodeId::MAX as usize, "cartesian product exceeds u32 node ids");
    let encode = |gu: NodeId, hu: NodeId| gu as u64 * nh as u64 + hu as u64;
    let mut builder = GraphBuilder::with_capacity(product, g.num_edges() * nh + h.num_edges() * ng);
    // Edges from G, replicated for every node of H.
    for (gu, gv, w) in g.edges() {
        for hu in 0..nh as NodeId {
            builder.add_edge(encode(gu, hu) as NodeId, encode(gv, hu) as NodeId, w);
        }
    }
    // Edges from H, replicated for every node of G.
    for (hu, hv, w) in h.edges() {
        for gu in 0..ng as NodeId {
            builder.add_edge(encode(gu, hu) as NodeId, encode(gu, hv) as NodeId, w);
        }
    }
    // `with_capacity(product, ..)` pre-sizes the node count, so isolated
    // product nodes survive even if they have no incident edges.
    builder.build()
}

/// Induced subgraph on `nodes` (which must not contain duplicates).
///
/// Node `nodes[i]` of the original graph becomes node `i` of the subgraph.
/// Directedness is preserved: the induced subgraph of a directed graph keeps
/// exactly the arcs whose endpoints both survive.
pub fn induced_subgraph(graph: &Graph, nodes: &[NodeId]) -> Graph {
    let mut new_id = vec![NodeId::MAX; graph.num_nodes()];
    for (i, &u) in nodes.iter().enumerate() {
        assert_eq!(new_id[u as usize], NodeId::MAX, "duplicate node {u} in induced_subgraph");
        new_id[u as usize] = i as NodeId;
    }
    let directed = graph.is_directed();
    let mut builder = if directed {
        GraphBuilder::new_directed(nodes.len())
    } else {
        GraphBuilder::new(nodes.len())
    };
    for &u in nodes {
        let nu = new_id[u as usize];
        for (v, w) in graph.neighbors(u) {
            let nv = new_id[v as usize];
            if nv == NodeId::MAX {
                continue;
            }
            if directed {
                builder.add_arc(nu, nv, w);
            } else if nu < nv {
                builder.add_edge(nu, nv, w);
            }
        }
    }
    builder.build()
}

/// Relabels the graph with a permutation: node `u` becomes `perm[u]`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..num_nodes`.
pub fn relabel(graph: &Graph, perm: &[NodeId]) -> Graph {
    assert!(!graph.is_directed(), "relabel expects an undirected graph");
    let n = graph.num_nodes();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!((p as usize) < n && !seen[p as usize], "perm is not a permutation");
        seen[p as usize] = true;
    }
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in graph.edges() {
        builder.add_edge(perm[u as usize], perm[v as usize], w);
    }
    builder.build()
}

/// Applies a function to every edge weight (the result is clamped to be
/// positive). Useful to re-draw weights on a fixed topology, as the paper does
/// for the "born unweighted" social graphs.
pub fn map_weights(graph: &Graph, mut f: impl FnMut(NodeId, NodeId, Weight) -> Weight) -> Graph {
    assert!(!graph.is_directed(), "map_weights expects an undirected graph");
    let mut builder = GraphBuilder::new(graph.num_nodes());
    for (u, v, w) in graph.edges() {
        builder.add_edge(u, v, f(u, v, w).max(1));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize, w: Weight) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId, w)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn product_of_paths_is_grid() {
        let p3 = path(3, 1);
        let p2 = path(2, 1);
        let grid = cartesian_product(&p3, &p2);
        assert_eq!(grid.num_nodes(), 6);
        // Grid 3x2 has 3*1 + 2*2 = 7 edges.
        assert_eq!(grid.num_edges(), 7);
        // Node (g, h) = g*2 + h; (0,0)-(0,1) and (0,0)-(1,0) must exist.
        assert!(grid.has_edge(0, 1));
        assert!(grid.has_edge(0, 2));
        assert!(!grid.has_edge(0, 3));
    }

    #[test]
    fn product_preserves_factor_weights() {
        let heavy = path(2, 9);
        let light = path(2, 2);
        let prod = cartesian_product(&heavy, &light);
        // (0,0)-(1,0): heavy edge; (0,0)-(0,1): light edge.
        assert_eq!(prod.edge_weight(0, 2), Some(9));
        assert_eq!(prod.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn product_node_count_with_isolated_factor() {
        let p2 = path(2, 1);
        let isolated = Graph::empty(3);
        let prod = cartesian_product(&p2, &isolated);
        assert_eq!(prod.num_nodes(), 6);
        assert_eq!(prod.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4)]);
        let sub = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight(0, 1), Some(2));
        assert_eq!(sub.edge_weight(1, 2), Some(3));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = path(3, 1);
        induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn induced_subgraph_preserves_direction() {
        // Arcs 0→1, 1→2, 2→0, 3→1; keep {0, 1, 2}.
        let mut b = GraphBuilder::new_directed(4);
        b.add_arc(0, 1, 1);
        b.add_arc(1, 2, 2);
        b.add_arc(2, 0, 3);
        b.add_arc(3, 1, 9);
        let g = b.build();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert!(sub.is_directed());
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.edge_weight(0, 1), Some(1));
        assert_eq!(sub.edge_weight(1, 0), None);
        assert_eq!(sub.edge_weight(2, 0), Some(3));
    }

    #[test]
    fn relabel_reverses() {
        let g = path(4, 5);
        let relabelled = relabel(&g, &[3, 2, 1, 0]);
        assert!(relabelled.has_edge(3, 2));
        assert!(relabelled.has_edge(1, 0));
        assert_eq!(relabelled.num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = path(3, 1);
        relabel(&g, &[0, 0, 1]);
    }

    #[test]
    fn map_weights_rescales() {
        let g = path(3, 4);
        let doubled = map_weights(&g, |_, _, w| w * 2);
        assert_eq!(doubled.edge_weight(0, 1), Some(8));
        let clamped = map_weights(&g, |_, _, _| 0);
        assert_eq!(clamped.edge_weight(0, 1), Some(1));
    }
}
