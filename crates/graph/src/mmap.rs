//! Minimal read-only memory mapping with hand-rolled `mmap`/`munmap`
//! bindings (the vendor policy is offline — no `libc`, no `memmap2`).
//!
//! On Unix this maps the file `MAP_PRIVATE | PROT_READ` and exposes it as a
//! `&[u8]`; the mapping is page-aligned, so any section offset that is a
//! multiple of 8 is 8-byte-aligned in memory, which the `.cldg` v2 layout
//! guarantees for every payload section. On non-Unix targets [`Mmap::map`]
//! transparently degrades to reading the file into an owned buffer, so
//! callers stay platform-agnostic.

// The crate denies unsafe; this module opts back in for the mmap FFI
// (every site carries a SAFETY note).
#![allow(unsafe_code)]

use std::fs::File;
use std::io;

/// A read-only view of an entire file, memory-mapped where the platform
/// supports it.
pub struct Mmap {
    #[cfg(unix)]
    inner: unix::Mapping,
    #[cfg(not(unix))]
    inner: Vec<u8>,
}

impl Mmap {
    /// Maps `file` in its entirety. Zero-length files produce an empty view
    /// without calling `mmap` (which rejects `len == 0`).
    pub fn map(file: &File) -> io::Result<Mmap> {
        crate::failpoint::inject("mmap::map")?;
        #[cfg(unix)]
        {
            Ok(Mmap { inner: unix::Mapping::map(file)? })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::new();
            let mut file = file;
            file.read_to_end(&mut buf)?;
            Ok(Mmap { inner: buf })
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            self.inner.as_slice()
        }
        #[cfg(not(unix))]
        {
            &self.inner
        }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapped file was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Owned `mmap` region; unmapped on drop. A zero-length mapping holds a
    /// dangling pointer and never touches the kernel.
    pub(super) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is immutable (PROT_READ, MAP_PRIVATE) for the
    // lifetime of the value, so shared references from any thread are sound.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — the mapping is read-only and owned, so concurrent
    // shared access cannot observe a mutation.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub(super) fn map(file: &File) -> io::Result<Mapping> {
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Mapping { ptr: std::ptr::NonNull::dangling().as_ptr(), len: 0 });
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            // SAFETY: plain FFI call with a valid open fd; a null hint, and a
            // length checked non-zero above. The kernel picks the address, and
            // failure is reported as MAP_FAILED (-1), checked below before the
            // pointer is ever dereferenced.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr: ptr as *const u8, len })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            // Safety: `ptr` covers `len` readable bytes for the lifetime of
            // `self` (or is a dangling pointer with `len == 0`, which
            // `from_raw_parts` permits).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len > 0 {
                // Safety: this is the unique owner of the mapping.
                unsafe {
                    munmap(self.ptr as *mut c_void, self.len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cldiam-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("contents", b"hello mapping");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapping");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_file("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_page_aligned() {
        let path = temp_file("aligned", &[0u8; 64]);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }
}
