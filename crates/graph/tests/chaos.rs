//! Chaos suite: every injected I/O fault must surface as a typed error or
//! a transparent recovery — never a panic, a hang, or a silently-wrong
//! graph.
//!
//! Each scenario arms failpoints through [`cldiam_graph::failpoint::scoped`],
//! which serializes scenarios across test threads (the registry is
//! process-global), and runs the public loaders against a scenario-private
//! temp directory.

use std::path::{Path, PathBuf};

use cldiam_graph::failpoint::scoped;
use cldiam_graph::io::snapshot::write_snapshot;
use cldiam_graph::{
    load_graph, load_graph_cached_with, read_snapshot_file, CacheOptions, Graph, IoError,
    SnapshotGraph, SnapshotOptions, SnapshotPayload,
};

/// A scenario-private temp directory (removed and recreated per call so
/// reruns never see stale caches).
fn scenario_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cldiam-chaos-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scenario dir");
    dir
}

/// Writes a small edge-list file and returns its path plus the graph it
/// parses to.
fn sample_input(dir: &Path) -> (PathBuf, Graph) {
    let text = "0 1 5\n1 2 3\n2 3 4\n3 0 2\n0 2 9\n";
    let path = dir.join("sample.txt");
    std::fs::write(&path, text).expect("write sample input");
    let graph = Graph::from_edges(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 4), (3, 0, 2), (0, 2, 9)]);
    (path, graph)
}

fn cache_path(input: &Path) -> PathBuf {
    let mut name = input.as_os_str().to_os_string();
    name.push(".cldg");
    PathBuf::from(name)
}

fn quarantine_path(input: &Path) -> PathBuf {
    let mut name = cache_path(input).into_os_string();
    name.push(".corrupt");
    PathBuf::from(name)
}

/// The cache tiers the crash scenarios cycle through.
fn tiers() -> [CacheOptions; 2] {
    [CacheOptions::default(), CacheOptions { compress: true, shards: 2, ..CacheOptions::default() }]
}

#[test]
fn read_error_is_a_typed_error() {
    let dir = scenario_dir("read-eio");
    let (path, _) = sample_input(&dir);
    let _guard = scoped(&["io::read=eio"]);
    match load_graph(&path) {
        Err(IoError::Io(e)) => assert!(e.to_string().contains("failpoint")),
        other => panic!("expected an I/O error, got {other:?}"),
    }
}

#[test]
fn transient_read_errors_are_retried() {
    let dir = scenario_dir("read-retry");
    let (path, expected) = sample_input(&dir);
    let _guard = scoped(&["io::read=interrupted*2"]);
    let graph = load_graph(&path).expect("retry over transient errors");
    assert_eq!(graph, expected);
}

#[test]
fn persistent_transient_errors_eventually_fail() {
    let dir = scenario_dir("read-retry-exhausted");
    let (path, _) = sample_input(&dir);
    let _guard = scoped(&["io::read=interrupted"]);
    match load_graph(&path) {
        Err(IoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::Interrupted),
        other => panic!("expected exhausted retries, got {other:?}"),
    }
}

#[test]
fn cache_write_failure_never_fails_the_load() {
    for (i, options) in tiers().iter().enumerate() {
        let dir = scenario_dir(&format!("cache-enospc-{i}"));
        let (path, expected) = sample_input(&dir);
        let _guard = scoped(&["cache::write=enospc"]);
        let (graph, cached) = load_graph_cached_with(&path, options).expect("load survives");
        assert_eq!(graph.into_dense(), expected);
        assert!(!cached);
        assert!(!cache_path(&path).exists(), "failed write must not leave a cache");
    }
}

#[test]
fn partial_cache_write_leaves_no_trace() {
    let dir = scenario_dir("cache-partial");
    let (path, expected) = sample_input(&dir);
    {
        let _guard = scoped(&["cache::write=partial:64"]);
        let (graph, _) =
            load_graph_cached_with(&path, &CacheOptions::default()).expect("load survives");
        assert_eq!(graph.into_dense(), expected);
    }
    let cache = cache_path(&path);
    assert!(!cache.exists(), "partial write must not reach the final path");
    let mut tmp = cache.into_os_string();
    tmp.push(".tmp");
    assert!(!Path::new(&tmp).exists(), "temp file must be cleaned up");
}

#[test]
fn torn_cache_write_is_quarantined_on_the_next_load() {
    for (i, options) in tiers().iter().enumerate() {
        let dir = scenario_dir(&format!("cache-torn-{i}"));
        let (path, expected) = sample_input(&dir);
        {
            // Crash simulation: a truncated image lands at the final path
            // and the writer believes it succeeded.
            let _guard = scoped(&["cache::write=torn:48"]);
            let (graph, _) = load_graph_cached_with(&path, options).expect("load survives");
            assert_eq!(graph.clone().into_dense(), expected);
        }
        assert!(cache_path(&path).exists(), "torn image reaches the final path");
        // Next run: the corrupt cache must be detected, quarantined, and
        // transparently regenerated from the text source.
        let (graph, cached) = load_graph_cached_with(&path, options).expect("recovery");
        assert_eq!(graph.into_dense(), expected);
        assert!(!cached, "corrupt cache must not be served");
        assert!(quarantine_path(&path).exists(), "corrupt cache must be quarantined");
        // And the regenerated cache serves the run after that.
        let (graph, cached) = load_graph_cached_with(&path, options).expect("regenerated");
        assert_eq!(graph.into_dense(), expected);
        assert!(cached);
    }
}

#[test]
fn bit_rot_in_the_cache_is_detected_and_quarantined() {
    let dir = scenario_dir("cache-bitrot");
    let (path, expected) = sample_input(&dir);
    {
        let _guard = scoped(&["cache::write=bitflip:150"]);
        load_graph_cached_with(&path, &CacheOptions::default()).expect("load survives");
    }
    let (graph, cached) =
        load_graph_cached_with(&path, &CacheOptions::default()).expect("recovery");
    // The hard invariant: whatever the checksums caught or missed, the
    // served graph must be the source graph. A detected flip additionally
    // quarantines the cache and re-parses.
    assert_eq!(graph.into_dense(), expected, "bit rot must never produce a wrong graph");
    if !cached {
        assert!(quarantine_path(&path).exists());
    }
}

#[test]
fn cache_read_io_error_falls_back_without_quarantining() {
    let dir = scenario_dir("cache-read-eio");
    let (path, expected) = sample_input(&dir);
    load_graph_cached_with(&path, &CacheOptions::default()).expect("prime the cache");
    assert!(cache_path(&path).exists());
    let _guard = scoped(&["snapshot::read=eio"]);
    // Only the cache read goes through `snapshot::read`; the fallback
    // re-parse reads the text through `cache::regen`, so the load recovers.
    let (graph, cached) =
        load_graph_cached_with(&path, &CacheOptions::default()).expect("fallback");
    assert_eq!(graph.into_dense(), expected);
    assert!(!cached);
    // A plain I/O error says nothing about the bytes: no quarantine.
    assert!(cache_path(&path).exists());
    assert!(!quarantine_path(&path).exists());
}

#[test]
fn truncated_cache_read_recovers_via_quarantine() {
    let dir = scenario_dir("cache-read-truncated");
    let (path, expected) = sample_input(&dir);
    load_graph_cached_with(&path, &CacheOptions::default()).expect("prime the cache");
    let _guard = scoped(&["snapshot::read=truncate:32"]);
    let (graph, cached) =
        load_graph_cached_with(&path, &CacheOptions::default()).expect("recovery");
    assert_eq!(graph.into_dense(), expected);
    assert!(!cached);
    assert!(quarantine_path(&path).exists());
}

#[test]
fn source_regeneration_errors_are_typed() {
    let dir = scenario_dir("regen-eio");
    let (path, _) = sample_input(&dir);
    let _guard = scoped(&["cache::regen=eio"]);
    match load_graph_cached_with(&path, &CacheOptions::default()) {
        Err(IoError::Io(e)) => assert!(e.to_string().contains("failpoint")),
        other => panic!("expected an I/O error, got {other:?}"),
    }
}

#[test]
fn mmap_setup_failure_is_typed_and_buffered_path_still_works() {
    let dir = scenario_dir("mmap-eio");
    let graph = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
    let snap = dir.join("g.cldg");
    let mut bytes = Vec::new();
    write_snapshot(&SnapshotPayload::Dense(&graph), &mut bytes).expect("serialize");
    std::fs::write(&snap, &bytes).expect("write snapshot");
    let _guard = scoped(&["mmap::map=eio"]);
    let mapped = SnapshotOptions { mmap: true, verify: true };
    match read_snapshot_file(&snap, &mapped) {
        Err(IoError::Io(e)) => assert!(e.to_string().contains("failpoint")),
        other => panic!("expected an mmap error, got {other:?}"),
    }
    let buffered = SnapshotOptions { mmap: false, verify: true };
    let loaded = read_snapshot_file(&snap, &buffered).expect("buffered path unaffected");
    match loaded.graph {
        SnapshotGraph::Dense(g) => assert_eq!(g, graph),
        SnapshotGraph::Compressed(_) => panic!("dense payload expected"),
    }
}

#[test]
fn snapshot_read_bitflip_never_yields_a_wrong_graph() {
    let dir = scenario_dir("snapshot-bitflip");
    let graph = Graph::from_edges(4, &[(0, 1, 7), (1, 2, 1), (2, 3, 2)]);
    let snap = dir.join("g.cldg");
    let mut bytes = Vec::new();
    write_snapshot(&SnapshotPayload::Dense(&graph), &mut bytes).expect("serialize");
    std::fs::write(&snap, &bytes).expect("write snapshot");
    let buffered = SnapshotOptions { mmap: false, verify: true };
    for offset in [9usize, 70, 100, 130, 160, 200] {
        let _guard = scoped(&[&format!("snapshot::read=bitflip:{offset}")]);
        match read_snapshot_file(&snap, &buffered) {
            Err(_) => {}
            Ok(snapshot) => match snapshot.graph {
                // A flip in padding can go unnoticed; the decoded graph must
                // then be exactly the original.
                SnapshotGraph::Dense(g) => assert_eq!(g, graph, "offset {offset}"),
                SnapshotGraph::Compressed(c) => assert_eq!(c.to_graph(), graph, "offset {offset}"),
            },
        }
    }
}
