//! Model-checked verification of the real fetch-min primitives.
//!
//! Compiled only with `--features model-check`, which routes the atomics in
//! `cldiam_graph::atomic` through the `cldiam_modelcheck` shims: these
//! tests drive the *actual* `MinDistCells` / `SeqMinCells` code through
//! every (bounded) interleaving, not a transcription of it. Run with:
//!
//! ```text
//! cargo test -p cldiam-graph --features model-check --test model_atomic
//! ```

#![cfg(feature = "model-check")]

use std::sync::Arc;

use cldiam_graph::atomic::{MinDistCells, SeqMinCells};
use cldiam_modelcheck as mc;

#[test]
fn min_dist_cells_fetch_min_is_linearizable() {
    // Two concurrent relaxations (with the fast-reject load in front):
    // every interleaving must converge to the minimum, and exactly the
    // winning proposal may observe the INFINITY "first reach".
    let report = mc::explore(mc::Config::exhaustive(), || {
        let cells = {
            let mut cells = MinDistCells::new();
            cells.ensure(1);
            Arc::new(cells)
        };
        let threads: Vec<_> = [3u64, 7]
            .into_iter()
            .map(|d| {
                let cells = Arc::clone(&cells);
                mc::thread::spawn(move || cells.fetch_min(0, d))
            })
            .collect();
        let previous: Vec<u64> = threads.into_iter().map(|t| t.join()).collect();
        assert_eq!(cells.load(0), 3, "cell must converge to the minimum proposal");
        // Linearizability: the returns must be consistent with *some* total
        // order of the two fetch-mins — whichever proposal went first saw
        // the initial INFINITY.
        assert!(
            previous.contains(&cldiam_graph::INFINITY),
            "one proposal must observe the initial INFINITY, got {previous:?}"
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "2-thread fetch-min must be fully explorable");
    assert!(report.schedules > 1);
}

#[test]
fn seq_min_cells_concurrent_proposals_converge() {
    // The real multi-word seqlock fetch-min under exploration: two
    // concurrent proposals; the cell must converge to the lexicographic
    // minimum with the winner's payload, regardless of schedule.
    let report = mc::explore(mc::Config::bounded(3), || {
        let cells = {
            let mut cells = SeqMinCells::new();
            cells.resize(1);
            cells.set(0, i64::MAX, u32::MAX, 0, u64::MAX);
            Arc::new(cells)
        };
        let threads: Vec<_> = [(7i64, 1u32), (3, 2)]
            .into_iter()
            .map(|(key1, key2)| {
                let cells = Arc::clone(&cells);
                mc::thread::spawn(move || cells.propose(0, key1, key2, 9, key1 as u64).is_some())
            })
            .collect();
        let improved: Vec<bool> = threads.into_iter().map(|t| t.join()).collect();
        assert_eq!(cells.read(0), (3, 2, 3), "cell must hold the minimum proposal");
        assert!(improved.iter().any(|&i| i), "the winning proposal must report Improved");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.schedules > 1);
}

#[test]
fn seq_min_cells_read_coherent_is_never_torn() {
    // Seqlock read-consistency, the property the paper's (eff, center,
    // src, true_dist) tuples depend on: a concurrent validated read must
    // never observe a mix of old and new fields. Writers keep
    // key1 == payload, so any torn tuple is detectable by value.
    let report = mc::explore(mc::Config::bounded(3), || {
        let cells = {
            let mut cells = SeqMinCells::new();
            cells.resize(1);
            cells.set(0, 100, 1, 1, 100);
            Arc::new(cells)
        };
        let writer = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || {
                cells.propose(0, 5, 2, 9, 5);
            })
        };
        let reader = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || {
                let (key1, key2, _key3, payload) = cells.read_coherent(0);
                assert_eq!(key1 as u64, payload, "torn (key, payload) tuple");
                assert!(
                    (key1, key2) == (100, 1) || (key1, key2) == (5, 2),
                    "torn (key1, key2) pair: ({key1}, {key2})"
                );
            })
        };
        writer.join();
        reader.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.schedules > 10, "the writer/reader race must branch");
}

#[test]
fn seq_min_cells_propose_validation_rejects_correctly_under_race() {
    // A proposal losing to a concurrently written better value must be
    // Rejected, and a proposal racing with a worse concurrent write must
    // still land: exercised by proposing (4,..) and (6,..) concurrently
    // onto an initial (8,..) — final value is always (4,..) and the (4,..)
    // proposer always reports Improved.
    let report = mc::explore(mc::Config::bounded(3), || {
        let cells = {
            let mut cells = SeqMinCells::new();
            cells.resize(1);
            cells.set(0, 8, 8, 8, 8);
            Arc::new(cells)
        };
        let low = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || cells.propose(0, 4, 1, 1, 4).is_some())
        };
        let high = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || cells.propose(0, 6, 1, 1, 6).is_some())
        };
        let low_improved = low.join();
        let _high_improved = high.join();
        assert!(low_improved, "the strictly smallest proposal always lands");
        assert_eq!(cells.read(0), (4, 1, 4));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}
