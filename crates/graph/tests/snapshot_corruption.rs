//! Corruption resistance of the snapshot parsers.
//!
//! The acceptance bar: truncating a valid v1 or v2 snapshot at *every* byte
//! offset, and flipping arbitrary bits anywhere in the image, must yield a
//! typed [`IoError`] or a graph identical to the original — never a panic,
//! and never a silently different graph. The parsers run on whatever the
//! disk hands them; these tests are the trust model's enforcement.

use proptest::prelude::*;

use cldiam_graph::io::binary::write_binary;
use cldiam_graph::io::snapshot::write_snapshot;
use cldiam_graph::{parse_snapshot_bytes, CompressedGraph, Graph, GraphBuilder, SnapshotPayload};

fn sample_graph() -> Graph {
    let mut b = GraphBuilder::new(30);
    for u in 0..29u32 {
        b.add_edge(u, u + 1, 1 + (u % 9));
    }
    b.add_edge(0, 15, 40);
    b.add_edge(7, 22, 12);
    b.build()
}

/// The three on-disk images under test: v1, v2 dense, v2 compressed.
fn images() -> Vec<(&'static str, Vec<u8>)> {
    let graph = sample_graph();
    let mut v1 = Vec::new();
    write_binary(&graph, &mut v1).expect("serialize v1");
    let mut v2_dense = Vec::new();
    write_snapshot(&SnapshotPayload::Dense(&graph), &mut v2_dense).expect("serialize v2 dense");
    let compressed = CompressedGraph::from_graph(&graph, 2);
    let mut v2_compressed = Vec::new();
    write_snapshot(&SnapshotPayload::Compressed(&compressed), &mut v2_compressed)
        .expect("serialize v2 compressed");
    vec![("v1", v1), ("v2-dense", v2_dense), ("v2-compressed", v2_compressed)]
}

/// Parsing corrupted bytes must return `Err` or the original graph; the
/// panic-freedom half of the contract is enforced by the test harness.
fn assert_err_or_original(label: &str, what: &str, bytes: &[u8], original: &Graph) {
    match parse_snapshot_bytes(bytes) {
        Err(_) => {}
        Ok(snapshot) => {
            assert_eq!(
                &snapshot.graph.into_dense(),
                original,
                "{label}: {what} parsed into a different graph"
            );
        }
    }
}

#[test]
fn truncation_at_every_offset_is_err_or_original() {
    let original = sample_graph();
    for (label, bytes) in images() {
        for len in 0..bytes.len() {
            assert_err_or_original(
                label,
                &format!("truncation to {len}"),
                &bytes[..len],
                &original,
            );
        }
        // The untruncated image must round-trip.
        assert_eq!(
            parse_snapshot_bytes(&bytes).expect("intact image").graph.into_dense(),
            original,
            "{label}: intact image failed to round-trip"
        );
    }
}

#[test]
fn appended_garbage_is_err_or_original() {
    let original = sample_graph();
    for (label, mut bytes) in images() {
        bytes.extend_from_slice(&[0xAB; 37]);
        assert_err_or_original(label, "appended garbage", &bytes, &original);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_bit_flips_are_err_or_original(
        flips in proptest::collection::vec((0usize..1 << 20, 0u8..8), 1..9),
        image in 0usize..3,
    ) {
        let original = sample_graph();
        let (label, mut bytes) = images().swap_remove(image);
        for (offset, bit) in flips {
            let at = offset % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        assert_err_or_original(label, "bit flips", &bytes, &original);
    }

    #[test]
    fn random_byte_stomps_are_err_or_original(
        start in 0usize..1 << 20,
        stomp in proptest::collection::vec(0u8..=255, 1..64),
        image in 0usize..3,
    ) {
        let original = sample_graph();
        let (label, mut bytes) = images().swap_remove(image);
        let at = start % bytes.len();
        let end = (at + stomp.len()).min(bytes.len());
        bytes[at..end].copy_from_slice(&stomp[..end - at]);
        assert_err_or_original(label, "byte stomp", &bytes, &original);
    }
}
