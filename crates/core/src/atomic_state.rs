//! Per-node atomic growth state for the in-place Δ-growing hot path.
//!
//! The two-phase formulation of a Δ-growing step (materialize every
//! relaxation proposal, then reduce per target) pays O(frontier + proposals)
//! heap traffic per wave. [`AtomicGrowCells`] removes that: every proposal is
//! applied *in place* with a CAS loop against the target's cell, and the cell
//! converges to the minimum proposal under the total order
//!
//! ```text
//! (eff, center, src)
//! ```
//!
//! which is exactly the winner the literal MapReduce reducer picks:
//!
//! * smallest effective distance first, then smallest center index — the
//!   paper's scheduling-independent tie-break;
//! * `src` (the proposing frontier node, biased by `+1` so that `0` can mean
//!   "settled before this wave") breaks the remaining ties the way the MR
//!   reducer's first-proposal-in-shuffle-order rule does. Frontiers are kept
//!   sorted, so the first proposal with the winning `(eff, center)` key is the
//!   one from the smallest source node; among equal `(eff, center, src)` the
//!   payload is identical, so any representative is the right one. Without
//!   this third component the *key* reduction would still be deterministic but
//!   the `true_dist` payload riding along would not, because two sources can
//!   propose the same `(eff, center)` with different accumulated
//!   original-graph distances.
//!
//! The CAS machinery itself — the multi-word seqlock fetch-min — lives in
//! [`cldiam_graph::atomic::SeqMinCells`], the same unsafe-free module the
//! Δ-stepping SSSP engine relaxes through (with its single-word
//! [`cldiam_graph::atomic::MinDistCells`] flavour). This type is the
//! `GrowState`-aware wrapper: it maps `(eff, center, src, true_dist)` onto
//! the generic `(key1, key2, key3, payload)` cell, loads/stores whole states
//! around a growth, and carries the frozen flags that make covered nodes
//! source-only.

use rayon::prelude::*;

use cldiam_graph::atomic::SeqMinCells;
use cldiam_graph::{Dist, NodeId};

use crate::state::GrowState;

/// Result of [`AtomicGrowCells::propose`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proposed {
    /// The proposal did not improve the cell (it was ≥ the current key).
    Rejected,
    /// The proposal was written into the cell.
    Improved {
        /// `true` iff this write reached the node for the first time (its
        /// center was [`crate::state::NO_CENTER`] before the write). At most
        /// one proposal per node can ever observe this.
        newly_reached: bool,
    },
}

/// Per-node growth state in atomic cells, supporting concurrent in-place
/// relaxation. See the module docs for the key order and
/// [`cldiam_graph::atomic`] for the seqlock protocol.
#[derive(Debug, Default)]
pub struct AtomicGrowCells {
    /// The shared multi-word fetch-min cells: key1 = eff, key2 = center,
    /// key3 = src + 1 (0 = settled), payload = true_dist.
    cells: SeqMinCells,
    /// Frozen flags, immutable during a growth: frozen nodes are never
    /// proposed to (they only act as sources).
    frozen: Vec<bool>,
}

impl AtomicGrowCells {
    /// Empty cell block; sized lazily by [`AtomicGrowCells::load_from`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Loads a [`GrowState`] into the cells, resetting every sequence word and
    /// marking every value as settled. Called once per `PartialGrowth`, not
    /// per wave.
    pub fn load_from(&mut self, state: &GrowState) {
        let n = state.len();
        self.cells.resize(n);
        self.frozen.clear();
        self.frozen.extend_from_slice(&state.frozen);
        let cells = &self.cells;
        (0..n).into_par_iter().with_min_len(2048).for_each(|u| {
            cells.set(u, state.eff[u], state.center[u], 0, state.true_dist[u]);
        });
    }

    /// Writes the cells back into a [`GrowState`]. Must only be called when no
    /// wave is in flight (all sequence words even).
    ///
    /// # Panics
    ///
    /// Panics if `state` tracks a different number of nodes than the cells.
    pub fn store_into(&self, state: &mut GrowState) {
        let n = self.len();
        assert_eq!(state.len(), n, "cells do not match the state");
        const CHUNK: usize = 2048;
        let cells = &self.cells;
        state.eff.par_chunks_mut(CHUNK).enumerate().for_each(|(ci, chunk)| {
            let base = ci * CHUNK;
            for (i, e) in chunk.iter_mut().enumerate() {
                *e = cells.read_key1(base + i);
            }
        });
        state.center.par_chunks_mut(CHUNK).enumerate().for_each(|(ci, chunk)| {
            let base = ci * CHUNK;
            for (i, c) in chunk.iter_mut().enumerate() {
                *c = cells.read_key2(base + i);
            }
        });
        state.true_dist.par_chunks_mut(CHUNK).enumerate().for_each(|(ci, chunk)| {
            let base = ci * CHUNK;
            for (i, d) in chunk.iter_mut().enumerate() {
                *d = cells.read_payload(base + i);
            }
        });
    }

    /// Quiescent read of `(eff, center, true_dist)` for node `v` (no wave in
    /// flight). Used to snapshot the frontier's pre-wave state.
    #[inline]
    pub fn read(&self, v: usize) -> (i64, NodeId, Dist) {
        self.cells.read(v)
    }

    /// `true` if `v` was frozen when the cells were loaded.
    #[inline]
    pub fn is_frozen(&self, v: usize) -> bool {
        self.frozen[v]
    }

    /// Marks node `v` as settled (clears the source tie-break), so that
    /// next-wave proposals with an equal `(eff, center)` key lose against it —
    /// the same "strictly better or rejected" rule the two-phase apply loop
    /// used between waves. Must be called between waves for every node updated
    /// in the previous wave.
    #[inline]
    pub fn settle(&self, v: usize) {
        self.cells.settle(v);
    }

    /// Attempts to improve node `v` with the proposal
    /// `(eff, center, src_plus, true_d)`, where `src_plus` is the proposing
    /// frontier node + 1. Returns whether the cell was improved, and if so
    /// whether this was the node's first assignment ever.
    ///
    /// Concurrent callers converge to the minimum proposal under the
    /// `(eff, center, src_plus)` order; the outcome is independent of thread
    /// count and scheduling.
    #[inline]
    pub fn propose(
        &self,
        v: usize,
        eff: i64,
        center: NodeId,
        src_plus: NodeId,
        true_d: Dist,
    ) -> Proposed {
        match self.cells.propose(v, eff, center, src_plus, true_d) {
            None => Proposed::Rejected,
            Some(prev_center) => {
                Proposed::Improved { newly_reached: prev_center == crate::state::NO_CENTER }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{GrowState, EFF_INFINITY, NO_CENTER};

    fn cells_for(n: usize) -> AtomicGrowCells {
        let state = GrowState::new(n);
        let mut cells = AtomicGrowCells::new();
        cells.load_from(&state);
        cells
    }

    #[test]
    fn load_store_roundtrip() {
        let mut state = GrowState::new(3);
        state.set_center(1);
        state.center[2] = 1;
        state.eff[2] = 5;
        state.true_dist[2] = 5;
        state.frozen[0] = true;
        let mut cells = AtomicGrowCells::new();
        cells.load_from(&state);
        assert!(cells.is_frozen(0));
        assert!(!cells.is_frozen(2));
        let mut out = GrowState::new(3);
        out.frozen.copy_from_slice(&state.frozen);
        cells.store_into(&mut out);
        assert_eq!(out.eff, state.eff);
        assert_eq!(out.center, state.center);
        assert_eq!(out.true_dist, state.true_dist);
    }

    #[test]
    fn propose_improves_and_reports_first_reach() {
        let cells = cells_for(2);
        assert_eq!(cells.read(1), (EFF_INFINITY, NO_CENTER, Dist::MAX));
        assert_eq!(cells.propose(1, 10, 0, 1, 10), Proposed::Improved { newly_reached: true });
        assert_eq!(cells.propose(1, 4, 0, 1, 4), Proposed::Improved { newly_reached: false });
        assert_eq!(cells.read(1), (4, 0, 4));
    }

    #[test]
    fn propose_rejects_equal_and_worse_keys() {
        let cells = cells_for(2);
        cells.propose(1, 5, 2, 3, 5);
        // Worse eff, equal key, worse center, worse src: all rejected.
        assert_eq!(cells.propose(1, 6, 0, 1, 6), Proposed::Rejected);
        assert_eq!(cells.propose(1, 5, 2, 3, 99), Proposed::Rejected);
        assert_eq!(cells.propose(1, 5, 3, 1, 5), Proposed::Rejected);
        assert_eq!(cells.propose(1, 5, 2, 4, 5), Proposed::Rejected);
        // Equal (eff, center) from a smaller source wins: the MR reducer keeps
        // the first proposal in shuffle order, which is the smallest source.
        assert!(matches!(cells.propose(1, 5, 2, 2, 7), Proposed::Improved { .. }));
        assert_eq!(cells.read(1), (5, 2, 7));
    }

    #[test]
    fn settle_wins_ties_against_later_waves() {
        let cells = cells_for(2);
        cells.propose(1, 5, 2, 3, 5);
        cells.settle(1);
        // Same (eff, center) from any source now loses: the value predates the
        // wave and the two-phase rule only replaces on strict improvement.
        assert_eq!(cells.propose(1, 5, 2, 1, 5), Proposed::Rejected);
        assert!(matches!(cells.propose(1, 4, 9, 1, 4), Proposed::Improved { .. }));
    }

    #[test]
    fn concurrent_proposals_converge_to_the_minimum() {
        let mut state = GrowState::new(1);
        state.frozen.clear();
        state.frozen.push(false);
        let mut cells = AtomicGrowCells::new();
        cells.load_from(&state);
        // Hammer the single cell from 8 OS threads with interleaved keys; the
        // cell must end at the global minimum (1, 0, src 1) with its payload.
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cells = &cells;
                scope.spawn(move || {
                    for round in 0..1000u32 {
                        let eff = i64::from((round.wrapping_mul(7) + t) % 64) + 1;
                        let center = (round + t) % 16;
                        let src = t + 1;
                        cells.propose(0, eff, center, src, eff as Dist);
                    }
                    // Every thread also fires the global minimum once.
                    cells.propose(0, 1, 0, t + 1, 1);
                });
            }
        });
        assert_eq!(cells.read(0), (1, 0, 1));
        assert_eq!(cells.cells.read_key3(0), 1);
    }
}
