//! `CLUSTER(G, τ)` — Algorithm 1 of the paper.
//!
//! Clusters are grown in stages. In each stage a fresh batch of centers is
//! selected uniformly at random among the still-uncovered nodes (each with
//! probability `γ·τ·log n / |uncovered|`, `γ = 4 ln 2`), and the current
//! clusters — previous ones contracted to their centers plus the new ones —
//! are grown with Δ-growing steps until at least half of the uncovered nodes
//! are reached within distance `Δ`; whenever the goal cannot be met, `Δ` is
//! doubled and the growth continues. Covered nodes are then assigned to their
//! clusters and the stage's coverage is frozen (the logical equivalent of
//! procedure `Contract`; see `contract.rs`). When fewer than `8·τ·log n` nodes
//! remain uncovered, they become singleton clusters.
//!
//! Theorem 1: w.h.p. the procedure produces `O(τ log² n)` clusters of radius
//! `O(R_G(τ) · log n)` using `O(ℓ_{R_G(τ)} · log n)` Δ-growing steps, and the
//! final threshold satisfies `Δ_end = O(R_G(τ))` (Lemma 1).

use cldiam_mr::CostTracker;
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use cldiam_graph::{CancelToken, Dist, NeighborSource, NodeId};

use crate::clustering::Clustering;
use crate::config::ClusterConfig;
use crate::growing::{partial_growth_cancel, GrowScratch};
use crate::state::GrowState;

/// The paper's constant `γ = 4 ln 2` used in the center-selection probability.
pub const GAMMA: f64 = 2.772_588_722_239_781;

/// Runs `CLUSTER(G, τ)` and returns the resulting clustering.
///
/// The decomposition is deterministic given `config.seed`. Works on connected
/// and disconnected graphs alike (nodes unreachable from every selected center
/// end up as singleton clusters, matching the paper's convention of treating
/// components independently).
pub fn cluster<G: NeighborSource>(graph: &G, config: &ClusterConfig) -> Clustering {
    cluster_cancel(graph, config, &CancelToken::never())
}

/// [`cluster`] with a cooperative [`CancelToken`], polled at stage and
/// Δ-growing wave boundaries. A cancelled run degrades gracefully: whatever
/// the completed stages covered keeps its clusters, every still-uncovered
/// node becomes a singleton, and the result is always a *valid* clustering
/// (per-node distances remain genuine upper bounds), just coarser than an
/// uninterrupted run's.
pub fn cluster_cancel<G: NeighborSource>(
    graph: &G,
    config: &ClusterConfig,
    cancel: &CancelToken,
) -> Clustering {
    let tracker = CostTracker::new();
    let mut scratch = GrowScratch::with_capacity(graph.num_nodes());
    let state = cluster_state(graph, config, &tracker, &mut scratch, cancel);
    finalize(graph, state, &tracker)
}

/// Internal driver shared with `CLUSTER2`: runs the staged decomposition and
/// returns the raw grow-state plus bookkeeping. The caller provides the
/// growing scratch, so every stage and every wave of the decomposition reuses
/// the same frontier buffers and atomic cells.
pub(crate) fn cluster_state<G: NeighborSource>(
    graph: &G,
    config: &ClusterConfig,
    tracker: &CostTracker,
    scratch: &mut GrowScratch,
    cancel: &CancelToken,
) -> ClusterRun {
    let n = graph.num_nodes();
    let mut run = ClusterRun {
        state: GrowState::new(n),
        delta: config.initial_delta.resolve(graph),
        growing_steps: 0,
        stages: 0,
    };
    if n == 0 {
        return run;
    }
    let log_n = (n.max(2) as f64).log2();
    let stop_threshold = (8.0 * config.tau as f64 * log_n).ceil() as usize;
    // Once Δ exceeds the total edge weight no further doubling can help:
    // every node reachable from a source has been reached.
    let delta_cap: Dist = graph.total_weight().saturating_mul(2).max(2);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);

    loop {
        // Stage boundary: a cancelled run keeps the stages already frozen
        // and falls through to the singleton fallback below, which is a
        // valid (coarse) clustering of whatever remains.
        if cancel.checkpoint() {
            break;
        }
        let uncovered = run.state.uncovered_nodes();
        if uncovered.is_empty() || uncovered.len() < stop_threshold {
            break;
        }
        run.stages += 1;

        // Center selection: each uncovered node independently with probability
        // γ·τ·log n / |uncovered| (capped at 1).
        let p = (GAMMA * config.tau as f64 * log_n / uncovered.len() as f64).min(1.0);
        let mut new_centers: Vec<NodeId> =
            uncovered.iter().copied().filter(|_| rng.gen::<f64>() < p).collect();
        if new_centers.is_empty() {
            // The expected batch size is Θ(τ log n) ≫ 1, so an empty batch is
            // vanishingly unlikely; force one center to guarantee progress.
            new_centers.push(uncovered[rng.gen_range(0..uncovered.len())]);
        }

        // Stage initialization (the pseudocode's re-initialization of the
        // states): previously covered nodes act as distance-0 sources for
        // their clusters — the logical form of Contract — and new centers
        // start their own clusters.
        run.state.reset_unfrozen();
        for u in 0..n as NodeId {
            if run.state.frozen[u as usize] {
                run.state.set_source(u, 0);
            }
        }
        for &c in &new_centers {
            run.state.set_center(c);
        }
        // One round for selection + state initialization.
        tracker.add_round();
        tracker.add_messages(uncovered.len() as u64);

        // Inner loop: grow until at least half of the uncovered nodes are
        // within distance Δ, doubling Δ whenever the goal cannot be met.
        let target = uncovered.len().div_ceil(2);
        loop {
            let outcome = partial_growth_cancel(
                graph,
                run.delta,
                run.delta,
                &mut run.state,
                Some(target),
                config.max_growing_steps_per_phase,
                Some(tracker),
                scratch,
                cancel,
            );
            run.growing_steps += outcome.steps;
            if outcome.reached_unfrozen >= target {
                break;
            }
            // A cancelled growth missed its target on purpose: accept the
            // partial coverage instead of doubling Δ forever after it.
            if cancel.is_cancelled() {
                break;
            }
            if run.delta >= delta_cap {
                // Nothing reachable is left within any budget (disconnected
                // remainder); stop doubling and accept the partial coverage.
                break;
            }
            run.delta = run.delta.saturating_mul(2).min(delta_cap);
            tracker.add_round();
        }

        // End of stage: assign reached nodes to their clusters (Contract).
        run.state.freeze_reached();
        tracker.add_round();
    }

    // Remaining uncovered nodes become singleton clusters.
    for u in run.state.uncovered_nodes() {
        run.state.set_center(u);
    }
    run.state.freeze_reached();
    tracker.add_round();
    run
}

/// Raw output of the staged decomposition, before packaging.
pub(crate) struct ClusterRun {
    pub(crate) state: GrowState,
    pub(crate) delta: Dist,
    pub(crate) growing_steps: u64,
    pub(crate) stages: u64,
}

/// Packages a completed grow-state into a [`Clustering`].
pub(crate) fn finalize<G: NeighborSource>(
    graph: &G,
    run: ClusterRun,
    tracker: &CostTracker,
) -> Clustering {
    let n = graph.num_nodes();
    let mut centers: Vec<NodeId> =
        (0..n as NodeId).filter(|&u| run.state.center[u as usize] == u).collect();
    centers.sort_unstable();
    let assignment = run.state.center.clone();
    let dist: Vec<Dist> =
        run.state.true_dist.iter().map(|&d| if d == Dist::MAX { 0 } else { d }).collect();
    let radius = dist.iter().copied().max().unwrap_or(0);
    Clustering {
        assignment,
        dist,
        centers,
        radius,
        delta_end: run.delta,
        growing_steps: run.growing_steps,
        stages: run.stages,
        metrics: tracker.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialDelta;
    use cldiam_gen::{mesh, path, preferential_attachment, road_network, WeightModel};
    use cldiam_graph::largest_component;
    use cldiam_sssp::dijkstra;

    fn default_config(tau: usize, seed: u64) -> ClusterConfig {
        ClusterConfig::default().with_tau(tau).with_seed(seed)
    }

    /// Distances recorded by the clustering must upper-bound the true
    /// distances to the assigned centers.
    fn assert_distances_are_upper_bounds(graph: &cldiam_graph::Graph, clustering: &Clustering) {
        for &c in &clustering.centers {
            let sp = dijkstra(graph, c);
            for u in 0..graph.num_nodes() {
                if clustering.assignment[u] == c {
                    assert!(
                        clustering.dist[u] >= sp.dist[u],
                        "node {u}: recorded {} < true {}",
                        clustering.dist[u],
                        sp.dist[u]
                    );
                }
            }
        }
    }

    #[test]
    fn clusters_cover_every_node_on_mesh() {
        let g = mesh(16, WeightModel::UniformUnit, 3);
        let clustering = cluster(&g, &default_config(4, 7));
        clustering.validate(&g).expect("valid clustering");
        assert!(clustering.num_clusters() < g.num_nodes());
        assert!(clustering.num_clusters() >= 1);
        assert_distances_are_upper_bounds(&g, &clustering);
    }

    #[test]
    fn works_on_road_networks_with_original_weights() {
        let (g, _) = largest_component(&road_network(25, 25, 5));
        let clustering = cluster(&g, &default_config(4, 11));
        clustering.validate(&g).expect("valid clustering");
        assert_distances_are_upper_bounds(&g, &clustering);
        assert!(clustering.radius > 0);
    }

    #[test]
    fn works_on_power_law_graphs() {
        let g = preferential_attachment(800, 3, WeightModel::UniformUnit, 2);
        let clustering = cluster(&g, &default_config(4, 3));
        clustering.validate(&g).expect("valid clustering");
        assert_distances_are_upper_bounds(&g, &clustering);
    }

    #[test]
    fn is_deterministic_in_the_seed() {
        // 400 nodes with τ = 2 so the staged growth actually runs (the
        // stopping threshold 8·τ·log n is well below n).
        let g = mesh(20, WeightModel::UniformUnit, 3);
        let a = cluster(&g, &default_config(2, 9));
        let b = cluster(&g, &default_config(2, 9));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.dist, b.dist);
        let c = cluster(&g, &default_config(2, 10));
        assert_ne!(a.assignment, c.assignment);
    }

    #[test]
    fn larger_tau_gives_more_clusters_and_smaller_radius() {
        let g = mesh(24, WeightModel::UniformUnit, 3);
        let coarse = cluster(&g, &default_config(1, 5));
        let fine = cluster(&g, &default_config(16, 5));
        assert!(fine.num_clusters() > coarse.num_clusters());
        assert!(fine.radius <= coarse.radius);
    }

    #[test]
    fn handles_disconnected_graphs_with_singletons() {
        let g = cldiam_graph::Graph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (4, 5, 3)]);
        let clustering = cluster(&g, &default_config(1, 1));
        clustering.validate(&g).expect("valid clustering");
        // Node 3 is isolated: it must be its own (singleton) cluster.
        assert_eq!(clustering.assignment[3], 3);
        assert_eq!(clustering.dist[3], 0);
    }

    #[test]
    fn handles_tiny_graphs() {
        let empty = cldiam_graph::Graph::empty(0);
        let c0 = cluster(&empty, &default_config(2, 1));
        assert_eq!(c0.num_clusters(), 0);
        let single = cldiam_graph::Graph::empty(1);
        let c1 = cluster(&single, &default_config(2, 1));
        assert_eq!(c1.num_clusters(), 1);
        assert_eq!(c1.assignment, vec![0]);
        let pair = path(2, 5);
        let c2 = cluster(&pair, &default_config(2, 1));
        c2.validate(&pair).expect("valid clustering");
    }

    #[test]
    fn small_tau_on_small_graph_skips_staged_growth() {
        // When n < 8·τ·log n every node becomes a singleton immediately.
        let g = path(10, 1);
        let clustering = cluster(&g, &default_config(64, 1));
        assert_eq!(clustering.num_clusters(), 10);
        assert_eq!(clustering.radius, 0);
        assert_eq!(clustering.stages, 0);
    }

    #[test]
    fn growing_steps_and_rounds_are_reported() {
        let g = mesh(20, WeightModel::UniformUnit, 4);
        let clustering = cluster(&g, &default_config(2, 6));
        assert!(clustering.growing_steps > 0);
        assert!(clustering.metrics.rounds >= clustering.growing_steps);
        assert!(clustering.metrics.work() > 0);
        assert!(clustering.stages >= 1);
    }

    #[test]
    fn delta_end_tracks_initial_policy() {
        let g = mesh(16, WeightModel::UniformUnit, 8);
        let from_min =
            cluster(&g, &default_config(2, 3).with_initial_delta(InitialDelta::MinWeight));
        let from_avg =
            cluster(&g, &default_config(2, 3).with_initial_delta(InitialDelta::AvgWeight));
        // Starting from the minimum weight requires more doublings but ends in
        // the same ballpark; both must exceed their starting value.
        assert!(from_min.delta_end >= Dist::from(g.min_weight().unwrap()));
        assert!(from_avg.delta_end >= Dist::from(g.avg_weight().unwrap()));
    }

    #[test]
    fn step_cap_limits_growing_steps_per_phase() {
        let g = mesh(20, WeightModel::UniformUnit, 4);
        let capped = cluster(&g, &default_config(2, 6).with_step_cap(2));
        capped.validate(&g).expect("valid clustering");
        // With a cap the algorithm still terminates and covers every node.
        assert_eq!(capped.assignment.len(), g.num_nodes());
    }

    #[test]
    fn cancelled_cluster_is_still_a_valid_clustering() {
        // A pre-cancelled token degrades to all-singletons; a tight check
        // budget stops somewhere in the middle. Both must validate and keep
        // recorded distances as genuine upper bounds.
        let g = mesh(14, WeightModel::UniformUnit, 3);
        let pre = CancelToken::never();
        pre.cancel();
        let degenerate = cluster_cancel(&g, &default_config(2, 5), &pre);
        degenerate.validate(&g).expect("valid clustering");
        assert_eq!(degenerate.num_clusters(), g.num_nodes());
        assert_eq!(degenerate.radius, 0);

        let partial = cluster_cancel(&g, &default_config(2, 5), &CancelToken::with_check_limit(4));
        partial.validate(&g).expect("valid clustering");
        assert_distances_are_upper_bounds(&g, &partial);
    }

    #[test]
    fn check_limit_cancellation_is_deterministic() {
        let g = mesh(12, WeightModel::UniformUnit, 8);
        let first = cluster_cancel(&g, &default_config(2, 2), &CancelToken::with_check_limit(5));
        for _ in 0..4 {
            let again =
                cluster_cancel(&g, &default_config(2, 2), &CancelToken::with_check_limit(5));
            assert_eq!(first.assignment, again.assignment);
            assert_eq!(first.dist, again.dist);
            assert_eq!(first.radius, again.radius);
        }
    }
}
