//! Configuration of the clustering / diameter-approximation pipeline.

use cldiam_graph::{Dist, NeighborSource};

/// Policy for the initial value of the growth threshold `Δ`.
///
/// The pseudocode of `CLUSTER` starts from the minimum edge weight and doubles
/// until the coverage goal is met. Section 5 shows that starting from the
/// *average* edge weight reduces the number of doublings (hence rounds)
/// without hurting the approximation, and that starting from a value as large
/// as the diameter can inflate the approximation by 2.5×; the experiments all
/// use the average-weight rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialDelta {
    /// The pseudocode default: the minimum edge weight.
    MinWeight,
    /// The paper's practical choice: the average edge weight.
    AvgWeight,
    /// A fixed, caller-supplied value (used by the §5 sensitivity experiment).
    Fixed(Dist),
}

impl InitialDelta {
    /// Resolves the policy against a concrete graph (always at least 1).
    pub fn resolve<G: NeighborSource>(&self, graph: &G) -> Dist {
        match *self {
            InitialDelta::MinWeight => Dist::from(graph.min_weight().unwrap_or(1)).max(1),
            InitialDelta::AvgWeight => Dist::from(graph.avg_weight().unwrap_or(1)).max(1),
            InitialDelta::Fixed(v) => v.max(1),
        }
    }
}

/// Configuration of `CLUSTER` / `CLUSTER2` and of the `CL-DIAM` driver.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// The parameter `τ`: the batch size of the progressive center selection.
    /// `CLUSTER` produces `O(τ log² n)` clusters; larger `τ` means more
    /// clusters, a smaller radius and fewer growing steps, but a larger
    /// quotient graph.
    pub tau: usize,
    /// Initial value of the growth threshold `Δ`.
    pub initial_delta: InitialDelta,
    /// Seed of the random center selection (the algorithm is deterministic
    /// given the seed).
    pub seed: u64,
    /// Optional cap on the number of Δ-growing steps per `PartialGrowth`
    /// invocation (the `O(n/τ)` limit discussed at the end of §4.1 for skewed
    /// topologies). `None` means unlimited, as in Algorithm 1.
    pub max_growing_steps_per_phase: Option<usize>,
    /// When `true`, `CL-DIAM` decomposes the graph with `CLUSTER2`
    /// (Algorithm 2) instead of `CLUSTER`; the paper's experiments use
    /// `CLUSTER` because the refined decomposition "does not seem to provide a
    /// significant improvement in practice".
    pub use_cluster2: bool,
    /// If the quotient graph has at most this many nodes its diameter is
    /// computed exactly (all-pairs Dijkstra); above it, an iterated
    /// farthest-sweep estimate is used, mirroring the paper's requirement that
    /// the quotient fit in one reducer's memory.
    pub exact_quotient_threshold: usize,
    /// Number of farthest-node sweeps for the approximate quotient diameter.
    pub quotient_sweeps: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tau: 64,
            initial_delta: InitialDelta::AvgWeight,
            seed: 1,
            max_growing_steps_per_phase: None,
            use_cluster2: false,
            exact_quotient_threshold: 2_000,
            quotient_sweeps: 8,
        }
    }
}

impl ClusterConfig {
    /// Sets `τ`.
    pub fn with_tau(mut self, tau: usize) -> Self {
        self.tau = tau.max(1);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initial-`Δ` policy.
    pub fn with_initial_delta(mut self, policy: InitialDelta) -> Self {
        self.initial_delta = policy;
        self
    }

    /// Caps the number of growing steps per `PartialGrowth` call (§4.1).
    pub fn with_step_cap(mut self, cap: usize) -> Self {
        self.max_growing_steps_per_phase = Some(cap.max(1));
        self
    }

    /// Switches the decomposition to `CLUSTER2`.
    pub fn with_cluster2(mut self, enable: bool) -> Self {
        self.use_cluster2 = enable;
        self
    }

    /// Chooses `τ` so that the expected number of clusters (≈ `τ log² n`, the
    /// Theorem 1 bound) stays below `target_quotient_nodes`, mimicking the
    /// paper's rule "τ was set to yield a number of nodes in the quotient
    /// graph ≤ 100,000".
    pub fn tau_for_quotient_target(num_nodes: usize, target_quotient_nodes: usize) -> usize {
        if num_nodes <= 1 {
            return 1;
        }
        let log_n = (num_nodes as f64).log2().max(1.0);
        let tau = target_quotient_nodes as f64 / (log_n * log_n);
        tau.max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::Graph;

    #[test]
    fn initial_delta_resolution() {
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 30)]);
        assert_eq!(InitialDelta::MinWeight.resolve(&g), 10);
        assert_eq!(InitialDelta::AvgWeight.resolve(&g), 20);
        assert_eq!(InitialDelta::Fixed(7).resolve(&g), 7);
        assert_eq!(InitialDelta::Fixed(0).resolve(&g), 1);
        // Edgeless graph falls back to 1.
        assert_eq!(InitialDelta::AvgWeight.resolve(&Graph::empty(4)), 1);
    }

    #[test]
    fn builder_methods_compose() {
        let c = ClusterConfig::default()
            .with_tau(10)
            .with_seed(99)
            .with_initial_delta(InitialDelta::MinWeight)
            .with_step_cap(5)
            .with_cluster2(true);
        assert_eq!(c.tau, 10);
        assert_eq!(c.seed, 99);
        assert_eq!(c.initial_delta, InitialDelta::MinWeight);
        assert_eq!(c.max_growing_steps_per_phase, Some(5));
        assert!(c.use_cluster2);
    }

    #[test]
    fn tau_clamped_to_one() {
        assert_eq!(ClusterConfig::default().with_tau(0).tau, 1);
    }

    #[test]
    fn tau_for_quotient_target_scales() {
        let small = ClusterConfig::tau_for_quotient_target(1 << 10, 1000);
        let large = ClusterConfig::tau_for_quotient_target(1 << 20, 1000);
        assert!(small >= large, "small-n tau {small} vs large-n tau {large}");
        assert!(small >= 1 && large >= 1);
        assert_eq!(ClusterConfig::tau_for_quotient_target(1, 100), 1);
    }
}
