//! `CLUSTER2(G, τ)` — Algorithm 2 of the paper.
//!
//! The refined decomposition used for the approximation analysis (Theorem 2).
//! It first runs `CLUSTER(G, τ)` only to learn the radius `R_CL(τ)`, then
//! performs `log n` iterations. In iteration `i`, uncovered nodes are selected
//! as new centers independently with probability `2^i / n` (so the selection
//! pressure doubles every iteration and the last iteration selects everything
//! still uncovered), clusters are grown with threshold `2·R_CL(τ)` until no
//! state changes (`PartialGrowth2`), and the graph is contracted with weight
//! rescaling (`Contract2`): a boundary edge `(u, v)` re-attaches to the
//! center with weight `d_u + w(u, v) − 2·R_CL(τ)`.
//!
//! The rescaling gives CLUSTER2 its key property: a center selected at
//! iteration `i₀` needs exactly `⌈d / (2·R_CL)⌉` iterations to reach a node at
//! light distance `d`, so late centers cannot "catch up" to nodes that earlier
//! clusters are about to reach — the ingredient that bounds how many clusters
//! can intersect a shortest path in the proof of Theorem 2.
//!
//! As in `cluster.rs`, contraction is performed logically: covered nodes act
//! as growth sources whose *effective* credit at iteration `i` is
//! `D(u) − 2·R_CL·(i − i₀)`, where `D(u)` is the accumulated original-weight
//! distance from the center and `i₀` the center's creation iteration. This is
//! arithmetically identical to relaxing over the rescaled edges of the
//! physically contracted graph, while keeping `D(u)` available as a genuine
//! distance upper bound for the quotient construction.

use cldiam_mr::CostTracker;
use rand::{Rng, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use cldiam_graph::{CancelToken, Dist, NeighborSource, NodeId};

use crate::cluster::{cluster_state, finalize, ClusterRun};
use crate::clustering::Clustering;
use crate::config::ClusterConfig;
use crate::growing::{partial_growth2_cancel, GrowScratch};
use crate::state::GrowState;

/// Runs `CLUSTER2(G, τ)` and returns the resulting clustering.
///
/// The preliminary `CLUSTER` call (used only for its radius estimate) runs
/// with the same configuration; its cost is included in the returned metrics.
pub fn cluster2<G: NeighborSource>(graph: &G, config: &ClusterConfig) -> Clustering {
    cluster2_cancel(graph, config, &CancelToken::never())
}

/// [`cluster2`] with a cooperative [`CancelToken`], polled at iteration and
/// Δ-growing wave boundaries (the preliminary `CLUSTER` run shares the same
/// token). Cancellation degrades gracefully exactly as in
/// [`crate::cluster::cluster_cancel`]: completed iterations keep their
/// clusters and the rest become singletons, which is always valid.
pub fn cluster2_cancel<G: NeighborSource>(
    graph: &G,
    config: &ClusterConfig,
    cancel: &CancelToken,
) -> Clustering {
    let n = graph.num_nodes();
    let tracker = CostTracker::new();
    if n == 0 {
        return finalize(
            graph,
            ClusterRun { state: GrowState::new(0), delta: 1, growing_steps: 0, stages: 0 },
            &tracker,
        );
    }

    // One scratch serves the preliminary CLUSTER run and every iteration.
    let mut scratch = GrowScratch::with_capacity(n);

    // Step 1: learn R_CL(τ) from a CLUSTER run.
    let preliminary = {
        let pre_tracker = CostTracker::new();
        let run = cluster_state(graph, config, &pre_tracker, &mut scratch, cancel);
        finalize(graph, run, &pre_tracker)
    };
    let r_cl = preliminary.radius.max(1);
    let threshold: Dist = r_cl.saturating_mul(2);
    tracker.add_rounds(preliminary.metrics.rounds);
    tracker.add_messages(preliminary.metrics.messages);
    tracker.add_node_updates(preliminary.metrics.node_updates);

    // Step 2: log n iterations with doubling selection probability.
    let iterations = (n.max(2) as f64).log2().ceil() as u32;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(config.seed.wrapping_add(0x5EED));
    let mut state = GrowState::new(n);
    // Creation iteration of each center, indexed by center node id.
    let mut creation_iter: Vec<u32> = vec![0; n];
    let mut growing_steps = 0u64;

    for i in 1..=iterations {
        // Iteration boundary: stop here and let the singleton fallback
        // below cover whatever the completed iterations did not.
        if cancel.checkpoint() {
            break;
        }
        let uncovered = state.uncovered_nodes();
        if uncovered.is_empty() {
            break;
        }
        let p = ((1u64 << i.min(63)) as f64 / n as f64).min(1.0);
        let mut new_centers: Vec<NodeId> =
            uncovered.iter().copied().filter(|_| rng.gen::<f64>() < p).collect();
        if i == iterations && new_centers.len() < uncovered.len() {
            // The last iteration selects every uncovered node (p ≥ 1); keep
            // that guarantee explicit even under floating-point rounding.
            new_centers = uncovered.clone();
        }

        state.reset_unfrozen();
        // Covered nodes become growth sources with their rescaled credit.
        for u in 0..n {
            if state.frozen[u] {
                let center = state.center[u];
                let elapsed = Dist::from(i - 1 - creation_iter[center as usize]);
                let credit = state.true_dist[u] as i64 - (threshold.saturating_mul(elapsed)) as i64;
                state.set_source(u as NodeId, credit);
            }
        }
        for &c in &new_centers {
            state.set_center(c);
            creation_iter[c as usize] = i - 1;
        }
        tracker.add_round();
        tracker.add_messages(uncovered.len() as u64);

        // PartialGrowth2: grow until no state is updated.
        let outcome = partial_growth2_cancel(
            graph,
            threshold,
            threshold,
            &mut state,
            config.max_growing_steps_per_phase,
            Some(&tracker),
            &mut scratch,
            cancel,
        );
        growing_steps += outcome.steps;

        // Contract2 (logical): freeze everything reached in this iteration.
        state.freeze_reached();
        tracker.add_round();
    }

    // Any node still uncovered (unreachable from every center within the
    // light-edge constraint, e.g. separated by edges heavier than 2·R_CL)
    // becomes a singleton cluster.
    for u in state.uncovered_nodes() {
        state.set_center(u);
    }
    state.freeze_reached();

    let run = ClusterRun {
        state,
        delta: threshold,
        growing_steps: growing_steps + preliminary.growing_steps,
        stages: preliminary.stages + u64::from(iterations),
    };
    finalize(graph, run, &tracker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use cldiam_gen::{mesh, road_network, WeightModel};
    use cldiam_graph::largest_component;
    use cldiam_sssp::dijkstra;

    fn config(tau: usize, seed: u64) -> ClusterConfig {
        ClusterConfig::default().with_tau(tau).with_seed(seed)
    }

    #[test]
    fn produces_a_valid_clustering_on_mesh() {
        let g = mesh(14, WeightModel::UniformUnit, 3);
        let clustering = cluster2(&g, &config(2, 5));
        clustering.validate(&g).expect("valid clustering");
        assert!(clustering.num_clusters() >= 1);
        assert!(clustering.num_clusters() <= g.num_nodes());
    }

    #[test]
    fn distances_are_upper_bounds_on_true_distances() {
        let g = mesh(12, WeightModel::UniformUnit, 9);
        let clustering = cluster2(&g, &config(2, 2));
        for &c in &clustering.centers {
            let sp = dijkstra(&g, c);
            for u in 0..g.num_nodes() {
                if clustering.assignment[u] == c {
                    assert!(
                        clustering.dist[u] >= sp.dist[u],
                        "node {u}: recorded {} < true {}",
                        clustering.dist[u],
                        sp.dist[u]
                    );
                }
            }
        }
    }

    #[test]
    fn is_deterministic_in_the_seed() {
        let g = mesh(10, WeightModel::UniformUnit, 1);
        let a = cluster2(&g, &config(2, 7));
        let b = cluster2(&g, &config(2, 7));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn works_on_road_networks() {
        let (g, _) = largest_component(&road_network(18, 18, 4));
        let clustering = cluster2(&g, &config(2, 3));
        clustering.validate(&g).expect("valid clustering");
    }

    #[test]
    fn cluster2_radius_is_bounded_by_rcl_log_n() {
        // Lemma 2: the radius of CLUSTER2 is O(R_CL · log n) — each of the
        // ≤ log n iterations grows a cluster by at most 2·R_CL of additional
        // light distance.
        let g = mesh(16, WeightModel::UniformUnit, 6);
        let c1 = cluster(&g, &config(2, 9));
        let c2 = cluster2(&g, &config(2, 9));
        let log_n = (g.num_nodes() as f64).log2().ceil() as u64;
        let bound = 2 * c1.radius.max(1) * (log_n + 1);
        assert!(
            c2.radius <= bound,
            "cluster2 radius {} exceeds 2·R_CL·(log n + 1) = {bound}",
            c2.radius
        );
        assert!(c2.num_clusters() >= 1);
    }

    #[test]
    fn handles_empty_and_singleton_graphs() {
        assert_eq!(cluster2(&cldiam_graph::Graph::empty(0), &config(1, 1)).num_clusters(), 0);
        let one = cluster2(&cldiam_graph::Graph::empty(1), &config(1, 1));
        assert_eq!(one.num_clusters(), 1);
        assert_eq!(one.assignment, vec![0]);
    }

    #[test]
    fn cancelled_cluster2_is_still_a_valid_clustering() {
        let g = mesh(12, WeightModel::UniformUnit, 6);
        let pre = CancelToken::never();
        pre.cancel();
        let degenerate = cluster2_cancel(&g, &config(2, 4), &pre);
        degenerate.validate(&g).expect("valid clustering");
        assert_eq!(degenerate.num_clusters(), g.num_nodes());

        let partial = cluster2_cancel(&g, &config(2, 4), &CancelToken::with_check_limit(6));
        partial.validate(&g).expect("valid clustering");
        let again = cluster2_cancel(&g, &config(2, 4), &CancelToken::with_check_limit(6));
        assert_eq!(partial.assignment, again.assignment);
        assert_eq!(partial.dist, again.dist);
    }
}
