//! A literal MapReduce formulation of the Δ-growing step, executed on the
//! simulated engine of `cldiam-mr`.
//!
//! Section 4.1 argues that a Δ-growing step can be implemented with a constant
//! number of rounds of basic key-value primitives, regardless of how many
//! clusters are active. This module spells that mapping out: the map phase
//! emits one relaxation proposal per light edge of the frontier, keyed by the
//! target node; the reduce phase keeps, per target, the proposal with the
//! smallest distance (ties broken by the smaller center index); the output is
//! then joined with the node states. The result is bit-for-bit identical to
//! the shared-memory fast path in [`crate::growing`], which the tests verify —
//! the fast path simply avoids materializing the key-value pairs.

use cldiam_mr::MrEngine;

use cldiam_graph::{Dist, Graph, NodeId};

use crate::state::{eff_below_threshold, eff_within_threshold, GrowState, NO_CENTER};

/// One relaxation proposal shuffled to the reducer responsible for `target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Proposal {
    /// Proposed effective distance (threshold-bounded).
    pub eff: i64,
    /// Proposing cluster center.
    pub center: NodeId,
    /// Proposed true-distance upper bound.
    pub true_dist: Dist,
}

impl Proposal {
    fn better_than(&self, other: &Proposal) -> bool {
        (self.eff, self.center) < (other.eff, other.center)
    }
}

/// Executes one Δ-growing step as a MapReduce round on `engine`.
///
/// Returns the nodes whose state changed. The engine charges one round, the
/// proposals as messages and the nodes whose state changed as node updates —
/// the exact counters the in-place shared-memory implementation reports in
/// its `StepStats`; the equivalence proptests pin the two executions to
/// identical states *and* identical charges.
pub fn mr_delta_growing_step(
    engine: &MrEngine,
    graph: &Graph,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    frontier: &[NodeId],
) -> Vec<NodeId> {
    // Map phase: emit (target, proposal) for every admissible relaxation.
    // Reserve for the frontier's full degree sum (every light edge can emit).
    let arc_bound: usize = frontier.iter().map(|&u| graph.degree(u)).sum();
    let mut pairs: Vec<(NodeId, Proposal)> = Vec::with_capacity(arc_bound);
    for &u in frontier {
        let eff_u = state.eff[u as usize];
        let center_u = state.center[u as usize];
        if !eff_below_threshold(eff_u, threshold) || center_u == NO_CENTER {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            let wd = Dist::from(w);
            if wd > light_limit || state.frozen[v as usize] {
                continue;
            }
            let cand = eff_u.saturating_add(wd as i64);
            if eff_within_threshold(cand, threshold) {
                pairs.push((
                    v,
                    Proposal {
                        eff: cand,
                        center: center_u,
                        true_dist: state.true_dist[u as usize].saturating_add(wd),
                    },
                ));
            }
        }
    }

    // Reduce phase: keep the best proposal per target node.
    let winners: Vec<(NodeId, Proposal)> = engine.run_round(pairs, |&target, proposals| {
        let best = proposals
            .into_iter()
            .reduce(|a, b| if b.better_than(&a) { b } else { a })
            .expect("reducer is only called on non-empty groups");
        vec![(target, best)]
    });

    // Join with the node states (in a real deployment this is the same round's
    // reducer over the state table; here it is a local pass).
    let mut updated = Vec::new();
    let mut updates = 0u64;
    for (v, proposal) in winners {
        let vi = v as usize;
        let current = Proposal {
            eff: state.eff[vi],
            center: state.center[vi],
            true_dist: state.true_dist[vi],
        };
        if proposal.better_than(&current) {
            state.eff[vi] = proposal.eff;
            state.center[vi] = proposal.center;
            state.true_dist[vi] = proposal.true_dist;
            updated.push(v);
            updates += 1;
        }
    }
    engine.tracker().add_node_updates(updates);
    updated.sort_unstable();
    updated
}

/// Runs Δ-growing steps on the engine until no state changes (the MapReduce
/// analogue of [`crate::growing::partial_growth`] without an early-stop
/// target). Returns the number of rounds executed.
pub fn mr_partial_growth(
    engine: &MrEngine,
    graph: &Graph,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
) -> u64 {
    let mut frontier: Vec<NodeId> = (0..state.len() as NodeId)
        .filter(|&u| {
            eff_below_threshold(state.eff[u as usize], threshold)
                && state.center[u as usize] != NO_CENTER
        })
        .collect();
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        frontier = mr_delta_growing_step(engine, graph, threshold, light_limit, state, &frontier);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growing::{partial_growth, GrowScratch};
    use cldiam_gen::{mesh, road_network, WeightModel};
    use cldiam_mr::MrConfig;

    fn engines() -> MrEngine {
        MrEngine::new(MrConfig::with_machines(4))
    }

    fn assert_equivalent(graph: &Graph, centers: &[NodeId], threshold: Dist, light_limit: Dist) {
        let mut fast = GrowState::new(graph.num_nodes());
        let mut slow = GrowState::new(graph.num_nodes());
        for &c in centers {
            fast.set_center(c);
            slow.set_center(c);
        }
        let mut scratch = GrowScratch::new();
        partial_growth(graph, threshold, light_limit, &mut fast, None, None, None, &mut scratch);
        let engine = engines();
        mr_partial_growth(&engine, graph, threshold, light_limit, &mut slow);
        assert_eq!(fast.eff, slow.eff);
        assert_eq!(fast.center, slow.center);
        assert_eq!(fast.true_dist, slow.true_dist);
        assert!(engine.metrics().rounds > 0);
    }

    #[test]
    fn matches_fast_path_on_mesh() {
        let g = mesh(8, WeightModel::UniformUnit, 3);
        assert_equivalent(&g, &[0, 37], 400_000, 400_000);
    }

    #[test]
    fn matches_fast_path_on_road_network() {
        let g = road_network(10, 10, 2);
        assert_equivalent(&g, &[0, 50, 99], 1_200, 1_200);
    }

    #[test]
    fn single_step_reports_updates_to_tracker() {
        let g = cldiam_gen::weighted_path(&[1, 1, 1]);
        let engine = engines();
        let mut state = GrowState::new(4);
        state.set_center(0);
        let updated = mr_delta_growing_step(&engine, &g, 10, 10, &mut state, &[0]);
        assert_eq!(updated, vec![1]);
        let metrics = engine.metrics();
        assert_eq!(metrics.rounds, 1);
        assert_eq!(metrics.node_updates, 1);
        assert!(metrics.messages >= 1);
    }

    #[test]
    fn frontier_with_no_admissible_edges_stops() {
        let g = cldiam_gen::weighted_path(&[5, 5]);
        let engine = engines();
        let mut state = GrowState::new(3);
        state.set_center(0);
        // Threshold 3 makes every edge heavy: nothing to do.
        let rounds = mr_partial_growth(&engine, &g, 3, 3, &mut state);
        assert_eq!(rounds, 1);
        assert_eq!(state.center[1], NO_CENTER);
    }
}
