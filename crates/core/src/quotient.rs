//! The weighted quotient graph of a clustering (Section 4).
//!
//! Nodes of the quotient graph correspond to clusters. For every edge
//! `(u, v)` of the original graph whose endpoints lie in different clusters,
//! the quotient contains an edge between those clusters with weight
//! `w(u, v) + d_u + d_v`; among parallel edges only the lightest is kept. The
//! diameter of the original graph is then estimated as
//! `Φ_approx(G) = Φ(G_C) + 2·R`, which is never below the true diameter when
//! the `d_u` are genuine distance upper bounds.

use rayon::prelude::*;

use cldiam_graph::{Dist, Graph, GraphBuilder, NeighborSource, NodeId, Weight};

use crate::clustering::Clustering;

/// The quotient graph of a clustering, together with the cluster-center
/// labels of its nodes.
#[derive(Clone, Debug)]
pub struct QuotientGraph {
    /// The quotient graph itself: node `i` represents the cluster centered at
    /// `cluster_centers[i]`.
    pub graph: Graph,
    /// Original center node of every quotient node.
    pub cluster_centers: Vec<NodeId>,
    /// Number of original inter-cluster edges inspected (before keeping only
    /// the minimum-weight parallel edge per cluster pair).
    pub boundary_edges: usize,
}

impl QuotientGraph {
    /// Quotient node id of the cluster centered at `center`, if any.
    pub fn node_of_center(&self, center: NodeId) -> Option<NodeId> {
        self.cluster_centers.binary_search(&center).ok().map(|i| i as NodeId)
    }
}

/// Builds the weighted quotient graph of `clustering` over `graph`.
///
/// Quotient edge weights are clamped to the maximum representable edge weight
/// (`u32::MAX`); with the fixed-point scale used in this workspace that limit
/// is far beyond any benchmark instance.
///
/// Node ids are dense, so the center → quotient-node index is a plain `Vec`
/// lookup instead of a hash map, and the boundary edges are gathered with a
/// parallel scan over the CSR adjacency (each undirected edge inspected once,
/// from its smaller endpoint). Parallel quotient edges are collapsed to the
/// lightest by the builder's parallel edge sort — no hash grouping anywhere
/// on this path.
pub fn quotient_graph<G: NeighborSource>(graph: &G, clustering: &Clustering) -> QuotientGraph {
    let centers = clustering.centers.clone();
    let mut quotient_id: Vec<NodeId> = vec![NodeId::MAX; graph.num_nodes()];
    for (i, &c) in centers.iter().enumerate() {
        quotient_id[c as usize] = i as NodeId;
    }

    let assignment = &clustering.assignment;
    let dist = &clustering.dist;
    let quotient_id = &quotient_id;
    let boundary: Vec<(NodeId, NodeId, Weight)> = (0..graph.num_nodes() as NodeId)
        .into_par_iter()
        .with_min_len(256)
        .flat_map_iter(move |u| {
            graph.neighbors(u).filter_map(move |(v, w)| {
                if u >= v {
                    return None;
                }
                let cu = assignment[u as usize];
                let cv = assignment[v as usize];
                if cu == cv {
                    return None;
                }
                let weight =
                    Dist::from(w).saturating_add(dist[u as usize]).saturating_add(dist[v as usize]);
                let clamped: Weight = weight.min(Dist::from(Weight::MAX)) as Weight;
                Some((quotient_id[cu as usize], quotient_id[cv as usize], clamped.max(1)))
            })
        })
        .collect();
    let boundary_edges = boundary.len();

    let mut builder = GraphBuilder::with_capacity(centers.len(), boundary_edges);
    builder.extend_edges(boundary);
    QuotientGraph { graph: builder.build(), cluster_centers: centers, boundary_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_mr::CostMetrics;

    fn toy() -> (Graph, Clustering) {
        // Two clusters: {0,1} centered at 0 and {2,3} centered at 3, joined by
        // the edge (1,2) of weight 7 plus a second boundary edge (0,2) of
        // weight 100.
        let graph = Graph::from_edges(4, &[(0, 1, 2), (1, 2, 7), (0, 2, 100), (2, 3, 3)]);
        let clustering = Clustering {
            assignment: vec![0, 0, 3, 3],
            dist: vec![0, 2, 3, 0],
            centers: vec![0, 3],
            radius: 3,
            delta_end: 4,
            growing_steps: 1,
            stages: 1,
            metrics: CostMetrics::default(),
        };
        (graph, clustering)
    }

    #[test]
    fn quotient_has_one_node_per_cluster() {
        let (graph, clustering) = toy();
        let q = quotient_graph(&graph, &clustering);
        assert_eq!(q.graph.num_nodes(), 2);
        assert_eq!(q.cluster_centers, vec![0, 3]);
        assert_eq!(q.node_of_center(3), Some(1));
        assert_eq!(q.node_of_center(1), None);
    }

    #[test]
    fn quotient_edge_takes_minimum_augmented_weight() {
        let (graph, clustering) = toy();
        let q = quotient_graph(&graph, &clustering);
        // Edge (1,2): 7 + d1 + d2 = 7 + 2 + 3 = 12. Edge (0,2): 100 + 0 + 3 =
        // 103. The minimum, 12, must be kept.
        assert_eq!(q.graph.num_edges(), 1);
        assert_eq!(q.graph.edge_weight(0, 1), Some(12));
        assert_eq!(q.boundary_edges, 2);
    }

    #[test]
    fn intra_cluster_edges_are_dropped() {
        let (graph, clustering) = toy();
        let q = quotient_graph(&graph, &clustering);
        // Edges (0,1) and (2,3) are internal and contribute nothing.
        assert_eq!(q.graph.num_edges() + 2, graph.num_edges() - 1);
    }

    #[test]
    fn single_cluster_gives_edgeless_quotient() {
        let graph = Graph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let clustering = Clustering {
            assignment: vec![0, 0, 0],
            dist: vec![0, 1, 2],
            centers: vec![0],
            radius: 2,
            delta_end: 2,
            growing_steps: 2,
            stages: 1,
            metrics: CostMetrics::default(),
        };
        let q = quotient_graph(&graph, &clustering);
        assert_eq!(q.graph.num_nodes(), 1);
        assert_eq!(q.graph.num_edges(), 0);
        assert_eq!(q.boundary_edges, 0);
    }
}
