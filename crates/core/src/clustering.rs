//! The result of a graph decomposition.

use std::collections::HashMap;

use cldiam_graph::{Dist, NeighborSource, NodeId};
use cldiam_mr::CostMetrics;

/// A clustering (τ-clustering in the paper's terminology): a partition of the
/// nodes into clusters, each with a distinguished center and, for every node,
/// an upper bound on its distance to the center.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[u]` — the center of the cluster `u` belongs to (centers are
    /// assigned to themselves).
    pub assignment: Vec<NodeId>,
    /// `dist[u]` — an upper bound on `dist(assignment[u], u)` in the original
    /// graph (0 for centers).
    pub dist: Vec<Dist>,
    /// The distinct cluster centers, sorted by node id.
    pub centers: Vec<NodeId>,
    /// The clustering radius: `max_u dist[u]`.
    pub radius: Dist,
    /// The final value of the growth threshold `Δ` (`Δ_end` in Lemma 1).
    pub delta_end: Dist,
    /// Number of Δ-growing steps performed.
    pub growing_steps: u64,
    /// Number of stages (outer-loop iterations) executed.
    pub stages: u64,
    /// MR cost charged by the decomposition.
    pub metrics: CostMetrics,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Number of nodes in the clustered graph.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Sizes of every cluster, keyed by center.
    ///
    /// Counts through a dense per-slot vector (`centers` is sorted, so a
    /// binary search maps a center to its slot) and assembles the map once at
    /// the end, instead of rehashing an accumulator on every node. Nodes
    /// assigned to a non-center (an invalid clustering; see
    /// [`Clustering::validate`]) are skipped.
    pub fn cluster_sizes(&self) -> HashMap<NodeId, usize> {
        let mut counts = vec![0usize; self.centers.len()];
        for &c in &self.assignment {
            if let Ok(slot) = self.centers.binary_search(&c) {
                counts[slot] += 1;
            }
        }
        self.centers.iter().copied().zip(counts).collect()
    }

    /// Checks the structural invariants of a clustering against its graph:
    ///
    /// 1. every node is assigned to a cluster whose center exists,
    /// 2. every center is assigned to itself at distance 0,
    /// 3. every distance bound is at most the recorded radius,
    /// 4. the recorded radius is attained by some node.
    ///
    /// Returns a description of the first violated invariant, if any.
    pub fn validate<G: NeighborSource>(&self, graph: &G) -> Result<(), String> {
        if self.assignment.len() != graph.num_nodes() {
            return Err(format!(
                "assignment covers {} nodes but the graph has {}",
                self.assignment.len(),
                graph.num_nodes()
            ));
        }
        let center_set: std::collections::HashSet<NodeId> = self.centers.iter().copied().collect();
        for (u, &c) in self.assignment.iter().enumerate() {
            if !center_set.contains(&c) {
                return Err(format!("node {u} is assigned to {c}, which is not a center"));
            }
        }
        for &c in &self.centers {
            if self.assignment[c as usize] != c {
                return Err(format!("center {c} is assigned to {}", self.assignment[c as usize]));
            }
            if self.dist[c as usize] != 0 {
                return Err(format!("center {c} has nonzero distance {}", self.dist[c as usize]));
            }
        }
        if let Some((u, &d)) = self.dist.iter().enumerate().find(|&(_, &d)| d > self.radius) {
            return Err(format!("node {u} has distance {d} beyond the radius {}", self.radius));
        }
        if !self.dist.is_empty() && !self.dist.contains(&self.radius) {
            return Err(format!("radius {} is not attained by any node", self.radius));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_graph::Graph;

    fn toy_clustering() -> (Graph, Clustering) {
        let graph = Graph::from_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 2)]);
        let clustering = Clustering {
            assignment: vec![0, 0, 3, 3],
            dist: vec![0, 2, 2, 0],
            centers: vec![0, 3],
            radius: 2,
            delta_end: 2,
            growing_steps: 2,
            stages: 1,
            metrics: CostMetrics::default(),
        };
        (graph, clustering)
    }

    #[test]
    fn valid_clustering_passes() {
        let (graph, clustering) = toy_clustering();
        assert!(clustering.validate(&graph).is_ok());
        assert_eq!(clustering.num_clusters(), 2);
        assert_eq!(clustering.num_nodes(), 4);
        let sizes = clustering.cluster_sizes();
        assert_eq!(sizes[&0], 2);
        assert_eq!(sizes[&3], 2);
    }

    #[test]
    fn detects_dangling_assignment() {
        let (graph, mut clustering) = toy_clustering();
        clustering.assignment[1] = 2;
        let err = clustering.validate(&graph).unwrap_err();
        assert!(err.contains("not a center"), "{err}");
    }

    #[test]
    fn detects_center_with_nonzero_distance() {
        let (graph, mut clustering) = toy_clustering();
        clustering.dist[0] = 5;
        let err = clustering.validate(&graph).unwrap_err();
        assert!(err.contains("beyond the radius") || err.contains("nonzero distance"), "{err}");
    }

    #[test]
    fn detects_radius_violation() {
        let (graph, mut clustering) = toy_clustering();
        clustering.dist[1] = 10;
        assert!(clustering.validate(&graph).is_err());
    }

    #[test]
    fn detects_unattained_radius() {
        let (graph, mut clustering) = toy_clustering();
        clustering.radius = 99;
        let err = clustering.validate(&graph).unwrap_err();
        assert!(err.contains("not attained"), "{err}");
    }

    #[test]
    fn detects_size_mismatch() {
        let (_, clustering) = toy_clustering();
        let other = Graph::empty(7);
        assert!(clustering.validate(&other).is_err());
    }
}
