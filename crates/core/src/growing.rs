//! The Δ-growing step and the `PartialGrowth` procedures (Section 3).
//!
//! A Δ-growing step performs, in parallel, one wave of Bellman-Ford-style
//! relaxations restricted to *light* edges and to tentative distances that
//! stay within the threshold `Δ`: for each node `u` with `d_u < Δ` and each
//! light edge `(u, v)`, if `d_u + w(u, v) ≤ Δ` and the state of `v` improves,
//! set `d_v = d_u + w(u, v)` and `c_v = c_u`. When several nodes can update
//! `v`, the update with the smallest distance — and, secondarily, the one
//! whose center has the smallest index — wins, which makes the outcome
//! independent of thread scheduling.
//!
//! `PartialGrowth` repeats Δ-growing steps until no state changes or until a
//! caller-provided coverage goal is reached (half of the uncovered nodes for
//! `CLUSTER`); `PartialGrowth2` is the same procedure without the coverage
//! goal. The optional step cap implements the `O(n/τ)` limit of §4.1.

use cldiam_mr::CostTracker;
use rayon::prelude::*;

use cldiam_graph::{Dist, Graph, NodeId};

use crate::state::{GrowState, NO_CENTER};

/// Counters produced by a single Δ-growing step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Relaxation proposals generated (messages in the MR cost model).
    pub proposals: u64,
    /// State updates applied (node updates in the MR cost model).
    pub updates: u64,
}

/// Counters produced by a `PartialGrowth` invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrowthOutcome {
    /// Number of Δ-growing steps executed (one MR round each).
    pub steps: u64,
    /// Total relaxation proposals generated.
    pub proposals: u64,
    /// Total state updates applied.
    pub updates: u64,
    /// Number of unfrozen nodes reached (tentatively covered) when the
    /// procedure stopped.
    pub reached_unfrozen: usize,
}

/// Executes one Δ-growing step from `frontier`.
///
/// * `threshold` — the growth threshold `Δ` (signed: `CLUSTER2` sources carry
///   a rescaled, possibly negative credit).
/// * `light_limit` — the maximum weight of a traversable (light) edge.
///
/// Returns the nodes whose state changed (the next frontier) and the step
/// counters. Frozen nodes are never updated; they only act as sources.
pub fn delta_growing_step(
    graph: &Graph,
    threshold: i64,
    light_limit: Dist,
    state: &mut GrowState,
    frontier: &[NodeId],
) -> (Vec<NodeId>, StepStats) {
    // Generate proposals in parallel. Each proposal is (target, eff, center,
    // true distance). The frontier only contains reached nodes.
    // Small frontiers run as a single chunk (min-len hint): Δ-growing waves
    // on sparse stages are frequent and tiny, and chunk-ordered recombination
    // keeps the proposal list identical either way.
    let proposals: Vec<(NodeId, i64, NodeId, Dist)> = frontier
        .par_iter()
        .with_min_len(32)
        .flat_map_iter(|&u| {
            let eff_u = state.eff[u as usize];
            let center_u = state.center[u as usize];
            let true_u = state.true_dist[u as usize];
            let mut local = Vec::new();
            if eff_u < threshold && center_u != NO_CENTER {
                for (v, w) in graph.neighbors(u) {
                    let wd = Dist::from(w);
                    if wd > light_limit || state.frozen[v as usize] {
                        continue;
                    }
                    let cand = eff_u.saturating_add(wd as i64);
                    if cand <= threshold {
                        local.push((v, cand, center_u, true_u.saturating_add(wd)));
                    }
                }
            }
            local
        })
        .collect();

    let mut stats = StepStats { proposals: proposals.len() as u64, updates: 0 };

    // Apply proposals with the paper's tie-break: smallest distance first,
    // then smallest center index. Application order is irrelevant because the
    // winning proposal is a minimum.
    let mut updated: Vec<NodeId> = Vec::new();
    for (v, eff, center, true_d) in proposals {
        let vi = v as usize;
        let better = eff < state.eff[vi] || (eff == state.eff[vi] && center < state.center[vi]);
        if better {
            updated.push(v);
            state.eff[vi] = eff;
            state.center[vi] = center;
            state.true_dist[vi] = true_d;
            stats.updates += 1;
        }
    }
    updated.sort_unstable();
    updated.dedup();
    (updated, stats)
}

/// Repeats Δ-growing steps until no state is updated, until
/// `stop_at_reached` unfrozen nodes have been reached, or until `max_steps`
/// steps have been executed. Each step is charged as one MR round to
/// `tracker`, with its proposals as messages and its updates as node updates.
///
/// The initial frontier is every node with a finite effective distance below
/// the threshold (centers and, in `CLUSTER2`, rescaled covered sources).
pub fn partial_growth(
    graph: &Graph,
    threshold: i64,
    light_limit: Dist,
    state: &mut GrowState,
    stop_at_reached: Option<usize>,
    max_steps: Option<usize>,
    tracker: Option<&CostTracker>,
) -> GrowthOutcome {
    let mut outcome = GrowthOutcome::default();

    // Initial frontier: every potential source.
    let mut frontier: Vec<NodeId> = (0..state.len() as NodeId)
        .filter(|&u| state.eff[u as usize] < threshold && state.center[u as usize] != NO_CENTER)
        .collect();

    // Unfrozen nodes already reached (eff ≤ threshold ⇒ reached).
    let mut reached =
        (0..state.len()).filter(|&u| !state.frozen[u] && state.center[u] != NO_CENTER).count();
    outcome.reached_unfrozen = reached;

    if stop_at_reached.is_some_and(|target| reached >= target) {
        return outcome;
    }

    while !frontier.is_empty() {
        if max_steps.is_some_and(|cap| outcome.steps as usize >= cap) {
            break;
        }
        let (updated, stats) = delta_growing_step(graph, threshold, light_limit, state, &frontier);
        outcome.steps += 1;
        outcome.proposals += stats.proposals;
        outcome.updates += stats.updates;
        if let Some(t) = tracker {
            t.add_round();
            t.add_messages(stats.proposals);
            t.add_node_updates(stats.updates);
        }
        if updated.is_empty() {
            break;
        }
        if stop_at_reached.is_some() {
            // Re-count reached unfrozen nodes only when an early-stop target is
            // set (once reached, a node stays reached, so the count is
            // monotone).
            reached = (0..state.len())
                .filter(|&u| !state.frozen[u] && state.center[u] != NO_CENTER)
                .count();
            outcome.reached_unfrozen = reached;
            if stop_at_reached.is_some_and(|target| reached >= target) {
                break;
            }
        }
        frontier = updated;
    }
    outcome.reached_unfrozen =
        (0..state.len()).filter(|&u| !state.frozen[u] && state.center[u] != NO_CENTER).count();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EFF_INFINITY;
    use cldiam_gen::weighted_path;

    fn init_state_with_center(n: usize, center: NodeId) -> GrowState {
        let mut s = GrowState::new(n);
        s.set_center(center);
        s
    }

    #[test]
    fn growing_step_respects_threshold_and_light_edges() {
        // Path 0 -1- 1 -5- 2 -1- 3 with Δ = 3: the weight-5 edge is heavy and
        // must not be traversed.
        let g = weighted_path(&[1, 5, 1]);
        let mut s = init_state_with_center(4, 0);
        let (updated, stats) = delta_growing_step(&g, 3, 3, &mut s, &[0]);
        assert_eq!(updated, vec![1]);
        assert_eq!(stats.updates, 1);
        assert_eq!(s.center[1], 0);
        assert_eq!(s.eff[1], 1);
        assert_eq!(s.eff[2], EFF_INFINITY);
    }

    #[test]
    fn growing_step_enforces_distance_budget() {
        // Edges all light (weight 2) but Δ = 3 allows only one hop.
        let g = weighted_path(&[2, 2, 2]);
        let mut s = init_state_with_center(4, 0);
        let (updated, _) = delta_growing_step(&g, 3, 3, &mut s, &[0]);
        assert_eq!(updated, vec![1]);
        let (updated2, _) = delta_growing_step(&g, 3, 3, &mut s, &updated);
        // 0 -> 1 costs 2; 1 -> 2 would cost 4 > 3: no growth.
        assert!(updated2.is_empty());
    }

    #[test]
    fn tie_break_prefers_smaller_distance_then_smaller_center() {
        // Node 1 is reachable from center 0 (weight 4) and center 2 (weight 2).
        let g = cldiam_graph::Graph::from_edges(3, &[(0, 1, 4), (2, 1, 2)]);
        let mut s = GrowState::new(3);
        s.set_center(0);
        s.set_center(2);
        let (_, _) = delta_growing_step(&g, 10, 10, &mut s, &[0, 2]);
        assert_eq!(s.center[1], 2);
        assert_eq!(s.eff[1], 2);

        // Equal distances: the smaller center index wins.
        let g2 = cldiam_graph::Graph::from_edges(3, &[(0, 1, 3), (2, 1, 3)]);
        let mut s2 = GrowState::new(3);
        s2.set_center(0);
        s2.set_center(2);
        let (_, _) = delta_growing_step(&g2, 10, 10, &mut s2, &[0, 2]);
        assert_eq!(s2.center[1], 0);
    }

    #[test]
    fn frozen_nodes_are_sources_but_not_targets() {
        let g = weighted_path(&[1, 1]);
        let mut s = GrowState::new(3);
        s.set_center(0);
        s.center[1] = 0;
        s.eff[1] = 1;
        s.true_dist[1] = 1;
        s.freeze_reached();
        // New stage: node 1 is a frozen source with credit 0; node 0 frozen too.
        s.set_source(0, 0);
        s.set_source(1, 0);
        let (updated, _) = delta_growing_step(&g, 5, 5, &mut s, &[0, 1]);
        assert_eq!(updated, vec![2]);
        // Node 2 inherits node 1's cluster (center 0) and accumulates the true
        // distance through it.
        assert_eq!(s.center[2], 0);
        assert_eq!(s.true_dist[2], 2);
        // Frozen node 1 kept its original state.
        assert_eq!(s.eff[1], 0);
        assert_eq!(s.true_dist[1], 1);
    }

    #[test]
    fn partial_growth_runs_to_fixpoint() {
        let g = weighted_path(&[1, 1, 1, 1]);
        let mut s = init_state_with_center(5, 0);
        let outcome = partial_growth(&g, 10, 10, &mut s, None, None, None);
        assert_eq!(outcome.reached_unfrozen, 5);
        assert!(outcome.steps >= 4);
        assert_eq!(s.true_dist[4], 4);
    }

    #[test]
    fn partial_growth_stops_at_coverage_target() {
        let g = weighted_path(&[1, 1, 1, 1, 1, 1, 1, 1]);
        let mut s = init_state_with_center(9, 0);
        let outcome = partial_growth(&g, 100, 100, &mut s, Some(3), None, None);
        assert!(outcome.reached_unfrozen >= 3);
        assert!(
            outcome.reached_unfrozen < 9,
            "stopped early, reached {}",
            outcome.reached_unfrozen
        );
    }

    #[test]
    fn partial_growth_honors_step_cap() {
        let g = weighted_path(&[1; 20]);
        let mut s = init_state_with_center(21, 0);
        let outcome = partial_growth(&g, 1000, 1000, &mut s, None, Some(3), None);
        assert_eq!(outcome.steps, 3);
        assert_eq!(outcome.reached_unfrozen, 4);
    }

    #[test]
    fn partial_growth_charges_tracker() {
        let g = weighted_path(&[1, 1, 1]);
        let mut s = init_state_with_center(4, 0);
        let tracker = CostTracker::new();
        let outcome = partial_growth(&g, 10, 10, &mut s, None, None, Some(&tracker));
        let snap = tracker.snapshot();
        assert_eq!(snap.rounds, outcome.steps);
        assert_eq!(snap.messages, outcome.proposals);
        assert_eq!(snap.node_updates, outcome.updates);
    }

    #[test]
    fn growing_matches_restricted_dijkstra_distances() {
        // With a single center, an unrestricted growth (huge Δ) must reproduce
        // exact shortest-path distances.
        let g = cldiam_gen::mesh(8, cldiam_gen::WeightModel::UniformUnit, 3);
        let mut s = init_state_with_center(g.num_nodes(), 0);
        partial_growth(&g, i64::MAX - 1, Dist::MAX, &mut s, None, None, None);
        let sp = cldiam_sssp::dijkstra(&g, 0);
        for u in 0..g.num_nodes() {
            assert_eq!(s.true_dist[u], sp.dist[u], "node {u}");
            assert_eq!(s.eff[u], sp.dist[u] as i64, "node {u}");
        }
    }
}
