//! The Δ-growing step and the `PartialGrowth` procedures (Section 3).
//!
//! A Δ-growing step performs, in parallel, one wave of Bellman-Ford-style
//! relaxations restricted to *light* edges and to tentative distances that
//! stay within the threshold `Δ`: for each node `u` with `d_u < Δ` and each
//! light edge `(u, v)`, if `d_u + w(u, v) ≤ Δ` and the state of `v` improves,
//! set `d_v = d_u + w(u, v)` and `c_v = c_u`. When several nodes can update
//! `v`, the update with the smallest distance — and, secondarily, the one
//! whose center has the smallest index — wins, which makes the outcome
//! independent of thread scheduling.
//!
//! `PartialGrowth` repeats Δ-growing steps until no state changes or until a
//! caller-provided coverage goal is reached (half of the uncovered nodes for
//! `CLUSTER`); [`partial_growth2`] is the same procedure without the coverage
//! goal, as used by `CLUSTER2`. The optional step cap implements the `O(n/τ)`
//! limit of §4.1.
//!
//! # The in-place hot path
//!
//! Earlier revisions materialized every wave as a `Vec` of proposal tuples
//! (the MapReduce shuffle, executed literally in shared memory) and applied
//! it in a second pass. The fast path now relaxes edges *in place*: each
//! admissible relaxation is CAS-applied against the target's cell in
//! [`AtomicGrowCells`], which converges to the same deterministic winner the
//! literal MR reducer picks (see `atomic_state.rs` for the protocol), and a
//! reusable [`GrowScratch`] carries the frontier double-buffer, the pre-wave
//! frontier snapshot and the touched-bitmap across waves. A full
//! decomposition therefore performs O(1) amortized heap allocations per wave
//! instead of O(frontier + proposals).
//!
//! The cost model is charged exactly as before — one round per wave, one
//! message per relaxation proposal, one node update per node whose state
//! changed. `StepStats::updates` counts *nodes whose state changed in the
//! wave* (the quantity the MR reducer charges as node updates); the
//! equivalence proptests pin the in-place path, the materializing reference
//! ([`delta_growing_step_materialized`]) and the literal MR execution
//! (`mr_impl`) to identical states *and* identical counters.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use cldiam_mr::CostTracker;
use rayon::prelude::*;

use cldiam_graph::{CancelToken, Dist, NeighborSource, NodeId};

use crate::atomic_state::{AtomicGrowCells, Proposed};
use crate::state::{eff_below_threshold, eff_within_threshold, GrowState, NO_CENTER};

/// Counters produced by a single Δ-growing step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Relaxation proposals generated (messages in the MR cost model).
    pub proposals: u64,
    /// Nodes whose state changed (node updates in the MR cost model).
    pub updates: u64,
}

/// Counters produced by a `PartialGrowth` invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrowthOutcome {
    /// Number of Δ-growing steps executed (one MR round each).
    pub steps: u64,
    /// Total relaxation proposals generated.
    pub proposals: u64,
    /// Total state updates applied.
    pub updates: u64,
    /// Number of unfrozen nodes reached (tentatively covered) when the
    /// procedure stopped.
    pub reached_unfrozen: usize,
}

/// Per-wave tallies reduced over the frontier scan.
#[derive(Clone, Copy, Debug, Default)]
struct WaveTally {
    proposals: u64,
    newly_reached: u64,
}

impl WaveTally {
    fn merge(a: WaveTally, b: WaveTally) -> WaveTally {
        WaveTally {
            proposals: a.proposals + b.proposals,
            newly_reached: a.newly_reached + b.newly_reached,
        }
    }
}

/// Reusable buffers for the in-place Δ-growing hot path.
///
/// One `GrowScratch` serves an entire decomposition: `CLUSTER` / `CLUSTER2`
/// allocate it once and thread it through every `PartialGrowth` invocation,
/// so waves reuse the frontier double-buffer, the pre-wave snapshot, the
/// touched-bitmap and the atomic cells instead of allocating per wave.
#[derive(Debug, Default)]
pub struct GrowScratch {
    /// The atomic mirror of the grow state, loaded once per growth.
    cells: AtomicGrowCells,
    /// Per-node "already collected into the next frontier this wave" marks.
    touched: Vec<AtomicBool>,
    /// Collection buffer for the next frontier (filled through `slot_len`).
    slots: Vec<AtomicU32>,
    /// Number of valid entries in `slots` for the current wave.
    slot_len: AtomicUsize,
    /// Current wave's frontier (always sorted ascending between waves).
    frontier: Vec<NodeId>,
    /// Updated nodes of the last executed wave (sorted ascending).
    next: Vec<NodeId>,
    /// Pre-wave `(eff, center, true_dist)` snapshot of the frontier, so that
    /// every proposal of a wave reads the state the wave started from even
    /// while targets are being updated concurrently.
    snap: Vec<(i64, NodeId, Dist)>,
}

impl GrowScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut scratch = Self::default();
        scratch.ensure(n);
        scratch
    }

    fn ensure(&mut self, n: usize) {
        if self.touched.len() != n {
            self.touched = (0..n).map(|_| AtomicBool::new(false)).collect();
            self.slots = (0..n).map(|_| AtomicU32::new(0)).collect();
        }
    }

    /// Executes one wave from `self.frontier`, leaving the sorted updated
    /// nodes in `self.next`. Returns the step counters and how many
    /// previously-unreached nodes were assigned for the first time.
    fn wave<G: NeighborSource>(
        &mut self,
        graph: &G,
        threshold: Dist,
        light_limit: Dist,
    ) -> (StepStats, u64) {
        // Snapshot the frontier's pre-wave state: proposals must be computed
        // from the state the wave started with, exactly like the two-phase
        // formulation, even though targets are updated concurrently.
        let (snap, frontier, cells) = (&mut self.snap, &self.frontier, &self.cells);
        snap.clear();
        snap.extend(frontier.iter().map(|&u| cells.read(u as usize)));

        let touched = &self.touched;
        let slots = &self.slots;
        let slot_len = &self.slot_len;
        let snap = &self.snap;

        let tally = (0..frontier.len())
            .into_par_iter()
            .with_min_len(32)
            .map(|i| {
                let mut tally = WaveTally::default();
                let (eff_u, center_u, true_u) = snap[i];
                if !eff_below_threshold(eff_u, threshold) || center_u == NO_CENTER {
                    return tally;
                }
                let u = frontier[i];
                let src_plus = u + 1;
                for (v, w) in graph.neighbors(u) {
                    let wd = Dist::from(w);
                    if wd > light_limit || cells.is_frozen(v as usize) {
                        continue;
                    }
                    let cand = eff_u.saturating_add(wd as i64);
                    if !eff_within_threshold(cand, threshold) {
                        continue;
                    }
                    tally.proposals += 1;
                    let true_v = true_u.saturating_add(wd);
                    if let Proposed::Improved { newly_reached } =
                        cells.propose(v as usize, cand, center_u, src_plus, true_v)
                    {
                        if newly_reached {
                            tally.newly_reached += 1;
                        }
                        if !touched[v as usize].swap(true, Ordering::Relaxed) {
                            let slot = slot_len.fetch_add(1, Ordering::Relaxed);
                            slots[slot].store(v, Ordering::Relaxed);
                        }
                    }
                }
                tally
            })
            .reduce(WaveTally::default, WaveTally::merge);

        // Collect the wave's updated nodes in ascending order (the canonical
        // frontier order every tie-break above relies on), then reset the
        // per-wave marks — O(updated), never O(n).
        let updated = self.slot_len.swap(0, Ordering::Relaxed);
        self.next.clear();
        self.next.extend(self.slots[..updated].iter().map(|slot| slot.load(Ordering::Relaxed)));
        self.next.sort_unstable();
        for &v in &self.next {
            self.touched[v as usize].store(false, Ordering::Relaxed);
            self.cells.settle(v as usize);
        }
        (StepStats { proposals: tally.proposals, updates: updated as u64 }, tally.newly_reached)
    }
}

/// Executes one Δ-growing step from `frontier`.
///
/// * `threshold` — the growth threshold `Δ`, an unsigned distance. Effective
///   distances stay signed (`CLUSTER2` sources carry a rescaled, possibly
///   negative credit) and are compared across the signedness boundary with
///   [`eff_below_threshold`] / [`eff_within_threshold`], so a `Δ` past
///   `i64::MAX` — reachable via Δ-doubling on massive heavy graphs — no
///   longer wraps negative and silently stops growth.
/// * `light_limit` — the maximum weight of a traversable (light) edge.
///
/// Returns the nodes whose state changed (the next frontier) and the step
/// counters. Frozen nodes are never updated; they only act as sources.
///
/// `frontier` must be sorted ascending (the order every frontier in this
/// workspace is produced in: initial frontiers scan node ids upward and each
/// step returns its updated set sorted). The deterministic `true_dist`
/// tie-break — first proposal in frontier order among equal `(eff, center)`
/// keys, the MR reducer's rule — is realized in place as smallest-source-id,
/// which coincides with frontier order only when the frontier is sorted; on
/// an unsorted frontier this function and
/// [`delta_growing_step_materialized`] could legitimately disagree on the
/// payload of a tied target.
///
/// This entry point loads and stores the full state around a single wave; a
/// multi-wave growth should go through [`partial_growth`], which keeps the
/// state resident in the scratch's atomic cells across waves.
pub fn delta_growing_step<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    frontier: &[NodeId],
    scratch: &mut GrowScratch,
) -> (Vec<NodeId>, StepStats) {
    debug_assert!(
        frontier.windows(2).all(|pair| pair[0] <= pair[1]),
        "delta_growing_step requires a sorted frontier"
    );
    scratch.ensure(state.len());
    scratch.cells.load_from(state);
    scratch.frontier.clear();
    scratch.frontier.extend_from_slice(frontier);
    let (stats, _) = scratch.wave(graph, threshold, light_limit);
    scratch.cells.store_into(state);
    (scratch.next.clone(), stats)
}

/// The materializing (two-phase) Δ-growing step kept as an executable
/// reference: generate every relaxation proposal into a `Vec`, then reduce
/// per target. This is the literal shared-memory transcription of the MR
/// round and is bit-for-bit equivalent to [`delta_growing_step`] — the
/// equivalence proptests and the `growing_hotpath` benchmark compare the two.
/// Production code must use the in-place fast path.
pub fn delta_growing_step_materialized<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    frontier: &[NodeId],
) -> (Vec<NodeId>, StepStats) {
    // Generate proposals in parallel. Each proposal is (target, eff, center,
    // true distance). The frontier only contains reached nodes.
    let proposals: Vec<(NodeId, i64, NodeId, Dist)> = frontier
        .par_iter()
        .with_min_len(32)
        .flat_map_iter(|&u| {
            let eff_u = state.eff[u as usize];
            let center_u = state.center[u as usize];
            let true_u = state.true_dist[u as usize];
            let mut local = Vec::new();
            if eff_below_threshold(eff_u, threshold) && center_u != NO_CENTER {
                for (v, w) in graph.neighbors(u) {
                    let wd = Dist::from(w);
                    if wd > light_limit || state.frozen[v as usize] {
                        continue;
                    }
                    let cand = eff_u.saturating_add(wd as i64);
                    if eff_within_threshold(cand, threshold) {
                        local.push((v, cand, center_u, true_u.saturating_add(wd)));
                    }
                }
            }
            local
        })
        .collect();

    let mut stats = StepStats { proposals: proposals.len() as u64, updates: 0 };

    // Apply proposals with the paper's tie-break: smallest distance first,
    // then smallest center index. Application order is irrelevant because the
    // winning proposal is a minimum.
    let mut updated: Vec<NodeId> = Vec::new();
    for (v, eff, center, true_d) in proposals {
        let vi = v as usize;
        let better = eff < state.eff[vi] || (eff == state.eff[vi] && center < state.center[vi]);
        if better {
            updated.push(v);
            state.eff[vi] = eff;
            state.center[vi] = center;
            state.true_dist[vi] = true_d;
        }
    }
    updated.sort_unstable();
    updated.dedup();
    stats.updates = updated.len() as u64;
    (updated, stats)
}

/// Repeats Δ-growing steps until no state is updated, until
/// `stop_at_reached` unfrozen nodes have been reached, or until `max_steps`
/// steps have been executed. Each step is charged as one MR round to
/// `tracker`, with its proposals as messages and its updates as node updates.
///
/// The initial frontier is every node with a finite effective distance below
/// the threshold (centers and, in `CLUSTER2`, rescaled covered sources). The
/// state is loaded into `scratch`'s atomic cells once, every wave relaxes in
/// place, and the result is stored back once at the end.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list plus the threaded scratch
pub fn partial_growth<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    stop_at_reached: Option<usize>,
    max_steps: Option<usize>,
    tracker: Option<&CostTracker>,
    scratch: &mut GrowScratch,
) -> GrowthOutcome {
    partial_growth_cancel(
        graph,
        threshold,
        light_limit,
        state,
        stop_at_reached,
        max_steps,
        tracker,
        scratch,
        &CancelToken::never(),
    )
}

/// [`partial_growth`] with a cooperative [`CancelToken`], polled once per
/// Δ-growing wave. Stopping between waves leaves a *consistent partial
/// growth*: every applied relaxation is a genuine improvement, distances
/// remain upper bounds on the true center distances, and nodes the growth
/// never reached stay uncovered — the callers' singleton fallback turns
/// that into a valid (if coarse) clustering.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list plus scratch and token
pub fn partial_growth_cancel<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    stop_at_reached: Option<usize>,
    max_steps: Option<usize>,
    tracker: Option<&CostTracker>,
    scratch: &mut GrowScratch,
    cancel: &CancelToken,
) -> GrowthOutcome {
    let mut outcome = GrowthOutcome::default();

    // Unfrozen nodes already reached (eff ≤ threshold ⇒ reached); kept
    // incrementally below — a node's first assignment is a unique event, so
    // the count stays exact without O(n) recounts between waves.
    let mut reached = state.count_reached_unfrozen();
    outcome.reached_unfrozen = reached;
    if stop_at_reached.is_some_and(|target| reached >= target) {
        return outcome;
    }

    // Initial frontier: every potential source, in ascending node order.
    scratch.ensure(state.len());
    scratch.frontier.clear();
    scratch.frontier.extend((0..state.len() as NodeId).filter(|&u| {
        eff_below_threshold(state.eff[u as usize], threshold)
            && state.center[u as usize] != NO_CENTER
    }));
    if scratch.frontier.is_empty() {
        return outcome;
    }
    scratch.cells.load_from(state);

    loop {
        if max_steps.is_some_and(|cap| outcome.steps as usize >= cap) {
            break;
        }
        // Wave boundary: every relaxation of the previous wave is committed.
        if cancel.checkpoint() {
            break;
        }
        let (stats, newly_reached) = scratch.wave(graph, threshold, light_limit);
        outcome.steps += 1;
        outcome.proposals += stats.proposals;
        outcome.updates += stats.updates;
        reached += newly_reached as usize;
        if let Some(t) = tracker {
            t.add_round();
            t.add_messages(stats.proposals);
            t.add_node_updates(stats.updates);
        }
        if scratch.next.is_empty() {
            break;
        }
        if stop_at_reached.is_some_and(|target| reached >= target) {
            break;
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
    scratch.cells.store_into(state);
    outcome.reached_unfrozen = reached;
    outcome
}

/// `PartialGrowth2`: repeats Δ-growing steps until no state is updated (or a
/// step cap fires), with no coverage goal — the growth procedure of
/// `CLUSTER2`.
pub fn partial_growth2<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    max_steps: Option<usize>,
    tracker: Option<&CostTracker>,
    scratch: &mut GrowScratch,
) -> GrowthOutcome {
    partial_growth(graph, threshold, light_limit, state, None, max_steps, tracker, scratch)
}

/// [`partial_growth2`] with a cooperative [`CancelToken`] (see
/// [`partial_growth_cancel`] for the consistency contract).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list plus scratch and token
pub fn partial_growth2_cancel<G: NeighborSource>(
    graph: &G,
    threshold: Dist,
    light_limit: Dist,
    state: &mut GrowState,
    max_steps: Option<usize>,
    tracker: Option<&CostTracker>,
    scratch: &mut GrowScratch,
    cancel: &CancelToken,
) -> GrowthOutcome {
    partial_growth_cancel(
        graph,
        threshold,
        light_limit,
        state,
        None,
        max_steps,
        tracker,
        scratch,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EFF_INFINITY;
    use cldiam_gen::weighted_path;

    fn init_state_with_center(n: usize, center: NodeId) -> GrowState {
        let mut s = GrowState::new(n);
        s.set_center(center);
        s
    }

    fn grow(
        graph: &cldiam_graph::Graph,
        threshold: Dist,
        light_limit: Dist,
        state: &mut GrowState,
        stop_at_reached: Option<usize>,
        max_steps: Option<usize>,
        tracker: Option<&CostTracker>,
    ) -> GrowthOutcome {
        let mut scratch = GrowScratch::new();
        partial_growth(
            graph,
            threshold,
            light_limit,
            state,
            stop_at_reached,
            max_steps,
            tracker,
            &mut scratch,
        )
    }

    fn step(
        graph: &cldiam_graph::Graph,
        threshold: Dist,
        light_limit: Dist,
        state: &mut GrowState,
        frontier: &[NodeId],
    ) -> (Vec<NodeId>, StepStats) {
        let mut scratch = GrowScratch::new();
        delta_growing_step(graph, threshold, light_limit, state, frontier, &mut scratch)
    }

    #[test]
    fn growing_step_respects_threshold_and_light_edges() {
        // Path 0 -1- 1 -5- 2 -1- 3 with Δ = 3: the weight-5 edge is heavy and
        // must not be traversed.
        let g = weighted_path(&[1, 5, 1]);
        let mut s = init_state_with_center(4, 0);
        let (updated, stats) = step(&g, 3, 3, &mut s, &[0]);
        assert_eq!(updated, vec![1]);
        assert_eq!(stats.updates, 1);
        assert_eq!(s.center[1], 0);
        assert_eq!(s.eff[1], 1);
        assert_eq!(s.eff[2], EFF_INFINITY);
    }

    #[test]
    fn growing_step_enforces_distance_budget() {
        // Edges all light (weight 2) but Δ = 3 allows only one hop.
        let g = weighted_path(&[2, 2, 2]);
        let mut s = init_state_with_center(4, 0);
        let (updated, _) = step(&g, 3, 3, &mut s, &[0]);
        assert_eq!(updated, vec![1]);
        let (updated2, _) = step(&g, 3, 3, &mut s, &updated);
        // 0 -> 1 costs 2; 1 -> 2 would cost 4 > 3: no growth.
        assert!(updated2.is_empty());
    }

    #[test]
    fn tie_break_prefers_smaller_distance_then_smaller_center() {
        // Node 1 is reachable from center 0 (weight 4) and center 2 (weight 2).
        let g = cldiam_graph::Graph::from_edges(3, &[(0, 1, 4), (2, 1, 2)]);
        let mut s = GrowState::new(3);
        s.set_center(0);
        s.set_center(2);
        let (_, _) = step(&g, 10, 10, &mut s, &[0, 2]);
        assert_eq!(s.center[1], 2);
        assert_eq!(s.eff[1], 2);

        // Equal distances: the smaller center index wins.
        let g2 = cldiam_graph::Graph::from_edges(3, &[(0, 1, 3), (2, 1, 3)]);
        let mut s2 = GrowState::new(3);
        s2.set_center(0);
        s2.set_center(2);
        let (_, _) = step(&g2, 10, 10, &mut s2, &[0, 2]);
        assert_eq!(s2.center[1], 0);
    }

    #[test]
    fn frozen_nodes_are_sources_but_not_targets() {
        let g = weighted_path(&[1, 1]);
        let mut s = GrowState::new(3);
        s.set_center(0);
        s.center[1] = 0;
        s.eff[1] = 1;
        s.true_dist[1] = 1;
        s.freeze_reached();
        // New stage: node 1 is a frozen source with credit 0; node 0 frozen too.
        s.set_source(0, 0);
        s.set_source(1, 0);
        let (updated, _) = step(&g, 5, 5, &mut s, &[0, 1]);
        assert_eq!(updated, vec![2]);
        // Node 2 inherits node 1's cluster (center 0) and accumulates the true
        // distance through it.
        assert_eq!(s.center[2], 0);
        assert_eq!(s.true_dist[2], 2);
        // Frozen node 1 kept its original state.
        assert_eq!(s.eff[1], 0);
        assert_eq!(s.true_dist[1], 1);
    }

    #[test]
    fn in_place_step_matches_materialized_reference() {
        let g = cldiam_gen::mesh(6, cldiam_gen::WeightModel::UniformUnit, 11);
        let mut fast = GrowState::new(g.num_nodes());
        let mut reference = GrowState::new(g.num_nodes());
        for &c in &[0, 17, 35] {
            fast.set_center(c);
            reference.set_center(c);
        }
        let threshold = 3 * Dist::from(cldiam_graph::WEIGHT_SCALE);
        let mut scratch = GrowScratch::new();
        let mut frontier = vec![0, 17, 35];
        for _ in 0..16 {
            let (fast_up, fast_stats) =
                delta_growing_step(&g, threshold, threshold, &mut fast, &frontier, &mut scratch);
            let (ref_up, ref_stats) = delta_growing_step_materialized(
                &g,
                threshold,
                threshold,
                &mut reference,
                &frontier,
            );
            assert_eq!(fast_up, ref_up);
            assert_eq!(fast_stats, ref_stats);
            assert_eq!(fast.eff, reference.eff);
            assert_eq!(fast.center, reference.center);
            assert_eq!(fast.true_dist, reference.true_dist);
            if fast_up.is_empty() {
                break;
            }
            frontier = fast_up;
        }
    }

    #[test]
    fn partial_growth_runs_to_fixpoint() {
        let g = weighted_path(&[1, 1, 1, 1]);
        let mut s = init_state_with_center(5, 0);
        let outcome = grow(&g, 10, 10, &mut s, None, None, None);
        assert_eq!(outcome.reached_unfrozen, 5);
        assert!(outcome.steps >= 4);
        assert_eq!(s.true_dist[4], 4);
    }

    #[test]
    fn partial_growth_stops_at_coverage_target() {
        let g = weighted_path(&[1, 1, 1, 1, 1, 1, 1, 1]);
        let mut s = init_state_with_center(9, 0);
        let outcome = grow(&g, 100, 100, &mut s, Some(3), None, None);
        assert!(outcome.reached_unfrozen >= 3);
        assert!(
            outcome.reached_unfrozen < 9,
            "stopped early, reached {}",
            outcome.reached_unfrozen
        );
    }

    #[test]
    fn partial_growth_honors_step_cap() {
        let g = weighted_path(&[1; 20]);
        let mut s = init_state_with_center(21, 0);
        let outcome = grow(&g, 1000, 1000, &mut s, None, Some(3), None);
        assert_eq!(outcome.steps, 3);
        assert_eq!(outcome.reached_unfrozen, 4);
    }

    #[test]
    fn partial_growth_charges_tracker() {
        let g = weighted_path(&[1, 1, 1]);
        let mut s = init_state_with_center(4, 0);
        let tracker = CostTracker::new();
        let outcome = grow(&g, 10, 10, &mut s, None, None, Some(&tracker));
        let snap = tracker.snapshot();
        assert_eq!(snap.rounds, outcome.steps);
        assert_eq!(snap.messages, outcome.proposals);
        assert_eq!(snap.node_updates, outcome.updates);
    }

    #[test]
    fn partial_growth2_reaches_the_same_fixpoint() {
        let g = cldiam_gen::mesh(5, cldiam_gen::WeightModel::UniformUnit, 2);
        let mut a = init_state_with_center(g.num_nodes(), 0);
        let mut b = init_state_with_center(g.num_nodes(), 0);
        let mut scratch = GrowScratch::new();
        let threshold = Dist::MAX;
        let out_a =
            partial_growth(&g, threshold, Dist::MAX, &mut a, None, None, None, &mut scratch);
        let out_b = partial_growth2(&g, threshold, Dist::MAX, &mut b, None, None, &mut scratch);
        assert_eq!(out_a, out_b);
        assert_eq!(a.eff, b.eff);
        assert_eq!(a.center, b.center);
    }

    #[test]
    fn threshold_past_i64_max_still_grows() {
        // Regression for the signed-Δ overflow: Δ-doubling caps at
        // 2·total_weight, which can exceed i64::MAX on massive heavy graphs.
        // The old `run.delta as i64` cast wrapped such a Δ negative, making
        // every frontier node fail the threshold test and silently stopping
        // all growth. With the unsigned threshold the growth must proceed
        // exactly as with any other huge Δ.
        let g = weighted_path(&[1, 1, 1]);
        let threshold: Dist = i64::MAX as Dist + 12_345;
        let mut s = init_state_with_center(4, 0);
        let outcome = grow(&g, threshold, Dist::MAX, &mut s, None, None, None);
        assert_eq!(outcome.reached_unfrozen, 4, "growth stopped under a Δ past i64::MAX");
        assert_eq!(s.true_dist[3], 3);
        // The materialized reference must agree wave by wave.
        let mut r = init_state_with_center(4, 0);
        let (updated, stats) =
            delta_growing_step_materialized(&g, threshold, Dist::MAX, &mut r, &[0]);
        assert_eq!(updated, vec![1]);
        assert_eq!(stats.updates, 1);
        // CLUSTER2-style negative credits keep working against the same Δ.
        let mut s2 = init_state_with_center(4, 0);
        s2.freeze_reached();
        s2.set_source(0, -7);
        let outcome2 = grow(&g, threshold, Dist::MAX, &mut s2, None, None, None);
        assert_eq!(outcome2.reached_unfrozen, 3);
        assert_eq!(s2.eff[3], -4);
    }

    #[test]
    fn scratch_is_reusable_across_growths_and_graph_sizes() {
        let mut scratch = GrowScratch::new();
        for n in [4usize, 9, 4] {
            let g = weighted_path(&vec![1; n - 1]);
            let mut s = init_state_with_center(n, 0);
            let outcome = partial_growth(&g, 100, 100, &mut s, None, None, None, &mut scratch);
            assert_eq!(outcome.reached_unfrozen, n);
            assert_eq!(s.true_dist[n - 1], (n - 1) as Dist);
        }
    }

    #[test]
    fn growing_matches_restricted_dijkstra_distances() {
        // With a single center, an unrestricted growth (huge Δ) must reproduce
        // exact shortest-path distances.
        let g = cldiam_gen::mesh(8, cldiam_gen::WeightModel::UniformUnit, 3);
        let mut s = init_state_with_center(g.num_nodes(), 0);
        grow(&g, Dist::MAX, Dist::MAX, &mut s, None, None, None);
        let sp = cldiam_sssp::dijkstra(&g, 0);
        for u in 0..g.num_nodes() {
            assert_eq!(s.true_dist[u], sp.dist[u], "node {u}");
            assert_eq!(s.eff[u], sp.dist[u] as i64, "node {u}");
        }
    }
}
