//! `CL-DIAM`: cluster-based diameter approximation (Section 4 / Section 5).
//!
//! The driver decomposes the graph (with `CLUSTER`, or `CLUSTER2` when
//! requested), builds the weighted quotient graph, computes (or tightly
//! estimates) the quotient diameter `Φ(G_C)` and returns
//! `Φ_approx(G) = Φ(G_C) + 2·R`, which is an upper bound on the true weighted
//! diameter whenever the per-node distances are genuine upper bounds — which
//! they are by construction in this implementation.

use cldiam_graph::{CancelToken, Dist, NeighborSource};
use cldiam_mr::CostMetrics;
use cldiam_sssp::{diameter_lower_bound, exact_diameter};

use crate::cluster::cluster_cancel;
use crate::cluster2::cluster2_cancel;
use crate::clustering::Clustering;
use crate::config::ClusterConfig;
use crate::quotient::{quotient_graph, QuotientGraph};

/// Result of a `CL-DIAM` run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// The diameter estimate `Φ_approx(G) = Φ(G_C) + 2·R` (an upper bound).
    pub upper_bound: Dist,
    /// Diameter of the quotient graph `Φ(G_C)`.
    pub quotient_diameter: Dist,
    /// Radius `R` of the clustering.
    pub radius: Dist,
    /// Number of clusters (nodes of the quotient graph).
    pub num_clusters: usize,
    /// Number of edges of the quotient graph.
    pub quotient_edges: usize,
    /// Whether the quotient diameter was computed exactly (all-pairs) or
    /// estimated with farthest-node sweeps.
    pub quotient_exact: bool,
    /// Number of Δ-growing steps performed by the decomposition.
    pub growing_steps: u64,
    /// Aggregate MR cost (rounds, messages, node updates).
    pub metrics: CostMetrics,
}

impl DiameterEstimate {
    /// Approximation ratio against a known reference value (typically the
    /// lower bound produced by iterated SSSP sweeps, as in Table 2).
    pub fn ratio_against(&self, reference: Dist) -> f64 {
        if reference == 0 {
            if self.upper_bound == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.upper_bound as f64 / reference as f64
        }
    }
}

/// The `CL-DIAM` driver. Holds a configuration and exposes the individual
/// pipeline stages, which the benchmark harness instruments separately.
#[derive(Clone, Debug, Default)]
pub struct ClDiam {
    config: ClusterConfig,
}

impl ClDiam {
    /// Creates a driver with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        ClDiam { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the graph decomposition stage only.
    pub fn decompose<G: NeighborSource>(&self, graph: &G) -> Clustering {
        self.decompose_cancel(graph, &CancelToken::never())
    }

    /// [`ClDiam::decompose`] with a cooperative [`CancelToken`]. A cancelled
    /// decomposition is still a valid clustering — completed stages keep
    /// their clusters, the rest become singletons — so every downstream
    /// stage (quotient, diameter bound) stays sound, merely coarser.
    pub fn decompose_cancel<G: NeighborSource>(
        &self,
        graph: &G,
        cancel: &CancelToken,
    ) -> Clustering {
        if self.config.use_cluster2 {
            cluster2_cancel(graph, &self.config, cancel)
        } else {
            cluster_cancel(graph, &self.config, cancel)
        }
    }

    /// Runs the full pipeline: decomposition, quotient construction and
    /// quotient-diameter computation.
    pub fn run<G: NeighborSource>(&self, graph: &G) -> DiameterEstimate {
        self.run_cancel(graph, &CancelToken::never())
    }

    /// [`ClDiam::run`] with a cooperative [`CancelToken`]. Only the
    /// decomposition polls the token; the quotient stage always completes
    /// (it is cheap relative to the decomposition and the estimate would be
    /// useless without it), so the returned `upper_bound` is exactly as
    /// sound as an uninterrupted run's — a degraded clustering just makes
    /// it looser.
    pub fn run_cancel<G: NeighborSource>(
        &self,
        graph: &G,
        cancel: &CancelToken,
    ) -> DiameterEstimate {
        let clustering = self.decompose_cancel(graph, cancel);
        self.estimate_from_clustering(graph, &clustering)
    }

    /// Builds the quotient of an existing clustering and finishes the
    /// estimate. Exposed so ablations can reuse one decomposition across
    /// several quotient strategies.
    pub fn estimate_from_clustering<G: NeighborSource>(
        &self,
        graph: &G,
        clustering: &Clustering,
    ) -> DiameterEstimate {
        let quotient = quotient_graph(graph, clustering);
        let (quotient_diameter, quotient_exact) = self.quotient_diameter(&quotient);
        let upper_bound = quotient_diameter.saturating_add(clustering.radius.saturating_mul(2));
        // The quotient construction and its diameter computation are charged
        // as one extra round each, following the paper's observation that the
        // quotient fits in a single reducer's local memory.
        let metrics = clustering.metrics.merged(&CostMetrics {
            rounds: 2,
            messages: quotient.boundary_edges as u64,
            node_updates: 0,
            peak_local_items: quotient.graph.num_arcs() as u64,
        });
        DiameterEstimate {
            upper_bound,
            quotient_diameter,
            radius: clustering.radius,
            num_clusters: clustering.num_clusters(),
            quotient_edges: quotient.graph.num_edges(),
            quotient_exact,
            growing_steps: clustering.growing_steps,
            metrics,
        }
    }

    /// Diameter of the quotient graph: exact (batched all-pairs Dijkstra
    /// through `cldiam_sssp::batch`) below the configured size threshold,
    /// estimated with farthest-node sweep chains above it.
    fn quotient_diameter(&self, quotient: &QuotientGraph) -> (Dist, bool) {
        let q = &quotient.graph;
        if q.num_nodes() <= 1 {
            return (0, true);
        }
        if q.num_nodes() <= self.config.exact_quotient_threshold {
            (exact_diameter(q), true)
        } else {
            (diameter_lower_bound(q, self.config.quotient_sweeps, self.config.seed), false)
        }
    }
}

/// Convenience function: runs `CL-DIAM` on `graph` with `config`.
pub fn approximate_diameter<G: NeighborSource>(
    graph: &G,
    config: &ClusterConfig,
) -> DiameterEstimate {
    ClDiam::new(config.clone()).run(graph)
}

/// [`approximate_diameter`] with a cooperative [`CancelToken`] (see
/// [`ClDiam::run_cancel`]).
pub fn approximate_diameter_cancel<G: NeighborSource>(
    graph: &G,
    config: &ClusterConfig,
    cancel: &CancelToken,
) -> DiameterEstimate {
    ClDiam::new(config.clone()).run_cancel(graph, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialDelta;
    use cldiam_gen::{mesh, path, preferential_attachment, road_network, WeightModel};
    use cldiam_graph::largest_component;

    fn config(tau: usize, seed: u64) -> ClusterConfig {
        ClusterConfig::default().with_tau(tau).with_seed(seed)
    }

    fn check_bounds(graph: &cldiam_graph::Graph, estimate: &DiameterEstimate) -> (Dist, f64) {
        let exact = exact_diameter(graph);
        assert!(
            estimate.upper_bound >= exact,
            "estimate {} below true diameter {exact}",
            estimate.upper_bound
        );
        let ratio = estimate.ratio_against(exact);
        (exact, ratio)
    }

    #[test]
    fn upper_bounds_and_good_ratio_on_mesh() {
        let g = mesh(16, WeightModel::UniformUnit, 3);
        let estimate = approximate_diameter(&g, &config(4, 7));
        let (_, ratio) = check_bounds(&g, &estimate);
        assert!(ratio < 2.0, "ratio {ratio}");
        assert!(estimate.num_clusters > 1);
        assert!(estimate.metrics.rounds > 0);
    }

    #[test]
    fn upper_bounds_on_road_network() {
        let (g, _) = largest_component(&road_network(22, 22, 5));
        let estimate = approximate_diameter(&g, &config(4, 3));
        let (_, ratio) = check_bounds(&g, &estimate);
        assert!(ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn upper_bounds_on_social_graph() {
        let g = preferential_attachment(600, 3, WeightModel::UniformUnit, 4);
        let estimate = approximate_diameter(&g, &config(8, 5));
        let (_, ratio) = check_bounds(&g, &estimate);
        assert!(ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn cluster2_variant_also_upper_bounds() {
        let g = mesh(12, WeightModel::UniformUnit, 8);
        let estimate = approximate_diameter(&g, &config(2, 9).with_cluster2(true));
        check_bounds(&g, &estimate);
    }

    #[test]
    fn estimate_on_path_graph_is_tight() {
        // On a path with τ large enough, every node is a singleton cluster and
        // the quotient is the path itself: the estimate equals the diameter.
        let g = path(32, 5);
        let estimate = approximate_diameter(&g, &config(64, 1));
        assert_eq!(estimate.upper_bound, 31 * 5);
        assert_eq!(estimate.radius, 0);
        assert!(estimate.quotient_exact);
    }

    #[test]
    fn handles_trivial_graphs() {
        let empty = cldiam_graph::Graph::empty(0);
        let e = approximate_diameter(&empty, &config(2, 1));
        assert_eq!(e.upper_bound, 0);
        let single = cldiam_graph::Graph::empty(1);
        let s = approximate_diameter(&single, &config(2, 1));
        assert_eq!(s.upper_bound, 0);
        assert_eq!(s.num_clusters, 1);
    }

    #[test]
    fn ratio_against_zero_reference() {
        let estimate = DiameterEstimate {
            upper_bound: 0,
            quotient_diameter: 0,
            radius: 0,
            num_clusters: 1,
            quotient_edges: 0,
            quotient_exact: true,
            growing_steps: 0,
            metrics: CostMetrics::default(),
        };
        assert_eq!(estimate.ratio_against(0), 1.0);
        let nonzero = DiameterEstimate { upper_bound: 5, ..estimate };
        assert!(nonzero.ratio_against(0).is_infinite());
        assert!((nonzero.ratio_against(4) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn initial_delta_sensitivity_mirrors_section_5() {
        // The §5 experiment: on a mesh with bimodal weights, starting Δ at the
        // graph diameter skips the self-tuning and inflates the estimate,
        // while starting at the minimum weight stays tight.
        let g = mesh(24, WeightModel::paper_bimodal(), 11);
        let exact = exact_diameter(&g);
        let tight =
            approximate_diameter(&g, &config(4, 2).with_initial_delta(InitialDelta::MinWeight));
        let loose =
            approximate_diameter(&g, &config(4, 2).with_initial_delta(InitialDelta::Fixed(exact)));
        assert!(tight.upper_bound >= exact);
        assert!(loose.upper_bound >= exact);
        assert!(
            loose.upper_bound >= tight.upper_bound,
            "loose {} vs tight {}",
            loose.upper_bound,
            tight.upper_bound
        );
    }

    #[test]
    fn cancelled_run_still_upper_bounds_the_diameter() {
        // A degraded decomposition only coarsens the clustering; the
        // quotient estimate must still bracket the exact diameter, all the
        // way down to the all-singletons case (quotient == graph).
        let g = mesh(10, WeightModel::UniformUnit, 4);
        let exact = exact_diameter(&g);
        for limit in [1, 3, 8] {
            let estimate = approximate_diameter_cancel(
                &g,
                &config(2, 6),
                &CancelToken::with_check_limit(limit),
            );
            assert!(
                estimate.upper_bound >= exact,
                "limit {limit}: estimate {} below true diameter {exact}",
                estimate.upper_bound
            );
            let again = approximate_diameter_cancel(
                &g,
                &config(2, 6),
                &CancelToken::with_check_limit(limit),
            );
            assert_eq!(estimate, again, "limit {limit}: cancelled run not deterministic");
        }
    }

    #[test]
    fn estimate_from_clustering_reuses_decomposition() {
        let g = mesh(10, WeightModel::UniformUnit, 2);
        let driver = ClDiam::new(config(2, 3));
        let clustering = driver.decompose(&g);
        let a = driver.estimate_from_clustering(&g, &clustering);
        let b = driver.run(&g);
        assert_eq!(a.upper_bound, b.upper_bound);
        assert_eq!(a.num_clusters, b.num_clusters);
    }
}
