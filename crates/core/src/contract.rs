//! The explicit `Contract` procedure (Section 3) and its equivalence with the
//! logical, state-based contraction used by [`crate::cluster`].
//!
//! After a sequence of Δ-growing steps from a center set `X`, procedure
//! `Contract` removes every covered node except the centers and reroutes
//! boundary edges: an edge `(u, v)` with `u` covered and `v` uncovered is
//! replaced by `(c_u, v)` with the same weight; edges between two covered
//! nodes disappear; edges between two uncovered nodes are kept.
//!
//! The production code path in [`crate::cluster`] never materializes the
//! contracted graph — it freezes covered nodes and lets them act as
//! distance-0 sources, which yields identical growth trajectories (the tests
//! in this module check that equivalence explicitly) while avoiding a CSR
//! rebuild per stage. The explicit procedure is still provided both as
//! executable documentation of the paper and for consumers who want the
//! physically smaller graph (e.g. to ship it to another machine).

use cldiam_graph::{Graph, GraphBuilder, NodeId};

use crate::state::{GrowState, NO_CENTER};

/// A physically contracted graph together with the mapping back to the
/// original node identifiers.
#[derive(Clone, Debug)]
pub struct ContractedGraph {
    /// The contracted graph. Its nodes are the cluster centers plus the
    /// uncovered nodes of the original graph.
    pub graph: Graph,
    /// `orig[i]` is the original node represented by contracted node `i`.
    pub orig: Vec<NodeId>,
    /// `true` at position `i` iff contracted node `i` is a cluster center.
    pub is_center: Vec<bool>,
}

impl ContractedGraph {
    /// Contracted id of an original node, if it survived the contraction.
    pub fn contracted_id(&self, original: NodeId) -> Option<NodeId> {
        self.orig.binary_search(&original).ok().map(|i| i as NodeId)
    }
}

/// Applies procedure `Contract` to `graph` given the growth state of the
/// current stage: covered nodes (reached by some cluster) are removed except
/// the centers themselves, and boundary edges are rerouted to the centers
/// keeping their original weight.
pub fn contract(graph: &Graph, state: &GrowState) -> ContractedGraph {
    let n = graph.num_nodes();
    assert_eq!(state.len(), n, "state does not match the graph");

    // Surviving nodes: centers and uncovered nodes, in increasing original id
    // (the filter scans ids in order, so `orig` is born sorted).
    let orig: Vec<NodeId> = (0..n as NodeId)
        .filter(|&u| {
            let c = state.center[u as usize];
            c == NO_CENTER || c == u
        })
        .collect();
    // Node ids are dense: the original → contracted id map is a Vec lookup.
    let mut new_id: Vec<NodeId> = vec![NodeId::MAX; n];
    for (i, &u) in orig.iter().enumerate() {
        new_id[u as usize] = i as NodeId;
    }
    let is_center: Vec<bool> = orig.iter().map(|&u| state.center[u as usize] == u).collect();

    let mut builder = GraphBuilder::new(orig.len());
    for (u, v, w) in graph.edges() {
        let cu = state.center[u as usize];
        let cv = state.center[v as usize];
        match (cu, cv) {
            (NO_CENTER, NO_CENTER) => {
                builder.add_edge(new_id[u as usize], new_id[v as usize], w);
            }
            (NO_CENTER, _) => {
                builder.add_edge(new_id[u as usize], new_id[cv as usize], w);
            }
            (_, NO_CENTER) => {
                builder.add_edge(new_id[cu as usize], new_id[v as usize], w);
            }
            // Both endpoints covered: the edge disappears.
            _ => {}
        }
    }
    ContractedGraph { graph: builder.build(), orig, is_center }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growing::{partial_growth, GrowScratch};
    use cldiam_gen::{mesh, road_network, WeightModel};
    use cldiam_graph::Dist;

    fn grow(graph: &Graph, threshold: Dist, light_limit: Dist, state: &mut GrowState) {
        let mut scratch = GrowScratch::new();
        partial_growth(graph, threshold, light_limit, state, None, None, None, &mut scratch);
    }

    /// Grows clusters from `centers` with threshold Δ, and checks that growing
    /// on the physically contracted graph produces the same effective
    /// distances for surviving nodes as the logical (frozen-source) emulation
    /// on the original graph.
    fn assert_contract_equivalence(graph: &Graph, centers: &[NodeId], delta: Dist) {
        // First stage: grow from the centers.
        let mut state = GrowState::new(graph.num_nodes());
        for &c in centers {
            state.set_center(c);
        }
        grow(graph, delta, delta, &mut state);
        let contracted = contract(graph, &state);

        // Logical second stage on the original graph: freeze, reset credits.
        let mut logical = state.clone();
        logical.freeze_reached();
        for u in 0..logical.len() {
            if logical.frozen[u] {
                logical.set_source(u as NodeId, 0);
            }
        }
        grow(graph, delta, delta, &mut logical);

        // Physical second stage on the contracted graph: centers restart at 0.
        let mut physical = GrowState::new(contracted.graph.num_nodes());
        for (i, &is_c) in contracted.is_center.iter().enumerate() {
            if is_c {
                physical.set_center(i as NodeId);
            }
        }
        grow(&contracted.graph, delta, delta, &mut physical);

        // Every surviving uncovered node must have the same effective distance
        // in both executions.
        for (i, &orig_u) in contracted.orig.iter().enumerate() {
            if contracted.is_center[i] {
                continue;
            }
            assert_eq!(
                physical.eff[i], logical.eff[orig_u as usize],
                "node {orig_u}: physical {} vs logical {}",
                physical.eff[i], logical.eff[orig_u as usize]
            );
        }
    }

    #[test]
    fn surviving_nodes_are_centers_and_uncovered() {
        let g = cldiam_gen::weighted_path(&[1, 1, 10, 1]);
        let mut state = GrowState::new(5);
        state.set_center(0);
        grow(&g, 3, 3, &mut state);
        // Nodes 0,1,2 covered by cluster 0 (the weight-10 edge is heavy);
        // nodes 3,4 uncovered.
        let c = contract(&g, &state);
        assert_eq!(c.orig, vec![0, 3, 4]);
        assert_eq!(c.is_center, vec![true, false, false]);
        assert_eq!(c.contracted_id(3), Some(1));
        assert_eq!(c.contracted_id(2), None);
        // The boundary edge (2,3) is rerouted to the center 0 with weight 10.
        assert_eq!(c.graph.edge_weight(0, 1), Some(10));
        // The uncovered edge (3,4) is kept.
        assert_eq!(c.graph.edge_weight(1, 2), Some(1));
        assert_eq!(c.graph.num_edges(), 2);
    }

    #[test]
    fn parallel_boundary_edges_keep_the_lightest() {
        // Two covered nodes of the same cluster both touch uncovered node 3.
        let g = Graph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 9), (2, 3, 4)]);
        let mut state = GrowState::new(4);
        state.set_center(0);
        grow(&g, 2, 2, &mut state);
        let c = contract(&g, &state);
        assert_eq!(c.orig, vec![0, 3]);
        assert_eq!(c.graph.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn contraction_equivalence_on_mesh() {
        let g = mesh(10, WeightModel::UniformUnit, 5);
        assert_contract_equivalence(&g, &[0, 55, 99], 300_000);
    }

    #[test]
    fn contraction_equivalence_on_road_network() {
        let g = road_network(12, 12, 9);
        assert_contract_equivalence(&g, &[0, 70, 130], 1_500);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_state() {
        let g = Graph::empty(3);
        let state = GrowState::new(2);
        contract(&g, &state);
    }
}
