//! Anytime diameter bounds with the CL-DIAM quotient oracle plugged in.
//!
//! The engine itself lives in `cldiam_sssp::bounds` and is deliberately
//! oblivious to clustering; this module supplies the glue that makes it the
//! paper-flavoured *anytime* algorithm: the oracle consulted mid-run is a
//! full CL-DIAM pipeline (`Φ(G_C) + 2·R`), so a handful of adaptive SSSPs
//! and one clustering pass cooperate on the same shrinking interval instead
//! of running as two unrelated fixed-budget pipelines.

use cldiam_graph::{Dist, Graph, NeighborSource};
use cldiam_sssp::{
    bounds_diameter_with_split, BoundsConfig, BoundsOutcome, ComponentSplit, DiameterOracle,
    NO_ORACLE,
};

use crate::config::ClusterConfig;
use crate::diameter::approximate_diameter;

/// The CL-DIAM quotient upper bound as a [`DiameterOracle`]: a full
/// clustering + quotient pipeline run on whichever (component) graph the
/// bounds engine hands it, dense or compressed.
struct QuotientOracle<'a> {
    config: &'a ClusterConfig,
}

impl DiameterOracle for QuotientOracle<'_> {
    fn diameter_upper_bound<G: NeighborSource>(&self, graph: &G) -> Dist {
        approximate_diameter(graph, self.config).upper_bound
    }
}

/// Configuration of the anytime bound-tightening run.
#[derive(Clone, Debug, Default)]
pub struct AnytimeConfig {
    /// Engine knobs: SSSP budget, tolerance, oracle timing.
    pub bounds: BoundsConfig,
    /// Clustering configuration for the quotient upper-bound oracle;
    /// `None` disables the oracle and runs pure interval tightening.
    pub cluster: Option<ClusterConfig>,
}

impl AnytimeConfig {
    /// Engine knobs, builder style.
    pub fn with_bounds(mut self, bounds: BoundsConfig) -> Self {
        self.bounds = bounds;
        self
    }

    /// Enables the CL-DIAM quotient oracle with the given clustering
    /// configuration.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Disables the quotient oracle.
    pub fn without_cluster(mut self) -> Self {
        self.cluster = None;
        self
    }
}

/// Runs the anytime engine over a precomputed component split (undirected
/// graphs only — see [`anytime_diameter`] for the directed dispatch).
pub fn anytime_diameter_with_split<G: NeighborSource>(
    graph: &G,
    config: &AnytimeConfig,
    split: &ComponentSplit,
) -> BoundsOutcome {
    match &config.cluster {
        Some(c) => {
            let oracle = QuotientOracle { config: c };
            bounds_diameter_with_split(graph, &config.bounds, Some(&oracle), split)
        }
        None => bounds_diameter_with_split(graph, &config.bounds, NO_ORACLE, split),
    }
}

/// Runs the anytime `[lb, ub]` engine: undirected graphs are component-split
/// and bounded per component, directed graphs run the forward/backward
/// engine (where the quotient oracle — whose clustering is undirected-only —
/// is never consulted).
pub fn anytime_diameter(graph: &Graph, config: &AnytimeConfig) -> BoundsOutcome {
    if graph.is_directed() {
        // CL-DIAM clustering is undirected; the directed engine runs without
        // the oracle regardless of configuration.
        return cldiam_sssp::bounds_diameter(graph, &config.bounds, NO_ORACLE);
    }
    anytime_diameter_with_split(graph, config, &ComponentSplit::compute(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, rmat, RmatParams, WeightModel};
    use cldiam_sssp::exact_diameter;

    #[test]
    fn oracle_run_still_brackets_the_exact_diameter() {
        let g = mesh(10, WeightModel::UniformUnit, 5);
        let exact = exact_diameter(&g);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(7));
        let outcome = anytime_diameter(&g, &config);
        assert!(outcome.lower <= exact && exact <= outcome.upper);
        for it in &outcome.iterations {
            assert!(it.lower <= exact && exact <= it.upper);
        }
    }

    #[test]
    fn oracle_appears_in_the_trace_when_budget_is_tight() {
        // Two SSSPs will not close an rmat component; the oracle must fire.
        let g = rmat(RmatParams::paper(8), WeightModel::UniformUnit, 3);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_max_sssp(3).with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(16).with_seed(3));
        let outcome = anytime_diameter(&g, &config);
        assert!(
            outcome.iterations.iter().any(|it| it.source.is_none()),
            "quotient oracle never consulted"
        );
    }

    #[test]
    fn split_variant_matches_the_convenience_entry_point() {
        let g = mesh(9, WeightModel::UniformUnit, 1);
        let config = AnytimeConfig::default()
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(1));
        let split = ComponentSplit::compute(&g);
        assert_eq!(anytime_diameter_with_split(&g, &config, &split), anytime_diameter(&g, &config));
    }

    #[test]
    fn no_oracle_matches_raw_engine() {
        let g = mesh(8, WeightModel::UniformUnit, 9);
        let config = AnytimeConfig::default();
        let raw = cldiam_sssp::bounds_diameter(&g, &config.bounds, NO_ORACLE);
        assert_eq!(anytime_diameter(&g, &config), raw);
    }
}
