//! Anytime diameter bounds with the CL-DIAM quotient oracle plugged in.
//!
//! The engine itself lives in `cldiam_sssp::bounds` and is deliberately
//! oblivious to clustering; this module supplies the glue that makes it the
//! paper-flavoured *anytime* algorithm: the oracle consulted mid-run is a
//! full CL-DIAM pipeline (`Φ(G_C) + 2·R`), so a handful of adaptive SSSPs
//! and one clustering pass cooperate on the same shrinking interval instead
//! of running as two unrelated fixed-budget pipelines.

use cldiam_graph::{CancelToken, Dist, Graph, NeighborSource, INFINITY};
use cldiam_sssp::{
    bounds_diameter_cancel, bounds_diameter_with_split_cancel, BoundsConfig, BoundsOutcome,
    ComponentSplit, DiameterOracle, NO_ORACLE,
};

use crate::config::ClusterConfig;
use crate::diameter::approximate_diameter_cancel;

/// The CL-DIAM quotient upper bound as a [`DiameterOracle`]: a full
/// clustering + quotient pipeline run on whichever (component) graph the
/// bounds engine hands it, dense or compressed.
///
/// The oracle carries its own [`CancelToken`]: once the shared flag is set
/// (wall deadline or explicit [`CancelToken::cancel`]) it declines to start
/// a clustering pass and reports `INFINITY`, which the engine treats as
/// "no improvement" — `apply_cap(INFINITY)` is a no-op. A per-clone check
/// budget never sets the shared flag, so under a pure logical-cadence
/// budget the oracle still runs to completion and stays deterministic.
struct QuotientOracle<'a> {
    config: &'a ClusterConfig,
    cancel: &'a CancelToken,
}

impl DiameterOracle for QuotientOracle<'_> {
    fn diameter_upper_bound<G: NeighborSource>(&self, graph: &G) -> Dist {
        if self.cancel.is_cancelled() {
            return INFINITY;
        }
        approximate_diameter_cancel(graph, self.config, &self.cancel.child()).upper_bound
    }
}

/// Configuration of the anytime bound-tightening run.
#[derive(Clone, Debug, Default)]
pub struct AnytimeConfig {
    /// Engine knobs: SSSP budget, tolerance, oracle timing.
    pub bounds: BoundsConfig,
    /// Clustering configuration for the quotient upper-bound oracle;
    /// `None` disables the oracle and runs pure interval tightening.
    pub cluster: Option<ClusterConfig>,
}

impl AnytimeConfig {
    /// Engine knobs, builder style.
    pub fn with_bounds(mut self, bounds: BoundsConfig) -> Self {
        self.bounds = bounds;
        self
    }

    /// Enables the CL-DIAM quotient oracle with the given clustering
    /// configuration.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Disables the quotient oracle.
    pub fn without_cluster(mut self) -> Self {
        self.cluster = None;
        self
    }
}

/// Runs the anytime engine over a precomputed component split (undirected
/// graphs only — see [`anytime_diameter`] for the directed dispatch).
pub fn anytime_diameter_with_split<G: NeighborSource>(
    graph: &G,
    config: &AnytimeConfig,
    split: &ComponentSplit,
) -> BoundsOutcome {
    anytime_diameter_with_split_cancel(graph, config, split, &CancelToken::never())
}

/// [`anytime_diameter_with_split`] with a cooperative [`CancelToken`]. The
/// engine polls the token at SSSP boundaries and the quotient oracle both
/// declines to start and polls at decomposition boundaries once the shared
/// flag is set, so an interrupted run still returns a valid best-so-far
/// `[lb, ub]` bracket (marked `interrupted`, never `converged`).
pub fn anytime_diameter_with_split_cancel<G: NeighborSource>(
    graph: &G,
    config: &AnytimeConfig,
    split: &ComponentSplit,
    cancel: &CancelToken,
) -> BoundsOutcome {
    match &config.cluster {
        Some(c) => {
            let oracle = QuotientOracle { config: c, cancel };
            bounds_diameter_with_split_cancel(graph, &config.bounds, Some(&oracle), split, cancel)
        }
        None => bounds_diameter_with_split_cancel(graph, &config.bounds, NO_ORACLE, split, cancel),
    }
}

/// Runs the anytime `[lb, ub]` engine: undirected graphs are component-split
/// and bounded per component, directed graphs run the forward/backward
/// engine (where the quotient oracle — whose clustering is undirected-only —
/// is never consulted).
pub fn anytime_diameter(graph: &Graph, config: &AnytimeConfig) -> BoundsOutcome {
    anytime_diameter_cancel(graph, config, &CancelToken::never())
}

/// [`anytime_diameter`] with a cooperative [`CancelToken`] (see
/// [`anytime_diameter_with_split_cancel`]).
pub fn anytime_diameter_cancel(
    graph: &Graph,
    config: &AnytimeConfig,
    cancel: &CancelToken,
) -> BoundsOutcome {
    if graph.is_directed() {
        // CL-DIAM clustering is undirected; the directed engine runs without
        // the oracle regardless of configuration.
        return bounds_diameter_cancel(graph, &config.bounds, NO_ORACLE, cancel);
    }
    anytime_diameter_with_split_cancel(graph, config, &ComponentSplit::compute(graph), cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, rmat, RmatParams, WeightModel};
    use cldiam_sssp::exact_diameter;

    #[test]
    fn oracle_run_still_brackets_the_exact_diameter() {
        let g = mesh(10, WeightModel::UniformUnit, 5);
        let exact = exact_diameter(&g);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(7));
        let outcome = anytime_diameter(&g, &config);
        assert!(outcome.lower <= exact && exact <= outcome.upper);
        for it in &outcome.iterations {
            assert!(it.lower <= exact && exact <= it.upper);
        }
    }

    #[test]
    fn oracle_appears_in_the_trace_when_budget_is_tight() {
        // Two SSSPs will not close an rmat component; the oracle must fire.
        let g = rmat(RmatParams::paper(8), WeightModel::UniformUnit, 3);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_max_sssp(3).with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(16).with_seed(3));
        let outcome = anytime_diameter(&g, &config);
        assert!(
            outcome.iterations.iter().any(|it| it.source.is_none()),
            "quotient oracle never consulted"
        );
    }

    #[test]
    fn split_variant_matches_the_convenience_entry_point() {
        let g = mesh(9, WeightModel::UniformUnit, 1);
        let config = AnytimeConfig::default()
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(1));
        let split = ComponentSplit::compute(&g);
        assert_eq!(anytime_diameter_with_split(&g, &config, &split), anytime_diameter(&g, &config));
    }

    #[test]
    fn no_oracle_matches_raw_engine() {
        let g = mesh(8, WeightModel::UniformUnit, 9);
        let config = AnytimeConfig::default();
        let raw = cldiam_sssp::bounds_diameter(&g, &config.bounds, NO_ORACLE);
        assert_eq!(anytime_diameter(&g, &config), raw);
    }

    #[test]
    fn cancelled_anytime_run_reports_best_so_far_bracket() {
        let g = mesh(10, WeightModel::UniformUnit, 5);
        let exact = exact_diameter(&g);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(7));
        let token = CancelToken::never();
        token.cancel();
        let outcome = anytime_diameter_cancel(&g, &config, &token);
        assert!(outcome.interrupted);
        assert!(!outcome.converged);
        // The admitted first SSSP keeps the bracket non-trivial even when
        // the token was cancelled before the run started.
        assert!(outcome.lower > 0);
        assert!(outcome.lower <= exact && exact <= outcome.upper);
    }

    #[test]
    fn check_limited_anytime_run_is_deterministic_and_sound() {
        let g = mesh(12, WeightModel::UniformUnit, 2);
        let exact = exact_diameter(&g);
        let config = AnytimeConfig::default()
            .with_bounds(BoundsConfig::default().with_max_sssp(100).with_quotient_after(2))
            .with_cluster(ClusterConfig::default().with_tau(4).with_seed(3));
        let run =
            |limit| anytime_diameter_cancel(&g, &config, &CancelToken::with_check_limit(limit));
        let first = run(3);
        assert!(first.lower <= exact && exact <= first.upper);
        for _ in 0..4 {
            assert_eq!(run(3), first, "check-limited anytime run not deterministic");
        }
    }
}
