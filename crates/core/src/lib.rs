//! `CL-DIAM`: a practical parallel algorithm for diameter approximation of
//! massive weighted graphs.
//!
//! This crate implements the primary contribution of Ceccarello,
//! Pietracaprina, Pucci and Upfal (IPPS 2016):
//!
//! * the **Δ-growing step** — a parallel, threshold-bounded Bellman-Ford
//!   relaxation over light edges ([`growing`]);
//! * **`CLUSTER(G, τ)`** (Algorithm 1) — progressive, batched cluster growth
//!   with an automatically tuned threshold `Δ` ([`cluster`]);
//! * **`CLUSTER2(G, τ)`** (Algorithm 2) — the refined decomposition with
//!   doubling selection probabilities and rescaled contraction, used in the
//!   approximation analysis ([`cluster2`]);
//! * the explicit **`Contract`** procedure and its equivalence with the
//!   state-based (logical) contraction used by the main implementation
//!   ([`contract`]);
//! * the **weighted quotient graph** and the diameter estimate
//!   `Φ_approx(G) = Φ(G_C) + 2·R` ([`quotient`], [`diameter`]);
//! * a literal **MapReduce formulation** of the Δ-growing step on the
//!   simulated engine of `cldiam-mr` ([`mr_impl`]);
//! * the **anytime `[lb, ub]` driver** that plugs the quotient upper bound
//!   into the interval-tightening engine of `cldiam_sssp::bounds`
//!   ([`bounds`]).
//!
//! The implementation follows the paper's practical configuration (`CL-DIAM`):
//! decomposition via `CLUSTER`, initial `Δ` equal to the average edge weight
//! and `τ` chosen to keep the quotient graph small; every knob is exposed in
//! [`ClusterConfig`].
//!
//! # Example
//!
//! ```
//! use cldiam_core::{approximate_diameter, ClusterConfig};
//! use cldiam_gen::{mesh, WeightModel};
//! use cldiam_sssp::diameter_lower_bound;
//!
//! let graph = mesh(24, WeightModel::UniformUnit, 42);
//! let config = ClusterConfig::default().with_tau(8).with_seed(7);
//! let estimate = approximate_diameter(&graph, &config);
//! let lower = diameter_lower_bound(&graph, 4, 7);
//! assert!(estimate.upper_bound >= lower);
//! assert!(estimate.ratio_against(lower) < 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod atomic_state;
pub mod bounds;
pub mod cluster;
pub mod cluster2;
pub mod clustering;
pub mod config;
pub mod contract;
pub mod diameter;
pub mod growing;
pub mod mr_impl;
pub mod quotient;
pub mod state;

pub use bounds::{
    anytime_diameter, anytime_diameter_cancel, anytime_diameter_with_split,
    anytime_diameter_with_split_cancel, AnytimeConfig,
};
pub use cluster::{cluster, cluster_cancel};
pub use cluster2::{cluster2, cluster2_cancel};
pub use clustering::Clustering;
pub use config::{ClusterConfig, InitialDelta};
pub use diameter::{approximate_diameter, approximate_diameter_cancel, ClDiam, DiameterEstimate};
pub use growing::{
    delta_growing_step, delta_growing_step_materialized, partial_growth, partial_growth2,
    partial_growth2_cancel, partial_growth_cancel, GrowScratch, GrowthOutcome, StepStats,
};
pub use quotient::{quotient_graph, QuotientGraph};
pub use state::{eff_below_threshold, eff_within_threshold, GrowState, EFF_INFINITY, NO_CENTER};
