//! Per-node growth state shared by `CLUSTER` and `CLUSTER2`.
//!
//! The paper maintains for every node a pair `(c_u, d_u)`: the cluster center
//! the node has been (tentatively) reached from and an upper bound on its
//! distance from that center. Our implementation keeps two distance
//! quantities:
//!
//! * `eff` — the *effective stage distance*, the quantity the Δ-growing step
//!   thresholds against `Δ`. It corresponds exactly to the distance a node
//!   would have in the paper's *contracted* graph: covered nodes act as
//!   distance-0 sources in `CLUSTER` (procedure `Contract` reroutes boundary
//!   edges to the centers), and as sources with a rescaled credit in
//!   `CLUSTER2` (procedure `Contract2` subtracts `2·R_CL` per elapsed
//!   iteration), which is why the value is signed.
//! * `true_dist` — the accumulated weight of the growth path from the cluster
//!   center in the *original* graph; a genuine upper bound on
//!   `dist(center, u)`, used for the quotient edge weights and the clustering
//!   radius.
//!
//! Keeping the state on the original node set instead of physically rebuilding
//! a contracted graph at every stage produces the same growth trajectories
//! (see `contract.rs` for the explicit procedure and the equivalence tests)
//! while avoiding repeated CSR reconstruction.
//!
//! `GrowState` itself is the plain, single-owner view of the state. During a
//! growth the hot path mirrors it into the per-node atomic cells of
//! [`crate::atomic_state::AtomicGrowCells`], relaxes edges in place, and
//! writes the result back — see `growing.rs`.

use cldiam_graph::{Dist, NodeId};

/// Sentinel for "not yet reached by any cluster".
pub const NO_CENTER: NodeId = NodeId::MAX;

/// Sentinel for an infinite effective distance.
pub const EFF_INFINITY: i64 = i64::MAX;

/// `true` when the (signed) effective distance `eff` lies strictly below the
/// (unsigned) growth threshold `Δ`.
///
/// The growth threshold is a distance — [`Dist`], unsigned — while effective
/// distances are signed because `CLUSTER2` sources carry a rescaled, possibly
/// negative credit. Comparing the two by casting `Δ` to `i64` wraps negative
/// once Δ-doubling pushes `Δ` past `i64::MAX` (the doubling cap is
/// `2 · total_weight`, reachable on massive heavy graphs) and silently stops
/// all growth; these helpers compare across the signedness boundary instead.
/// [`EFF_INFINITY`] ("unreached") is never below any threshold.
#[inline]
pub fn eff_below_threshold(eff: i64, threshold: Dist) -> bool {
    eff != EFF_INFINITY && (eff < 0 || (eff as Dist) < threshold)
}

/// `true` when `eff` lies at or below the threshold `Δ` — the admissibility
/// test for a relaxation candidate `d_u + w(u, v) ≤ Δ`. See
/// [`eff_below_threshold`] for the signedness contract.
#[inline]
pub fn eff_within_threshold(eff: i64, threshold: Dist) -> bool {
    eff != EFF_INFINITY && (eff < 0 || (eff as Dist) <= threshold)
}

/// Mutable growth state over the original node set.
#[derive(Clone, Debug)]
pub struct GrowState {
    /// Tentative cluster center of each node ([`NO_CENTER`] if untouched).
    pub center: Vec<NodeId>,
    /// Effective (contracted-graph) distance used for the `Δ` threshold.
    pub eff: Vec<i64>,
    /// Upper bound on the original-graph distance to the assigned center.
    pub true_dist: Vec<Dist>,
    /// Nodes covered in a previous stage/iteration: they act as growth sources
    /// but their state can no longer change (they do not exist as regular
    /// nodes in the contracted graph).
    pub frozen: Vec<bool>,
}

impl GrowState {
    /// A state where every node is untouched.
    pub fn new(num_nodes: usize) -> Self {
        GrowState {
            center: vec![NO_CENTER; num_nodes],
            eff: vec![EFF_INFINITY; num_nodes],
            true_dist: vec![Dist::MAX; num_nodes],
            frozen: vec![false; num_nodes],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.center.len()
    }

    /// `true` if the state tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.center.is_empty()
    }

    /// Marks `u` as a cluster center: it is its own center at distance zero.
    pub fn set_center(&mut self, u: NodeId) {
        self.center[u as usize] = u;
        self.eff[u as usize] = 0;
        self.true_dist[u as usize] = 0;
    }

    /// Marks a covered node as a growth source for the current stage with the
    /// given effective credit (0 in `CLUSTER`, possibly negative in
    /// `CLUSTER2`), without touching its assignment or true distance.
    pub fn set_source(&mut self, u: NodeId, eff: i64) {
        debug_assert_ne!(self.center[u as usize], NO_CENTER, "sources must be covered");
        self.eff[u as usize] = eff;
    }

    /// `true` if node `u` has been reached by some cluster (tentatively or
    /// definitively).
    pub fn is_reached(&self, u: NodeId) -> bool {
        self.center[u as usize] != NO_CENTER
    }

    /// Number of *unfrozen* nodes currently reached by some cluster — the
    /// coverage quantity `PartialGrowth` stops on. The growing hot path keeps
    /// this count incrementally (a node's first assignment is a unique event);
    /// this method is the from-scratch definition it must agree with.
    pub fn count_reached_unfrozen(&self) -> usize {
        (0..self.len()).filter(|&u| !self.frozen[u] && self.center[u] != NO_CENTER).count()
    }

    /// Resets the per-stage quantities of every *unfrozen* node, keeping
    /// frozen assignments intact. Used at the start of each stage/iteration,
    /// mirroring the pseudocode's re-initialization of `(c_u, d_u)`.
    pub fn reset_unfrozen(&mut self) {
        for u in 0..self.len() {
            if !self.frozen[u] {
                self.center[u] = NO_CENTER;
                self.eff[u] = EFF_INFINITY;
                self.true_dist[u] = Dist::MAX;
            }
        }
    }

    /// Freezes every currently-reached, unfrozen node (the end-of-stage
    /// "assign `u` to the cluster centered at `c_u`" step). Returns how many
    /// nodes were frozen.
    pub fn freeze_reached(&mut self) -> usize {
        let mut frozen_now = 0;
        for u in 0..self.len() {
            if !self.frozen[u] && self.center[u] != NO_CENTER {
                self.frozen[u] = true;
                frozen_now += 1;
            }
        }
        frozen_now
    }

    /// Number of frozen (definitively covered) nodes.
    pub fn covered(&self) -> usize {
        self.frozen.iter().filter(|&&f| f).count()
    }

    /// Nodes not yet definitively covered.
    pub fn uncovered_nodes(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId).filter(|&u| !self.frozen[u as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_state_is_untouched() {
        let s = GrowState::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(!s.is_reached(0));
        assert_eq!(s.covered(), 0);
        assert_eq!(s.uncovered_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn set_center_marks_self_assignment() {
        let mut s = GrowState::new(3);
        s.set_center(1);
        assert!(s.is_reached(1));
        assert_eq!(s.center[1], 1);
        assert_eq!(s.eff[1], 0);
        assert_eq!(s.true_dist[1], 0);
    }

    #[test]
    fn freeze_and_reset_cycle() {
        let mut s = GrowState::new(4);
        s.set_center(0);
        s.center[1] = 0;
        s.eff[1] = 5;
        s.true_dist[1] = 5;
        assert_eq!(s.freeze_reached(), 2);
        assert_eq!(s.covered(), 2);
        // Reset clears only nodes 2 and 3 (unfrozen).
        s.center[2] = 0;
        s.reset_unfrozen();
        assert_eq!(s.center[0], 0);
        assert_eq!(s.center[1], 0);
        assert_eq!(s.center[2], NO_CENTER);
        assert_eq!(s.uncovered_nodes(), vec![2, 3]);
    }

    #[test]
    fn threshold_comparisons_cross_the_signedness_boundary() {
        // Negative CLUSTER2 credits are below every positive threshold.
        assert!(eff_below_threshold(-5, 1));
        assert!(eff_below_threshold(0, 1));
        assert!(!eff_below_threshold(1, 1));
        assert!(eff_within_threshold(1, 1));
        assert!(!eff_within_threshold(2, 1));
        // Thresholds past i64::MAX (the old `as i64` wrap) still admit every
        // finite effective distance…
        let past_i64 = i64::MAX as Dist + 7;
        assert!(eff_below_threshold(i64::MAX - 1, past_i64));
        assert!(eff_within_threshold(i64::MAX - 1, past_i64));
        // …but the "unreached" sentinel is never below any threshold.
        assert!(!eff_below_threshold(EFF_INFINITY, Dist::MAX));
        assert!(!eff_within_threshold(EFF_INFINITY, Dist::MAX));
    }

    #[test]
    fn set_source_only_changes_eff() {
        let mut s = GrowState::new(2);
        s.set_center(0);
        s.freeze_reached();
        s.set_source(0, -10);
        assert_eq!(s.eff[0], -10);
        assert_eq!(s.true_dist[0], 0);
        assert_eq!(s.center[0], 0);
    }
}
