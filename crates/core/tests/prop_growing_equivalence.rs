//! Property-based equivalence of the three Δ-growing step implementations.
//!
//! The acceptance bar for the in-place hot path: on random weighted graphs,
//! the allocation-free in-place step ([`cldiam_core::delta_growing_step`]),
//! the materializing two-phase reference
//! ([`cldiam_core::delta_growing_step_materialized`]) and the literal
//! MapReduce execution ([`cldiam_core::mr_impl::mr_delta_growing_step`])
//! must produce identical `GrowState`s, identical per-wave updated sets and
//! identical `StepStats` counters — including the MR engine's message /
//! node-update charges — wave by wave until fixpoint, on thread pools of
//! 1, 2 and 8 workers.
//!
//! The scenario also exercises the frozen-source path: after a first growth
//! phase, reached nodes are frozen and re-seeded as sources with a (possibly
//! negative, `CLUSTER2`-style) credit before the phase under test runs.

use proptest::prelude::*;

use cldiam_core::mr_impl::mr_delta_growing_step;
use cldiam_core::{
    delta_growing_step, delta_growing_step_materialized, GrowScratch, GrowState, NO_CENTER,
};
use cldiam_graph::{Dist, Graph, GraphBuilder, NodeId};
use cldiam_mr::{MrConfig, MrEngine};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const MAX_WAVES: usize = 64;

/// A connected random weighted graph with 2..=16 nodes (spanning path plus
/// random extra edges), the same recipe as the workspace-level invariants
/// suite but smaller: each case runs six growths to fixpoint on three pools.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..=16).prop_flat_map(|n| {
        let path_weights = proptest::collection::vec(1u32..=20, n - 1);
        let extra_edges =
            proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=20), 0..(2 * n));
        (path_weights, extra_edges).prop_map(move |(pw, extra)| {
            let mut builder = GraphBuilder::new(n);
            for (i, w) in pw.iter().enumerate() {
                builder.add_edge(i as u32, (i + 1) as u32, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    builder.add_edge(u, v, w);
                }
            }
            builder.build()
        })
    })
}

/// Everything a wave-by-wave growth produces: the per-wave updated sets with
/// their counters, and the final state vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Trace {
    waves: Vec<(Vec<NodeId>, u64, u64)>,
    eff: Vec<i64>,
    center: Vec<NodeId>,
    true_dist: Vec<Dist>,
}

/// Builds the initial state: centers from `center_sel`, plus an optional
/// frozen first phase whose survivors become sources with `credit`.
fn init_state(
    graph: &Graph,
    center_sel: &[usize],
    prefreeze: bool,
    credit: i64,
    threshold: Dist,
) -> GrowState {
    let n = graph.num_nodes();
    let mut state = GrowState::new(n);
    let mut centers: Vec<NodeId> = center_sel.iter().map(|&c| (c % n) as NodeId).collect();
    centers.sort_unstable();
    centers.dedup();
    for &c in &centers {
        state.set_center(c);
    }
    if prefreeze {
        // Deterministic phase 0 with the materializing reference: grow a
        // little, freeze what was reached, re-seed as credited sources.
        let mut frontier = centers.clone();
        for _ in 0..2 {
            let (updated, _) = delta_growing_step_materialized(
                graph,
                threshold / 2,
                (threshold / 2).max(1),
                &mut state,
                &frontier,
            );
            if updated.is_empty() {
                break;
            }
            frontier = updated;
        }
        state.freeze_reached();
        for u in 0..n {
            if state.frozen[u] {
                state.set_source(u as NodeId, credit);
            }
        }
    }
    state
}

fn initial_frontier(state: &GrowState, threshold: Dist) -> Vec<NodeId> {
    (0..state.len() as NodeId)
        .filter(|&u| {
            cldiam_core::eff_below_threshold(state.eff[u as usize], threshold)
                && state.center[u as usize] != NO_CENTER
        })
        .collect()
}

fn run_in_place(graph: &Graph, threshold: Dist, light_limit: Dist, init: &GrowState) -> Trace {
    let mut state = init.clone();
    let mut scratch = GrowScratch::new();
    let mut frontier = initial_frontier(&state, threshold);
    let mut waves = Vec::new();
    for _ in 0..MAX_WAVES {
        if frontier.is_empty() {
            break;
        }
        let (updated, stats) =
            delta_growing_step(graph, threshold, light_limit, &mut state, &frontier, &mut scratch);
        waves.push((updated.clone(), stats.proposals, stats.updates));
        frontier = updated;
    }
    Trace { waves, eff: state.eff, center: state.center, true_dist: state.true_dist }
}

fn run_materialized(graph: &Graph, threshold: Dist, light_limit: Dist, init: &GrowState) -> Trace {
    let mut state = init.clone();
    let mut frontier = initial_frontier(&state, threshold);
    let mut waves = Vec::new();
    for _ in 0..MAX_WAVES {
        if frontier.is_empty() {
            break;
        }
        let (updated, stats) =
            delta_growing_step_materialized(graph, threshold, light_limit, &mut state, &frontier);
        waves.push((updated.clone(), stats.proposals, stats.updates));
        frontier = updated;
    }
    Trace { waves, eff: state.eff, center: state.center, true_dist: state.true_dist }
}

fn run_mapreduce(graph: &Graph, threshold: Dist, light_limit: Dist, init: &GrowState) -> Trace {
    let mut state = init.clone();
    let engine = MrEngine::new(MrConfig::with_machines(4));
    let mut frontier = initial_frontier(&state, threshold);
    let mut waves = Vec::new();
    for _ in 0..MAX_WAVES {
        if frontier.is_empty() {
            break;
        }
        let before = engine.metrics();
        let updated =
            mr_delta_growing_step(&engine, graph, threshold, light_limit, &mut state, &frontier);
        let after = engine.metrics();
        waves.push((
            updated.clone(),
            after.messages - before.messages,
            after.node_updates - before.node_updates,
        ));
        frontier = updated;
    }
    Trace { waves, eff: state.eff, center: state.center, true_dist: state.true_dist }
}

fn with_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(op)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_growing_step_implementations_are_bit_identical(
        graph in arbitrary_graph(),
        center_sel in proptest::collection::vec(0usize..16, 1..4),
        threshold_raw in 5u64..120,
        prefreeze_raw in 0u32..2,
        credit_raw in 0u64..=15,
    ) {
        let threshold: Dist = threshold_raw;
        let prefreeze = prefreeze_raw == 1;
        let credit = -(credit_raw as i64);
        let light_limit = threshold;
        let init = init_state(&graph, &center_sel, prefreeze, credit, threshold);

        let reference = with_pool(THREAD_COUNTS[0], || {
            (
                run_in_place(&graph, threshold, light_limit, &init),
                run_materialized(&graph, threshold, light_limit, &init),
                run_mapreduce(&graph, threshold, light_limit, &init),
            )
        });
        let (in_place, materialized, mapreduce) = &reference;

        // The three implementations agree wave-by-wave: same updated sets,
        // same proposal counts (MR messages), same update counts (MR node
        // updates), same final state.
        prop_assert_eq!(in_place, materialized);
        prop_assert_eq!(in_place, mapreduce);

        // And the in-place path is scheduling-independent: identical traces
        // on wider pools.
        for &threads in &THREAD_COUNTS[1..] {
            let wide = with_pool(threads, || {
                (
                    run_in_place(&graph, threshold, light_limit, &init),
                    run_materialized(&graph, threshold, light_limit, &init),
                    run_mapreduce(&graph, threshold, light_limit, &init),
                )
            });
            prop_assert_eq!(&wide, &reference, "diverged at {} threads", threads);
        }
    }
}
