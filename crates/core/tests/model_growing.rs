//! Model-checked verification of `AtomicGrowCells` — the Δ-growing
//! relaxation protocol the paper's CLUSTER machinery runs on. Compiled
//! only with `--features model-check` (which transitively routes the
//! underlying `SeqMinCells` through the model-check shims). Run with:
//!
//! ```text
//! cargo test -p cldiam-core --features model-check --test model_growing
//! ```

#![cfg(feature = "model-check")]

use std::sync::Arc;

use cldiam_core::atomic_state::{AtomicGrowCells, Proposed};
use cldiam_core::state::GrowState;
use cldiam_modelcheck as mc;

fn fresh_cells(n: usize) -> AtomicGrowCells {
    // `load_from` fans out through rayon internally, but at model sizes
    // (n « min_len) it collapses to a single chunk executed inline on the
    // calling model thread — so every cell store is properly recorded.
    let state = GrowState::new(n);
    let mut cells = AtomicGrowCells::new();
    cells.load_from(&state);
    cells
}

#[test]
fn concurrent_proposals_converge_and_first_reach_is_unique() {
    // Two centers race to claim an unreached node. Every interleaving must
    // end at the minimum (eff, center, src) key with its payload, and
    // exactly one proposal may observe `newly_reached` — the invariant the
    // growth step's frontier accounting depends on.
    let report = mc::explore(mc::Config::bounded(3), || {
        let cells = Arc::new(fresh_cells(1));
        let proposals = [(5i64, 1u32, 1u32, 5u64), (3, 2, 2, 3)];
        let threads: Vec<_> = proposals
            .into_iter()
            .map(|(eff, center, src_plus, true_d)| {
                let cells = Arc::clone(&cells);
                mc::thread::spawn(move || cells.propose(0, eff, center, src_plus, true_d))
            })
            .collect();
        let outcomes: Vec<Proposed> = threads.into_iter().map(|t| t.join()).collect();
        assert_eq!(cells.read(0), (3, 2, 3), "cell must hold the minimum proposal");
        let first_reaches = outcomes
            .iter()
            .filter(|o| matches!(o, Proposed::Improved { newly_reached: true }))
            .count();
        assert_eq!(first_reaches, 1, "exactly one proposal reaches the node first: {outcomes:?}");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.schedules > 1);
}

#[test]
fn settled_ties_hold_under_concurrent_proposals() {
    // After settle(), an equal (eff, center) re-proposal must lose in every
    // schedule, even racing against a strictly better proposal.
    let report = mc::explore(mc::Config::bounded(3), || {
        let cells = Arc::new(fresh_cells(1));
        assert!(matches!(cells.propose(0, 5, 2, 3, 5), Proposed::Improved { .. }));
        cells.settle(0);
        let tie = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || cells.propose(0, 5, 2, 1, 5))
        };
        let better = {
            let cells = Arc::clone(&cells);
            mc::thread::spawn(move || cells.propose(0, 4, 9, 1, 4))
        };
        assert_eq!(tie.join(), Proposed::Rejected, "settled ties must hold");
        assert!(matches!(better.join(), Proposed::Improved { .. }));
        assert_eq!(cells.read(0), (4, 9, 4));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}
