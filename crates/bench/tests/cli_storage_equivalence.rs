//! The `cldiam` CLI must produce byte-identical JSON no matter how the graph
//! is held (dense vs compressed CSR) or served (in-memory parse vs
//! mmap-backed snapshot) and at any thread count.

use std::path::{Path, PathBuf};
use std::process::Command;

const CLDIAM: &str = env!("CARGO_BIN_EXE_cldiam");

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data").join(name)
}

/// Copies `name` into a scenario-private temp directory so `--cache` writes
/// land next to the copy, not in the repository tree.
fn staged_fixture(tag: &str, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cldiam-cli-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let staged = dir.join(name);
    std::fs::copy(fixture(name), &staged).unwrap();
    staged
}

/// Runs the CLI with `--no-time --json` and returns the JSON report bytes.
fn run_json(input: &Path, extra: &[&str]) -> String {
    let json =
        input.with_extension(format!("out-{}.json", extra.join("_").replace(['-', '/'], "")));
    let status = Command::new(CLDIAM)
        .arg(input)
        .args(["--seed", "1", "--no-time", "--json"])
        .arg(&json)
        .args(extra)
        .status()
        .expect("cldiam binary runs");
    assert!(status.success(), "cldiam {input:?} {extra:?} failed: {status}");
    std::fs::read_to_string(&json).expect("JSON report written")
}

#[test]
fn dense_compressed_and_mmap_runs_are_byte_identical() {
    for name in ["roads.gr", "social.tsv"] {
        for algo in ["cldiam", "delta", "bounds"] {
            let input = staged_fixture(&format!("{algo}-eq"), name);
            let baseline = run_json(&input, &["--algo", algo]);
            // Compressed CSR, in memory.
            let compressed = run_json(&input, &["--algo", algo, "--compress"]);
            assert_eq!(compressed, baseline, "{name}/{algo}: compressed in-memory diverged");
            // Sharded compressed snapshot written, then served via mmap: the
            // first run writes the cache cold, the second hits it.
            let mmap_flags = ["--algo", algo, "--cache", "--shards", "2", "--mmap"];
            let cold = run_json(&input, &mmap_flags);
            assert_eq!(cold, baseline, "{name}/{algo}: cold mmap run diverged");
            let warm = run_json(&input, &mmap_flags);
            assert_eq!(warm, baseline, "{name}/{algo}: warm mmap run diverged");
            // Checksum-verifying mmap load changes nothing but the cost.
            let verified = run_json(
                &input,
                &["--algo", algo, "--cache", "--shards", "2", "--mmap", "--verify-snapshot"],
            );
            assert_eq!(verified, baseline, "{name}/{algo}: verified mmap run diverged");
        }
    }
}

#[test]
fn mmap_runs_are_identical_across_thread_counts() {
    let input = staged_fixture("threads", "roads.gr");
    let reference = run_json(&input, &["--threads", "1"]);
    for threads in ["2", "4"] {
        let json = run_json(&input, &["--threads", threads, "--cache", "--compress", "--mmap"]);
        assert_eq!(json, reference, "diverged at {threads} threads");
    }
}

#[test]
fn v1_snapshot_cache_still_serves_the_cli() {
    let input = staged_fixture("v1compat", "roads.gr");
    let baseline = run_json(&input, &[]);
    // Plant a v1-format cache next to the input, fresher than the text: the
    // CLI must load through it (upgrading it to v2 in place) and produce the
    // same report.
    let graph = cldiam_graph::load_graph(&input).unwrap();
    let cache = cldiam_graph::io::snapshot_path(&input);
    cldiam_graph::io::binary::write_binary_file(&graph, &cache).unwrap();
    let future = std::time::SystemTime::now() + std::time::Duration::from_secs(60);
    std::fs::OpenOptions::new().append(true).open(&cache).unwrap().set_modified(future).unwrap();
    let via_v1 = run_json(&input, &["--cache"]);
    assert_eq!(via_v1, baseline, "v1 cache produced a different report");
    let bytes = std::fs::read(&cache).unwrap();
    assert_eq!(
        cldiam_graph::snapshot_version(&bytes),
        Some(2),
        "the CLI load must upgrade the v1 cache in place"
    );
}
