//! Plain-text table rendering and JSON export of experiment results.

use crate::json::{object, to_string_pretty, Value};
use crate::runner::RunResult;

/// One labelled table row: a graph plus the results of the algorithms that
/// ran on it.
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Graph label (the paper's name).
    pub graph: String,
    /// Proxy description.
    pub proxy: String,
    /// Number of nodes of the generated instance.
    pub nodes: usize,
    /// Number of edges of the generated instance.
    pub edges: usize,
    /// Results, one per algorithm.
    pub results: Vec<RunResult>,
}

/// Renders rows in the layout of the paper's Table 2: one line per graph with
/// the chosen metric for every algorithm side by side.
pub fn render_table(title: &str, rows: &[ResultRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let algorithms: Vec<String> = rows[0].results.iter().map(|r| r.algorithm.clone()).collect();
    out.push_str(&format!("{:<14} {:>10} {:>10}", "graph", "nodes", "edges"));
    for a in &algorithms {
        out.push_str(&format!(" | {a:^38}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<14} {:>10} {:>10}", "", "", ""));
    for _ in &algorithms {
        out.push_str(&format!(
            " | {:>8} {:>9} {:>8} {:>10}",
            "approx", "time(s)", "rounds", "work"
        ));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<14} {:>10} {:>10}", row.graph, row.nodes, row.edges));
        for result in &row.results {
            out.push_str(&format!(
                " | {:>8.3} {:>9.3} {:>8} {:>10.3e}",
                result.approximation, result.time_s, result.rounds, result.work as f64
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders a single-metric "figure" view (the bar-chart data of Figures 1–3):
/// one line per graph and algorithm with the selected metric.
pub fn render_figure(
    title: &str,
    rows: &[ResultRow],
    metric_name: &str,
    metric: impl Fn(&RunResult) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ({metric_name}) ==\n"));
    out.push_str(&format!("{:<14}", "graph"));
    if let Some(first) = rows.first() {
        for r in &first.results {
            out.push_str(&format!(" {:>16}", r.algorithm));
        }
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<14}", row.graph));
        for result in &row.results {
            out.push_str(&format!(" {:>16.4}", metric(result)));
        }
        out.push('\n');
    }
    out
}

/// Serializes rows as pretty JSON (the machine-readable companion of the
/// tables, consumed when regenerating `EXPERIMENTS.md`).
pub fn to_json(rows: &[ResultRow]) -> String {
    let rows: Vec<Value> = rows
        .iter()
        .map(|row| {
            object([
                ("graph", row.graph.as_str().into()),
                ("proxy", row.proxy.as_str().into()),
                ("nodes", row.nodes.into()),
                ("edges", row.edges.into()),
                ("results", Value::Array(row.results.iter().map(RunResult::to_value).collect())),
            ])
        })
        .collect();
    to_string_pretty(&Value::Array(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<ResultRow> {
        vec![ResultRow {
            graph: "mesh".to_string(),
            proxy: "64x64 mesh".to_string(),
            nodes: 4096,
            edges: 8064,
            results: vec![
                RunResult {
                    algorithm: "CL-DIAM".to_string(),
                    estimate: 120,
                    lower_bound: 100,
                    approximation: 1.2,
                    time_s: 0.5,
                    rounds: 42,
                    work: 100_000,
                    detail: String::new(),
                    converged: None,
                    interrupted: None,
                    iterations: None,
                },
                RunResult {
                    algorithm: "Δ-stepping".to_string(),
                    estimate: 190,
                    lower_bound: 100,
                    approximation: 1.9,
                    time_s: 3.0,
                    rounds: 900,
                    work: 2_000_000,
                    detail: String::new(),
                    converged: None,
                    interrupted: None,
                    iterations: None,
                },
            ],
        }]
    }

    #[test]
    fn table_contains_all_columns() {
        let text = render_table("Table 2", &sample_rows());
        assert!(text.contains("Table 2"));
        assert!(text.contains("mesh"));
        assert!(text.contains("CL-DIAM"));
        assert!(text.contains("Δ-stepping"));
        assert!(text.contains("1.200"));
        assert!(text.contains("900"));
    }

    #[test]
    fn empty_table_renders_placeholder() {
        assert!(render_table("t", &[]).contains("no rows"));
    }

    #[test]
    fn figure_renders_one_metric() {
        let text = render_figure("Figure 2", &sample_rows(), "rounds", |r| r.rounds as f64);
        assert!(text.contains("rounds"));
        assert!(text.contains("42.0000"));
        assert!(text.contains("900.0000"));
    }

    #[test]
    fn json_roundtrips_structure() {
        let json = to_json(&sample_rows());
        let value = crate::json::from_str(&json).unwrap();
        assert_eq!(value[0]["graph"], "mesh");
        assert_eq!(value[0]["results"][1]["rounds"], 900u64);
    }
}
