//! Regenerates every table and figure of the paper's evaluation section on
//! laptop-scale synthetic proxies.
//!
//! ```text
//! reproduce <experiment> [--scale S] [--seed K] [--json PATH] [--threads N]
//!
//! experiments:
//!   table1   benchmark graph inventory (n, m, diameter)
//!   table2   CL-DIAM vs Δ-stepping: approximation, time, rounds, work
//!   table3   CL-DIAM on the two big graphs
//!   fig1     approximation-ratio series (same runs as table2)
//!   fig2     rounds series (log scale in the paper)
//!   fig3     work series (log scale in the paper)
//!   fig4     scalability vs number of machines
//!   delta    the §5 initial-Δ experiment
//!   all      everything above
//! ```
//!
//! `--scale` rescales every workload (1.0 ≈ tens of thousands of nodes;
//! the default 0.5 finishes in a few minutes on a laptop); `--json` writes the
//! raw rows of the table/figure experiments next to the printed text;
//! `--threads` pins the worker pool every experiment runs on (defaulting to
//! the `CLDIAM_THREADS` environment variable, then the hardware). `fig4`
//! ignores the pin for its measurement loop, since sweeping the worker count
//! is the experiment.

use std::time::Instant;

use cldiam_bench::report::{render_figure, render_table, to_json};
use cldiam_bench::runner::{reference_lower_bound, run_cldiam, run_delta_stepping_best};
use cldiam_bench::workloads::{Workload, WorkloadSet};
use cldiam_bench::ResultRow;
use cldiam_core::{approximate_diameter, ClDiam, ClusterConfig, InitialDelta};
use cldiam_graph::stats::GraphStats;
use cldiam_sssp::{diameter_lower_bound, unweighted_diameter};

struct Options {
    experiment: String,
    scale: f64,
    seed: u64,
    json: Option<String>,
    target_quotient: usize,
    threads: Option<usize>,
}

fn parse_args() -> Options {
    let mut options = Options {
        experiment: "all".to_string(),
        scale: 0.5,
        seed: 1,
        json: None,
        target_quotient: 2_000,
        threads: cldiam_bench::configured_threads(),
    };
    let mut args = std::env::args().skip(1);
    if let Some(first) = args.next() {
        options.experiment = first;
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.scale)
            }
            "--seed" => {
                options.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.seed)
            }
            "--json" => options.json = args.next(),
            "--quotient" => {
                options.target_quotient =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(options.target_quotient)
            }
            "--threads" => {
                options.threads =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).or(options.threads)
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    options
}

/// Quotient-size target for a graph of `n` nodes: the paper keeps the
/// quotient "≤ 100,000 nodes" on multi-million-node inputs; at laptop scale
/// the equivalent rule is a fixed fraction of the graph (clamped below by the
/// CLI floor and above by the paper's absolute cap).
fn quotient_target(n: usize, floor: usize) -> usize {
    (n / 4).clamp(floor, 100_000)
}

/// Runs both algorithms on every Table 2 workload, producing the shared rows
/// behind Table 2 and Figures 1–3.
fn table2_rows(options: &Options) -> Vec<ResultRow> {
    let mut rows = Vec::new();
    for workload in WorkloadSet::table2(options.scale, options.seed) {
        let graph = workload.generate();
        let stats = GraphStats::compute(&graph);
        eprintln!(
            "[table2] {} ({}): {} nodes, {} edges",
            workload.paper_name, workload.proxy, stats.nodes, stats.edges
        );
        let lower = reference_lower_bound(&graph, options.seed);
        let target = quotient_target(stats.nodes, options.target_quotient);
        let cl = run_cldiam(&graph, lower, target, options.seed);
        let ds = run_delta_stepping_best(&graph, lower, options.seed);
        rows.push(ResultRow {
            graph: workload.paper_name.to_string(),
            proxy: workload.proxy.clone(),
            nodes: stats.nodes,
            edges: stats.edges,
            results: vec![cl, ds],
        });
    }
    rows
}

fn table1(options: &Options) {
    println!("\nTable 1 — benchmark graphs (synthetic proxies at scale {})", options.scale);
    println!(
        "{:<14} {:<40} {:>10} {:>10} {:>14} {:>8}",
        "graph", "proxy", "n", "m", "diameter(lb)", "Psi(lb)"
    );
    let mut workloads = WorkloadSet::table2(options.scale, options.seed);
    workloads.extend(WorkloadSet::table3(options.scale, options.seed));
    for w in workloads {
        let graph = w.generate();
        let stats = GraphStats::compute(&graph);
        let lower = diameter_lower_bound(&graph, 2, options.seed);
        let psi = unweighted_diameter(&graph, 2, options.seed);
        println!(
            "{:<14} {:<40} {:>10} {:>10} {:>14} {:>8}",
            w.paper_name, w.proxy, stats.nodes, stats.edges, lower, psi
        );
    }
}

fn table2(options: &Options, rows: &[ResultRow]) {
    println!();
    println!("{}", render_table("Table 2 — CL-DIAM vs Δ-stepping", rows));
    if let Some(path) = &options.json {
        std::fs::write(path, to_json(rows)).expect("write JSON output");
        println!("(raw rows written to {path})");
    }
}

fn figures(rows: &[ResultRow]) {
    println!();
    println!(
        "{}",
        render_figure("Figure 1 — approximation ratio", rows, "ratio", |r| r.approximation)
    );
    println!(
        "{}",
        render_figure("Figure 2 — rounds (paper plots log scale)", rows, "rounds", |r| r.rounds
            as f64)
    );
    println!(
        "{}",
        render_figure("Figure 3 — work (paper plots log scale)", rows, "work", |r| r.work as f64)
    );
}

fn table3(options: &Options) {
    println!("\nTable 3 — big graphs (CL-DIAM only)");
    println!(
        "{:<14} {:<40} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "graph", "proxy", "n", "m", "time(s)", "rounds", "work"
    );
    for w in WorkloadSet::table3(options.scale, options.seed) {
        let graph = w.generate();
        let stats = GraphStats::compute(&graph);
        let lower = reference_lower_bound(&graph, options.seed);
        let result = run_cldiam(
            &graph,
            lower,
            quotient_target(stats.nodes, options.target_quotient),
            options.seed,
        );
        println!(
            "{:<14} {:<40} {:>10} {:>10} {:>10.2} {:>8} {:>12.3e}",
            w.paper_name,
            w.proxy,
            stats.nodes,
            stats.edges,
            result.time_s,
            result.rounds,
            result.work as f64
        );
    }
}

fn figure4(options: &Options) {
    println!("\nFigure 4 — scalability of CL-DIAM vs number of machines");
    let machine_counts = [1usize, 2, 4, 8, 16];
    print!("{:<14} {:>10}", "graph", "nodes");
    for m in machine_counts {
        print!(" {:>12}", format!("{m} machines"));
    }
    println!();
    for w in WorkloadSet::figure4(options.scale, options.seed) {
        let graph = w.generate();
        print!("{:<14} {:>10}", w.paper_name, graph.num_nodes());
        for machines in machine_counts {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(machines).build().expect("thread pool");
            let tau = ClusterConfig::tau_for_quotient_target(
                graph.num_nodes(),
                quotient_target(graph.num_nodes(), options.target_quotient),
            );
            let config = ClusterConfig::default().with_tau(tau).with_seed(options.seed);
            let started = Instant::now();
            let estimate = pool.install(|| approximate_diameter(&graph, &config));
            assert!(estimate.upper_bound > 0);
            print!(" {:>11.2}s", started.elapsed().as_secs_f64());
        }
        println!();
    }
    println!("(the paper reports near-linear speedups from 2 to 16 Spark workers; each");
    println!(" machine count above runs on a dedicated worker pool of that size, so the");
    println!(" speedup you observe is bounded by the physical cores of this host)");
}

fn delta_experiment(options: &Options) {
    println!("\n§5 experiment — sensitivity to the initial Δ (bimodal mesh)");
    let workload: Workload = WorkloadSet::delta_experiment(options.scale, options.seed);
    let graph = workload.generate();
    let lower = reference_lower_bound(&graph, options.seed);
    println!(
        "workload: {} — {} nodes, {} edges, diameter ≥ {lower}",
        workload.proxy,
        graph.num_nodes(),
        graph.num_edges()
    );
    let tau = ClusterConfig::tau_for_quotient_target(
        graph.num_nodes(),
        quotient_target(graph.num_nodes(), options.target_quotient),
    );
    let policies = [
        ("min edge weight", InitialDelta::MinWeight),
        ("average edge weight", InitialDelta::AvgWeight),
        ("graph diameter", InitialDelta::Fixed(lower)),
    ];
    println!(
        "{:<22} {:>14} {:>10} {:>8} {:>12} {:>12}",
        "initial Δ", "estimate", "ratio", "rounds", "Δ_end", "time(s)"
    );
    for (name, policy) in policies {
        let config = ClusterConfig::default()
            .with_tau(tau)
            .with_seed(options.seed)
            .with_initial_delta(policy);
        let driver = ClDiam::new(config);
        let started = Instant::now();
        let clustering = driver.decompose(&graph);
        let estimate = driver.estimate_from_clustering(&graph, &clustering);
        println!(
            "{:<22} {:>14} {:>10.4} {:>8} {:>12} {:>12.2}",
            name,
            estimate.upper_bound,
            estimate.ratio_against(lower),
            estimate.metrics.rounds,
            clustering.delta_end,
            started.elapsed().as_secs_f64()
        );
    }
    println!("(paper: ratio 1.0001 when Δ starts at the minimum weight, ≈2.5 when it starts at the diameter)");
}

fn main() {
    let options = parse_args();
    let experiment = options.experiment.as_str();
    if let Some(threads) = options.threads {
        eprintln!("(running on a {threads}-thread worker pool)");
    }
    let started = Instant::now();
    // Every experiment runs inside the requested pool; fig4 builds its own
    // per-machine-count pools on top, which is the point of that experiment.
    cldiam_bench::install_with_threads(options.threads, || match experiment {
        "table1" => table1(&options),
        "table2" => {
            let rows = table2_rows(&options);
            table2(&options, &rows);
        }
        "table3" => table3(&options),
        "fig1" | "fig2" | "fig3" => {
            let rows = table2_rows(&options);
            figures(&rows);
        }
        "fig4" => figure4(&options),
        "delta" => delta_experiment(&options),
        "all" => {
            table1(&options);
            let rows = table2_rows(&options);
            table2(&options, &rows);
            figures(&rows);
            table3(&options);
            figure4(&options);
            delta_experiment(&options);
        }
        other => {
            eprintln!("unknown experiment {other:?}; expected table1|table2|table3|fig1|fig2|fig3|fig4|delta|all");
            std::process::exit(2);
        }
    });
    eprintln!("\ncompleted {experiment:?} in {:.1}s", started.elapsed().as_secs_f64());
}
