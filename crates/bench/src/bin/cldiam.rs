//! End-to-end diameter approximation of a graph file (or generator spec).
//!
//! ```text
//! cldiam <INPUT> [options]
//!
//! INPUT:
//!   PATH            a graph file: DIMACS .gr, SNAP/TSV edge list, or a
//!                   binary .cldg snapshot (format auto-detected)
//!   gen:SPEC        a synthetic workload, e.g. gen:mesh:32, gen:rmat:10,
//!                   gen:road:40x40, gen:ba:2000:8, gen:gnm:1000:4000,
//!                   gen:roads:3:20x20
//!
//! options:
//!   --tau N         CLUSTER batch size τ (default: auto from --quotient)
//!   --quotient N    quotient-size target for the auto τ rule (default 2000)
//!   --delta D       Δ-stepping bucket width (default: sweep a grid, keep
//!                   the fewest-rounds configuration)
//!   --cluster2      decompose with CLUSTER2 (Algorithm 2) instead of CLUSTER
//!   --algo A        cldiam | delta | both | bounds (default both)
//!   --bounds-budget N
//!                   SSSP budget per component for --algo bounds (default 64)
//!   --tolerance F   stop the bounds engine at ub ≤ F·lb (default 1.0: exact)
//!   --timeout-ms N  wall-clock deadline for --algo bounds: the engine stops
//!                   at the next SSSP boundary past the deadline and reports
//!                   the best-so-far [lb, ub] with interrupted=true
//!   --timeout-checks N
//!                   logical deadline: stop after N cancellation checkpoints
//!                   per component (deterministic, unlike wall-clock time)
//!   --no-quotient   disable the CL-DIAM quotient oracle inside --algo bounds
//!   --directed      keep arc directions (text inputs only; implies
//!                   --algo bounds, the only direction-aware algorithm)
//!   --symmetrize    explicitly request the default symmetrizing load and
//!                   silence the one-way-arc warning
//!   --seed K        RNG seed (default 1)
//!   --threads N     worker-pool size (default: CLDIAM_THREADS, then hardware)
//!   --largest-component
//!                   extract the largest connected component before running
//!                   (what the paper does with every real-world graph);
//!                   in --directed mode: the largest *weakly* connected one
//!   --cache         reuse/write a binary .cldg snapshot next to the input
//!   --compress      hold the graph as delta-varint compressed CSR (and write
//!                   compressed snapshot payloads under --cache)
//!   --shards N      split the compressed payload into N node-range shards
//!                   (implies --compress)
//!   --mmap          serve .cldg payloads zero-copy from a memory mapping
//!                   (needs --cache or a .cldg input)
//!   --verify-snapshot
//!                   verify payload checksums on the mmap path too (buffered
//!                   loads always verify)
//!   --json PATH     write the JSON report rows to PATH ("-" for stdout)
//!   --no-time       report wall-clock fields as 0 so output is byte-identical
//!                   across runs and thread counts (used by the CI matrix)
//! ```
//!
//! The program prints the Table 2-style text row and exits non-zero on any
//! parse error (with the offending line number for text formats).

use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

use cldiam_bench::json::Value;
use cldiam_bench::report::{render_table, to_json};
use cldiam_bench::runner::{
    baseline_source, reference_lower_bound_with_split, run_bounds_cancel,
    run_bounds_directed_cancel, run_cldiam_with, run_delta_stepping_best, run_delta_stepping_with,
};
use cldiam_bench::{ResultRow, RunResult};
use cldiam_core::{AnytimeConfig, ClusterConfig};
use cldiam_gen::GraphSpec;
use cldiam_graph::{
    detect_format, largest_component, load_graph_as, load_graph_cached_with, read_snapshot_file,
    CacheOptions, CancelToken, CompressedGraph, EdgeDirection, FileFormat, Graph, NeighborSource,
    SnapshotGraph, SnapshotOptions,
};
use cldiam_sssp::{BoundsConfig, ComponentSplit};

struct Options {
    input: String,
    tau: Option<usize>,
    target_quotient: usize,
    delta: Option<u32>,
    cluster2: bool,
    algo: Algo,
    bounds_budget: usize,
    tolerance: f64,
    timeout_ms: Option<u64>,
    timeout_checks: Option<u64>,
    no_quotient: bool,
    directed: bool,
    symmetrize: bool,
    seed: u64,
    threads: Option<usize>,
    largest_component: bool,
    cache: bool,
    compress: bool,
    shards: usize,
    mmap: bool,
    verify_snapshot: bool,
    json: Option<String>,
    no_time: bool,
}

/// The loaded graph in whichever CSR tier the flags selected; every
/// undirected pipeline below is generic over [`NeighborSource`], so both
/// variants feed the same code.
enum GraphSource {
    Dense(Graph),
    Compressed(CompressedGraph),
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Cldiam,
    Delta,
    Both,
    Bounds,
}

const USAGE: &str =
    "usage: cldiam <PATH | gen:SPEC> [--tau N] [--quotient N] [--delta D] [--cluster2]\n\
                     \u{20}             [--algo cldiam|delta|both|bounds] [--bounds-budget N]\n\
                     \u{20}             [--tolerance F] [--timeout-ms N] [--timeout-checks N]\n\
                     \u{20}             [--no-quotient] [--directed | --symmetrize]\n\
                     \u{20}             [--seed K] [--threads N] [--largest-component] [--cache]\n\
                     \u{20}             [--compress] [--shards N] [--mmap] [--verify-snapshot]\n\
                     \u{20}             [--json PATH] [--no-time]";

fn usage() -> ! {
    eprintln!(
        "{USAGE}\nrun `cldiam --help` or see the README's \"Supported file formats\" section"
    );
    std::process::exit(2);
}

/// Requested help goes to stdout and exits 0, unlike a usage error.
fn help() -> ! {
    println!(
        "{USAGE}\n\n\
         INPUT is a graph file (DIMACS .gr, SNAP/TSV edge list, or a binary .cldg\n\
         snapshot; format auto-detected) or a generator spec such as gen:mesh:32,\n\
         gen:rmat:10, gen:road:40x40, gen:ba:2000:8, gen:gnm:1000:4000,\n\
         gen:roads:3:20x20.\n\n\
         --tau N               CLUSTER batch size τ (default: auto from --quotient)\n\
         --quotient N          quotient-size target for the auto τ rule (default 2000)\n\
         --delta D             Δ-stepping bucket width (default: sweep a grid)\n\
         --cluster2            decompose with CLUSTER2 (Algorithm 2)\n\
         --algo A              cldiam | delta | both | bounds (default both)\n\
         --bounds-budget N     SSSP budget per component for --algo bounds (default 64)\n\
         --tolerance F         stop the bounds engine at ub ≤ F·lb (default 1.0)\n\
         --timeout-ms N        wall-clock deadline for --algo bounds; an expired run\n\
         \u{20}                     reports the best-so-far [lb, ub] (interrupted=true)\n\
         --timeout-checks N    logical deadline: stop after N cancellation checkpoints\n\
         \u{20}                     per component (deterministic across reruns)\n\
         --no-quotient         disable the quotient oracle inside --algo bounds\n\
         --directed            keep arc directions (text inputs, --algo bounds only)\n\
         --symmetrize          force the default symmetrizing load explicitly\n\
         --seed K              RNG seed (default 1)\n\
         --threads N           worker-pool size (default: CLDIAM_THREADS, then hardware)\n\
         --largest-component   extract the largest connected component first\n\
         --cache               reuse/write a binary .cldg snapshot next to the input\n\
         --compress            hold the graph as delta-varint compressed CSR\n\
         --shards N            shard the compressed payload (implies --compress)\n\
         --mmap                serve .cldg payloads zero-copy (with --cache or .cldg input)\n\
         --verify-snapshot     verify payload checksums on the mmap path too\n\
         --json PATH           write the JSON report rows to PATH (\"-\" for stdout)\n\
         --no-time             report wall-clock fields as 0 (byte-identical reruns)"
    );
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut options = Options {
        input: String::new(),
        tau: None,
        target_quotient: 2_000,
        delta: None,
        cluster2: false,
        algo: Algo::Both,
        bounds_budget: 64,
        tolerance: 1.0,
        timeout_ms: None,
        timeout_checks: None,
        no_quotient: false,
        directed: false,
        symmetrize: false,
        seed: 1,
        threads: cldiam_bench::configured_threads(),
        largest_component: false,
        cache: false,
        compress: false,
        shards: 1,
        mmap: false,
        verify_snapshot: false,
        json: None,
        no_time: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tau" => match value(&mut args, "--tau").parse() {
                Ok(n) if n >= 1 => options.tau = Some(n),
                _ => {
                    eprintln!("--tau expects a positive integer");
                    usage()
                }
            },
            "--quotient" => match value(&mut args, "--quotient").parse() {
                Ok(n) if n >= 1 => options.target_quotient = n,
                _ => {
                    eprintln!("--quotient expects a positive integer");
                    usage()
                }
            },
            "--delta" => match value(&mut args, "--delta").parse() {
                Ok(d) if d >= 1 => options.delta = Some(d),
                _ => {
                    eprintln!("--delta expects a positive integer");
                    usage()
                }
            },
            "--cluster2" => options.cluster2 = true,
            "--algo" => {
                options.algo = match value(&mut args, "--algo").as_str() {
                    "cldiam" => Algo::Cldiam,
                    "delta" => Algo::Delta,
                    "both" => Algo::Both,
                    "bounds" => Algo::Bounds,
                    other => {
                        eprintln!(
                            "unknown --algo {other:?}: expected cldiam | delta | both | bounds"
                        );
                        usage()
                    }
                }
            }
            "--bounds-budget" => match value(&mut args, "--bounds-budget").parse() {
                Ok(n) if n >= 1 => options.bounds_budget = n,
                _ => {
                    eprintln!("--bounds-budget expects a positive integer");
                    usage()
                }
            },
            "--tolerance" => match value(&mut args, "--tolerance").parse::<f64>() {
                Ok(f) if f.is_finite() && f >= 1.0 => options.tolerance = f,
                _ => {
                    eprintln!("--tolerance expects a finite number >= 1.0");
                    usage()
                }
            },
            "--timeout-ms" => match value(&mut args, "--timeout-ms").parse() {
                Ok(n) => options.timeout_ms = Some(n),
                Err(_) => {
                    eprintln!("--timeout-ms expects an unsigned integer (milliseconds)");
                    usage()
                }
            },
            "--timeout-checks" => match value(&mut args, "--timeout-checks").parse() {
                Ok(n) if n >= 1 => options.timeout_checks = Some(n),
                _ => {
                    eprintln!("--timeout-checks expects a positive integer");
                    usage()
                }
            },
            "--no-quotient" => options.no_quotient = true,
            "--directed" => options.directed = true,
            "--symmetrize" => options.symmetrize = true,
            "--seed" => match value(&mut args, "--seed").parse() {
                Ok(k) => options.seed = k,
                Err(_) => {
                    eprintln!("--seed expects an unsigned integer");
                    usage()
                }
            },
            "--threads" => match value(&mut args, "--threads").parse() {
                Ok(n) if n >= 1 => options.threads = Some(n),
                _ => {
                    eprintln!("--threads expects a positive integer");
                    usage()
                }
            },
            "--largest-component" | "--lcc" => options.largest_component = true,
            "--cache" => options.cache = true,
            "--compress" => options.compress = true,
            "--shards" => match value(&mut args, "--shards").parse() {
                Ok(n) if n >= 1 => {
                    options.shards = n;
                    options.compress = true;
                }
                _ => {
                    eprintln!("--shards expects a positive integer");
                    usage()
                }
            },
            "--mmap" => options.mmap = true,
            "--verify-snapshot" => options.verify_snapshot = true,
            "--json" => options.json = Some(value(&mut args, "--json")),
            "--no-time" => options.no_time = true,
            "--help" | "-h" => help(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
            other if options.input.is_empty() => options.input = other.to_string(),
            other => {
                eprintln!("unexpected extra input {other:?}");
                usage()
            }
        }
    }
    if options.input.is_empty() {
        eprintln!("missing input: a graph file path or a gen:SPEC");
        usage();
    }
    if options.directed && options.symmetrize {
        eprintln!("--directed and --symmetrize are mutually exclusive");
        usage();
    }
    if options.directed {
        if options.input.starts_with("gen:") {
            eprintln!("--directed needs a text graph file; gen: workloads are undirected");
            usage();
        }
        match options.algo {
            Algo::Bounds => {}
            // The default `both` silently narrows: bounds is the only
            // direction-aware algorithm.
            Algo::Both => options.algo = Algo::Bounds,
            Algo::Cldiam | Algo::Delta => {
                eprintln!("--directed supports --algo bounds only");
                usage();
            }
        }
        if options.cache {
            eprintln!("[cldiam] --cache ignored: binary snapshots are undirected");
            options.cache = false;
        }
        if options.compress || options.mmap {
            eprintln!(
                "--directed supports neither --compress nor --mmap: the directed bounds \
                       engine needs the dense in-arc arrays"
            );
            usage();
        }
    }
    if options.mmap && options.input.starts_with("gen:") {
        eprintln!("--mmap needs a file input: gen: workloads have nothing to map");
        usage();
    }
    if options.timeout_ms.is_some() || options.timeout_checks.is_some() {
        match options.algo {
            Algo::Bounds => {}
            // As with --directed, the default `both` narrows silently:
            // bounds is the only anytime (interruptible) algorithm.
            Algo::Both => options.algo = Algo::Bounds,
            Algo::Cldiam | Algo::Delta => {
                eprintln!("--timeout-ms / --timeout-checks support --algo bounds only");
                usage();
            }
        }
    }
    options
}

/// Builds the cooperative cancellation token from the timeout flags. The
/// wall deadline starts ticking here, so call this right before the run.
fn cancel_token(options: &Options) -> CancelToken {
    match (options.timeout_ms, options.timeout_checks) {
        (None, None) => CancelToken::never(),
        (Some(ms), None) => CancelToken::with_deadline(Duration::from_millis(ms)),
        (None, Some(k)) => CancelToken::with_check_limit(k),
        (Some(ms), Some(k)) => {
            CancelToken::with_check_limit(k).and_deadline(Duration::from_millis(ms))
        }
    }
}

/// Wraps a dense graph in the tier the flags selected.
fn tiered(graph: Graph, options: &Options) -> GraphSource {
    if options.compress {
        GraphSource::Compressed(CompressedGraph::from_graph(&graph, options.shards))
    } else {
        GraphSource::Dense(graph)
    }
}

/// Loads the input graph: a `gen:` spec or a file in any supported format.
fn load_input(options: &Options) -> (GraphSource, String) {
    if let Some(spec_text) = options.input.strip_prefix("gen:") {
        let spec = GraphSpec::parse(spec_text).unwrap_or_else(|e| {
            eprintln!("bad gen: spec {spec_text:?}: {e}");
            std::process::exit(2);
        });
        let graph = spec.generate(options.seed);
        let label = spec.label();
        return (tiered(graph, options), label);
    }
    let label = Path::new(&options.input)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| options.input.clone());
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("cannot load {:?}: {e}", options.input);
        std::process::exit(1);
    };
    if options.cache {
        let cache_options = CacheOptions {
            compress: options.compress,
            shards: options.shards,
            mmap: options.mmap,
            verify: options.verify_snapshot,
        };
        let (graph, from_snapshot) =
            load_graph_cached_with(&options.input, &cache_options).unwrap_or_else(|e| fail(&e));
        if from_snapshot {
            eprintln!("(loaded binary snapshot, text parse skipped)");
        }
        let source = match graph {
            SnapshotGraph::Dense(g) => GraphSource::Dense(g),
            SnapshotGraph::Compressed(c) => GraphSource::Compressed(c),
        };
        return (source, label);
    }
    // Sniff the head so snapshot inputs can be served in their native tier
    // (and zero-copy under --mmap) without reading the whole file first.
    let path = Path::new(&options.input);
    let mut head = Vec::new();
    match std::fs::File::open(path) {
        Ok(file) => {
            if let Err(e) = file.take(4096).read_to_end(&mut head) {
                fail(&e);
            }
        }
        Err(e) => fail(&e),
    }
    if detect_format(path, &head) == FileFormat::Binary && !options.directed {
        let snapshot_options =
            SnapshotOptions { mmap: options.mmap, verify: options.verify_snapshot };
        let snap = read_snapshot_file(path, &snapshot_options).unwrap_or_else(|e| fail(&e));
        let source = match snap.graph {
            SnapshotGraph::Compressed(c) => GraphSource::Compressed(c),
            SnapshotGraph::Dense(g) => tiered(g, options),
        };
        return (source, label);
    }
    if options.mmap {
        eprintln!("--mmap needs a .cldg snapshot input or --cache (text has nothing to map)");
        std::process::exit(2);
    }
    let direction =
        if options.directed { EdgeDirection::Directed } else { EdgeDirection::Symmetrize };
    let loaded = load_graph_as(&options.input, direction).unwrap_or_else(|e| fail(&e));
    if loaded.asymmetric_arcs > 0 {
        if options.directed {
            eprintln!("[cldiam] {} one-way arc(s) kept directed", loaded.asymmetric_arcs);
        } else if !options.symmetrize {
            eprintln!(
                "[cldiam] warning: {} arc(s) u→v have no companion v→u; the input \
                 looks directed and was symmetrized — pass --directed to keep arc \
                 directions (or --symmetrize to silence this check)",
                loaded.asymmetric_arcs
            );
        }
    }
    (tiered(loaded.graph, options), label)
}

fn main() {
    let options = parse_args();
    cldiam_bench::install_with_threads(options.threads, || run(&options));
}

/// Streams the bounds engine's iteration trace to stderr, one line per SSSP
/// (or per oracle consult), so long runs show their anytime progress.
fn print_bounds_progress(result: &cldiam_bench::RunResult) {
    let Some(Value::Array(items)) = &result.iterations else { return };
    for (i, it) in items.iter().enumerate() {
        let source = match it.get("source").as_u64() {
            Some(s) => format!("source={s}"),
            None => "quotient-oracle".to_string(),
        };
        let upper = match it.get("upper").as_u64() {
            Some(u) => u.to_string(),
            None => "inf".to_string(),
        };
        eprintln!(
            "[bounds] it {}: {} sssp={} lb={} ub={} open={}",
            i + 1,
            source,
            it.get("sssp_runs").as_u64().unwrap_or(0),
            it.get("lower").as_u64().unwrap_or(0),
            upper,
            it.get("open").as_u64().unwrap_or(0),
        );
    }
}

/// The full undirected pipeline — CL-DIAM, the Δ-stepping baseline and the
/// bounds engine all run through [`NeighborSource`], so the dense and the
/// compressed tier share this code without branching.
fn run_undirected<G: NeighborSource>(graph: &G, options: &Options) -> Vec<RunResult> {
    let tau = options.tau.unwrap_or_else(|| {
        ClusterConfig::tau_for_quotient_target(graph.num_nodes(), options.target_quotient)
    });
    let config = ClusterConfig::default()
        .with_tau(tau)
        .with_seed(options.seed)
        .with_cluster2(options.cluster2);
    let bounds_config = BoundsConfig::default()
        .with_max_sssp(options.bounds_budget)
        .with_tolerance(options.tolerance);

    let mut results = Vec::new();
    // One connectivity pass serves the reference lower bound and the bounds
    // engine alike.
    let split = ComponentSplit::compute(graph);
    if options.algo != Algo::Bounds {
        let lower = reference_lower_bound_with_split(graph, options.seed, &split);
        if options.algo != Algo::Delta {
            results.push(run_cldiam_with(graph, lower, &config));
        }
        if options.algo != Algo::Cldiam {
            results.push(match options.delta {
                Some(delta) => run_delta_stepping_with(
                    graph,
                    baseline_source(graph, options.seed),
                    delta,
                    lower,
                ),
                None => run_delta_stepping_best(graph, lower, options.seed),
            });
        }
    } else {
        let cluster = if options.no_quotient { None } else { Some(config.clone()) };
        let anytime = AnytimeConfig { bounds: bounds_config, cluster };
        let result = run_bounds_cancel(graph, &anytime, &split, &cancel_token(options));
        print_bounds_progress(&result);
        results.push(result);
    }
    results
}

fn run(options: &Options) {
    let load_started = Instant::now();
    let (mut source, label) = load_input(options);
    let mut proxy = options.input.clone();
    if options.largest_component {
        // Component extraction is dense machinery; a compressed source round
        // trips through the dense tier and is recompressed afterwards.
        let was_compressed = matches!(source, GraphSource::Compressed(_));
        let dense = match source {
            GraphSource::Dense(g) => g,
            GraphSource::Compressed(c) => c.to_graph(),
        };
        let raw_nodes = dense.num_nodes();
        let (core, _) = largest_component(&dense);
        eprintln!("[cldiam] largest component: {} of {} nodes kept", core.num_nodes(), raw_nodes);
        proxy.push_str(" (largest component)");
        source = if was_compressed || options.compress {
            GraphSource::Compressed(CompressedGraph::from_graph(&core, options.shards))
        } else {
            GraphSource::Dense(core)
        };
    }
    let (nodes, edges, tier) = match &source {
        GraphSource::Dense(g) => (g.num_nodes(), g.num_edges(), "dense csr".to_string()),
        GraphSource::Compressed(c) => {
            (c.num_nodes(), c.num_edges(), format!("compressed csr, {} shard(s)", c.num_shards()))
        }
    };
    eprintln!(
        "[cldiam] {label}: {nodes} nodes, {edges} edges ({tier}; loaded in {:.2}s)",
        load_started.elapsed().as_secs_f64()
    );
    if nodes == 0 {
        eprintln!("[cldiam] the graph is empty; nothing to estimate");
        std::process::exit(1);
    }

    let mut results = match &source {
        GraphSource::Dense(graph) if graph.is_directed() => {
            // parse_args narrowed directed inputs to the bounds engine, which
            // runs the whole digraph (no component split) with no oracle.
            let bounds_config = BoundsConfig::default()
                .with_max_sssp(options.bounds_budget)
                .with_tolerance(options.tolerance);
            let anytime = AnytimeConfig { bounds: bounds_config, cluster: None };
            let result = run_bounds_directed_cancel(graph, &anytime, &cancel_token(options));
            print_bounds_progress(&result);
            vec![result]
        }
        GraphSource::Dense(graph) => run_undirected(graph, options),
        GraphSource::Compressed(graph) => run_undirected(graph, options),
    };
    if options.no_time {
        for result in &mut results {
            result.time_s = 0.0;
        }
    }

    let rows = vec![ResultRow { graph: label.clone(), proxy, nodes, edges, results }];
    println!("{}", render_table(&format!("cldiam — {label}"), &rows));
    if let Some(path) = &options.json {
        let json = to_json(&rows);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("cannot write JSON to {path:?}: {e}");
                std::process::exit(1);
            });
            eprintln!("(raw rows written to {path})");
        }
    }
}
