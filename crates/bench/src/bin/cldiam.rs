//! End-to-end diameter approximation of a graph file (or generator spec).
//!
//! ```text
//! cldiam <INPUT> [options]
//!
//! INPUT:
//!   PATH            a graph file: DIMACS .gr, SNAP/TSV edge list, or a
//!                   binary .cldg snapshot (format auto-detected)
//!   gen:SPEC        a synthetic workload, e.g. gen:mesh:32, gen:rmat:10,
//!                   gen:road:40x40, gen:ba:2000:8, gen:gnm:1000:4000,
//!                   gen:roads:3:20x20
//!
//! options:
//!   --tau N         CLUSTER batch size τ (default: auto from --quotient)
//!   --quotient N    quotient-size target for the auto τ rule (default 2000)
//!   --delta D       Δ-stepping bucket width (default: sweep a grid, keep
//!                   the fewest-rounds configuration)
//!   --cluster2      decompose with CLUSTER2 (Algorithm 2) instead of CLUSTER
//!   --algo A        cldiam | delta | both (default both)
//!   --seed K        RNG seed (default 1)
//!   --threads N     worker-pool size (default: CLDIAM_THREADS, then hardware)
//!   --largest-component
//!                   extract the largest connected component before running
//!                   (what the paper does with every real-world graph)
//!   --cache         reuse/write a binary .cldg snapshot next to the input
//!   --json PATH     write the JSON report rows to PATH ("-" for stdout)
//!   --no-time       report wall-clock fields as 0 so output is byte-identical
//!                   across runs and thread counts (used by the CI matrix)
//! ```
//!
//! The program prints the Table 2-style text row and exits non-zero on any
//! parse error (with the offending line number for text formats).

use std::time::Instant;

use cldiam_bench::report::{render_table, to_json};
use cldiam_bench::runner::{
    baseline_source, reference_lower_bound, run_cldiam_with, run_delta_stepping_best,
    run_delta_stepping_with,
};
use cldiam_bench::ResultRow;
use cldiam_core::ClusterConfig;
use cldiam_gen::GraphSpec;
use cldiam_graph::{largest_component, load_graph, load_graph_cached, Graph};

struct Options {
    input: String,
    tau: Option<usize>,
    target_quotient: usize,
    delta: Option<u32>,
    cluster2: bool,
    algo: Algo,
    seed: u64,
    threads: Option<usize>,
    largest_component: bool,
    cache: bool,
    json: Option<String>,
    no_time: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Cldiam,
    Delta,
    Both,
}

const USAGE: &str =
    "usage: cldiam <PATH | gen:SPEC> [--tau N] [--quotient N] [--delta D] [--cluster2]\n\
                     \u{20}             [--algo cldiam|delta|both] [--seed K] [--threads N]\n\
                     \u{20}             [--largest-component] [--cache] [--json PATH] [--no-time]";

fn usage() -> ! {
    eprintln!(
        "{USAGE}\nrun `cldiam --help` or see the README's \"Supported file formats\" section"
    );
    std::process::exit(2);
}

/// Requested help goes to stdout and exits 0, unlike a usage error.
fn help() -> ! {
    println!(
        "{USAGE}\n\n\
         INPUT is a graph file (DIMACS .gr, SNAP/TSV edge list, or a binary .cldg\n\
         snapshot; format auto-detected) or a generator spec such as gen:mesh:32,\n\
         gen:rmat:10, gen:road:40x40, gen:ba:2000:8, gen:gnm:1000:4000,\n\
         gen:roads:3:20x20.\n\n\
         --tau N               CLUSTER batch size τ (default: auto from --quotient)\n\
         --quotient N          quotient-size target for the auto τ rule (default 2000)\n\
         --delta D             Δ-stepping bucket width (default: sweep a grid)\n\
         --cluster2            decompose with CLUSTER2 (Algorithm 2)\n\
         --algo A              cldiam | delta | both (default both)\n\
         --seed K              RNG seed (default 1)\n\
         --threads N           worker-pool size (default: CLDIAM_THREADS, then hardware)\n\
         --largest-component   extract the largest connected component first\n\
         --cache               reuse/write a binary .cldg snapshot next to the input\n\
         --json PATH           write the JSON report rows to PATH (\"-\" for stdout)\n\
         --no-time             report wall-clock fields as 0 (byte-identical reruns)"
    );
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut options = Options {
        input: String::new(),
        tau: None,
        target_quotient: 2_000,
        delta: None,
        cluster2: false,
        algo: Algo::Both,
        seed: 1,
        threads: cldiam_bench::configured_threads(),
        largest_component: false,
        cache: false,
        json: None,
        no_time: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tau" => match value(&mut args, "--tau").parse() {
                Ok(n) if n >= 1 => options.tau = Some(n),
                _ => {
                    eprintln!("--tau expects a positive integer");
                    usage()
                }
            },
            "--quotient" => match value(&mut args, "--quotient").parse() {
                Ok(n) if n >= 1 => options.target_quotient = n,
                _ => {
                    eprintln!("--quotient expects a positive integer");
                    usage()
                }
            },
            "--delta" => match value(&mut args, "--delta").parse() {
                Ok(d) if d >= 1 => options.delta = Some(d),
                _ => {
                    eprintln!("--delta expects a positive integer");
                    usage()
                }
            },
            "--cluster2" => options.cluster2 = true,
            "--algo" => {
                options.algo = match value(&mut args, "--algo").as_str() {
                    "cldiam" => Algo::Cldiam,
                    "delta" => Algo::Delta,
                    "both" => Algo::Both,
                    other => {
                        eprintln!("unknown --algo {other:?}: expected cldiam | delta | both");
                        usage()
                    }
                }
            }
            "--seed" => match value(&mut args, "--seed").parse() {
                Ok(k) => options.seed = k,
                Err(_) => {
                    eprintln!("--seed expects an unsigned integer");
                    usage()
                }
            },
            "--threads" => match value(&mut args, "--threads").parse() {
                Ok(n) if n >= 1 => options.threads = Some(n),
                _ => {
                    eprintln!("--threads expects a positive integer");
                    usage()
                }
            },
            "--largest-component" | "--lcc" => options.largest_component = true,
            "--cache" => options.cache = true,
            "--json" => options.json = Some(value(&mut args, "--json")),
            "--no-time" => options.no_time = true,
            "--help" | "-h" => help(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
            other if options.input.is_empty() => options.input = other.to_string(),
            other => {
                eprintln!("unexpected extra input {other:?}");
                usage()
            }
        }
    }
    if options.input.is_empty() {
        eprintln!("missing input: a graph file path or a gen:SPEC");
        usage();
    }
    options
}

/// Loads the input graph: a `gen:` spec or a file in any supported format.
fn load_input(options: &Options) -> (Graph, String) {
    if let Some(spec_text) = options.input.strip_prefix("gen:") {
        let spec = GraphSpec::parse(spec_text).unwrap_or_else(|e| {
            eprintln!("bad gen: spec {spec_text:?}: {e}");
            std::process::exit(2);
        });
        let graph = spec.generate(options.seed);
        return (graph, spec.label());
    }
    let result = if options.cache {
        load_graph_cached(&options.input).map(|(graph, from_snapshot)| {
            if from_snapshot {
                eprintln!("(loaded binary snapshot, text parse skipped)");
            }
            graph
        })
    } else {
        load_graph(&options.input)
    };
    let graph = result.unwrap_or_else(|e| {
        eprintln!("cannot load {:?}: {e}", options.input);
        std::process::exit(1);
    });
    let label = std::path::Path::new(&options.input)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| options.input.clone());
    (graph, label)
}

fn main() {
    let options = parse_args();
    cldiam_bench::install_with_threads(options.threads, || run(&options));
}

fn run(options: &Options) {
    let load_started = Instant::now();
    let (mut graph, label) = load_input(options);
    let raw_nodes = graph.num_nodes();
    let mut proxy = options.input.clone();
    if options.largest_component {
        let (core, _) = largest_component(&graph);
        graph = core;
        proxy.push_str(" (largest component)");
        eprintln!("[cldiam] largest component: {} of {} nodes kept", graph.num_nodes(), raw_nodes);
    }
    eprintln!(
        "[cldiam] {label}: {} nodes, {} edges (loaded in {:.2}s)",
        graph.num_nodes(),
        graph.num_edges(),
        load_started.elapsed().as_secs_f64()
    );
    if graph.num_nodes() == 0 {
        eprintln!("[cldiam] the graph is empty; nothing to estimate");
        std::process::exit(1);
    }

    let lower = reference_lower_bound(&graph, options.seed);
    let tau = options.tau.unwrap_or_else(|| {
        ClusterConfig::tau_for_quotient_target(graph.num_nodes(), options.target_quotient)
    });
    let config = ClusterConfig::default()
        .with_tau(tau)
        .with_seed(options.seed)
        .with_cluster2(options.cluster2);

    let mut results = Vec::new();
    if options.algo != Algo::Delta {
        results.push(run_cldiam_with(&graph, lower, &config));
    }
    if options.algo != Algo::Cldiam {
        results.push(match options.delta {
            Some(delta) => {
                run_delta_stepping_with(&graph, baseline_source(&graph, options.seed), delta, lower)
            }
            None => run_delta_stepping_best(&graph, lower, options.seed),
        });
    }
    if options.no_time {
        for result in &mut results {
            result.time_s = 0.0;
        }
    }

    let rows = vec![ResultRow {
        graph: label.clone(),
        proxy,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        results,
    }];
    println!("{}", render_table(&format!("cldiam — {label}"), &rows));
    if let Some(path) = &options.json {
        let json = to_json(&rows);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("cannot write JSON to {path:?}: {e}");
                std::process::exit(1);
            });
            eprintln!("(raw rows written to {path})");
        }
    }
}
