//! Storage-format benchmark: bytes/edge of the dense versus the delta-varint
//! compressed CSR, and cold-load wall time of a text parse versus a v1
//! snapshot read versus a v2 mmap-backed load.
//!
//! ```text
//! storage_bench [--out PATH] [--seed K] [--threads N]
//! ```
//!
//! Workloads: the repo's standard `mesh:64` and `rmat:10` specs (the latter
//! under both unit and uniform fixed-point weights, the two ends of the
//! weight-entropy spectrum) and a 400x60 road-network spec in the shape of
//! the paper's DIMACS inputs. Every load is checked bit-identical to the
//! in-memory dense graph before its timing is recorded.
//!
//! The rows land in `BENCH_storage.json`, which is committed so the
//! compression and cold-start claims are reviewable without rerunning.

use std::time::Instant;

use cldiam_bench::json::{object, to_string_pretty, Value};
use cldiam_gen::{mesh, rmat, road_network, RmatParams, WeightModel};
use cldiam_graph::{
    io::binary, io::dimacs, load_graph, read_snapshot_file, write_snapshot_file, CompressedGraph,
    Graph, SnapshotOptions, SnapshotPayload,
};

/// Wall time of the best of three runs of `op`, with every result checked
/// against the reference dense graph.
fn best_of_3(reference: &Graph, mut op: impl FnMut() -> Graph) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let loaded = op();
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(&loaded, reference, "a load path diverged from the in-memory graph");
        best = best.min(elapsed);
    }
    best
}

fn bench_one(name: &str, graph: &Graph) -> Value {
    let compressed = CompressedGraph::from_graph(graph, 1);
    let dense_bytes = graph.memory_bytes();
    let compressed_bytes = compressed.memory_bytes();
    let edges = graph.num_edges().max(1);
    let ratio = dense_bytes as f64 / compressed_bytes as f64;

    let dir = std::env::temp_dir().join(format!("cldiam-storage-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let text_path = dir.join(format!("{name}.gr"));
    let v1_path = dir.join(format!("{name}.v1.cldg"));
    let v2_path = dir.join(format!("{name}.v2.cldg"));
    dimacs::write_dimacs_file(graph, &text_path).expect("write text fixture");
    binary::write_binary_file(graph, &v1_path).expect("write v1 snapshot");
    write_snapshot_file(&SnapshotPayload::Compressed(&compressed), &v2_path)
        .expect("write v2 snapshot");

    let text_s = best_of_3(graph, || load_graph(&text_path).expect("text parse"));
    let v1_s = best_of_3(graph, || {
        read_snapshot_file(&v1_path, &SnapshotOptions { mmap: false, verify: true })
            .expect("v1 read")
            .graph
            .into_dense()
    });
    // The mmap load itself is O(header); decompression to a dense graph for
    // the equality check happens outside the timed region.
    let mut mmap_s = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let snap = read_snapshot_file(&v2_path, &SnapshotOptions { mmap: true, verify: false })
            .expect("v2 mmap load");
        mmap_s = mmap_s.min(started.elapsed().as_secs_f64());
        assert_eq!(snap.graph.into_dense(), *graph, "mmap load diverged");
    }
    for path in [&text_path, &v1_path, &v2_path] {
        std::fs::remove_file(path).ok();
    }

    eprintln!(
        "[storage_bench] {name}: {:.2} B/edge dense vs {:.2} B/edge compressed ({ratio:.2}x); \
         cold load {text_s:.4}s text vs {v1_s:.4}s v1 vs {mmap_s:.6}s v2-mmap ({:.0}x)",
        dense_bytes as f64 / edges as f64,
        compressed_bytes as f64 / edges as f64,
        text_s / mmap_s,
    );

    object([
        ("workload", name.into()),
        ("nodes", graph.num_nodes().into()),
        ("edges", graph.num_edges().into()),
        (
            "storage",
            object([
                ("weight_coding", compressed.coding_name().into()),
                ("dense_bytes", dense_bytes.into()),
                ("dense_bytes_per_edge", (dense_bytes as f64 / edges as f64).into()),
                ("compressed_bytes", compressed_bytes.into()),
                ("compressed_bytes_per_edge", (compressed_bytes as f64 / edges as f64).into()),
                ("compression_ratio", ratio.into()),
            ]),
        ),
        (
            "cold_load_s",
            object([
                ("text_parse", text_s.into()),
                ("v1_read", v1_s.into()),
                ("v2_mmap", mmap_s.into()),
                ("text_over_mmap_speedup", (text_s / mmap_s).into()),
            ]),
        ),
    ])
}

fn main() {
    let mut out = "BENCH_storage.json".to_string();
    let mut seed = 7u64;
    let mut threads = cldiam_bench::configured_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out requires a path"),
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed expects an integer")
            }
            "--threads" => {
                threads =
                    Some(args.next().and_then(|v| v.parse().ok()).expect("--threads expects N"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: storage_bench [--out PATH] [--seed K] [--threads N]");
                std::process::exit(2);
            }
        }
    }
    cldiam_bench::install_with_threads(threads, || {
        let workloads: Vec<(&str, Graph)> = vec![
            ("mesh64", mesh(64, WeightModel::UniformUnit, seed)),
            ("rmat10-unit", rmat(RmatParams::paper(10), WeightModel::Unit, seed)),
            ("rmat10-uniform", rmat(RmatParams::paper(10), WeightModel::UniformUnit, seed)),
            ("road-400x60", road_network(400, 60, seed)),
        ];
        let rows: Vec<Value> =
            workloads.iter().map(|(name, graph)| bench_one(name, graph)).collect();
        let doc = object([
            (
                "host",
                object([
                    ("cpus", std::thread::available_parallelism().map_or(0, |p| p.get()).into()),
                    (
                        "caveat",
                        "single-CPU container; timings are warm-page-cache wall times, \
                         best of 3 — relative order is meaningful, absolute values are not"
                            .into(),
                    ),
                ]),
            ),
            ("rows", Value::Array(rows)),
        ]);
        std::fs::write(&out, format!("{}\n", to_string_pretty(&doc)))
            .expect("write benchmark output");
        eprintln!("[storage_bench] wrote {out}");
    });
}
