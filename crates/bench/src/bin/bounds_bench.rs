//! Convergence benchmark for the anytime bounds engine.
//!
//! ```text
//! bounds_bench [--out PATH] [--seed K] [--threads N]
//! ```
//!
//! For each workload (`gen:rmat:10`, `gen:mesh:64` and the checked-in
//! `tests/data/roads.gr`, each reduced to its largest component) the program
//! runs
//!
//! 1. the **anytime engine** (`--algo bounds` configuration: quotient oracle
//!    on, default budget) and records how many SSSPs it needs to certify
//!    `ub/lb ≤ 1.1` and to converge outright, and
//! 2. the **fixed-budget pipeline** the CLI used before the engine existed —
//!    `diameter_lower_bound` (4 sweep SSSPs) + a full `CL-DIAM` run — and
//!    charges it in SSSP-equivalents: 4 sweeps, plus 1 for the clustering
//!    (Δ-growing settles every node exactly once, the work of one
//!    multi-source SSSP pass), plus 1 for the quotient stage.
//!
//! The rows land in `BENCH_bounds.json` (see `--out`), which is committed so
//! the convergence claim is reviewable without rerunning.

use cldiam_bench::json::{object, to_string_pretty, Value};
use cldiam_bench::runner::reference_lower_bound_with_split;
use cldiam_core::{
    anytime_diameter_with_split, approximate_diameter, AnytimeConfig, ClusterConfig,
};
use cldiam_gen::GraphSpec;
use cldiam_graph::{largest_component, load_graph, Graph, INFINITY};
use cldiam_sssp::{BoundsConfig, BoundsOutcome, ComponentSplit};

/// SSSP-equivalents charged to the fixed-budget pipeline: 4 lower-bound
/// sweeps + 1 clustering pass + 1 quotient stage.
const BASELINE_SSSP_EQUIVALENTS: usize = 6;

fn sssp_to_ratio(outcome: &BoundsOutcome, ratio: f64) -> Option<usize> {
    outcome
        .iterations
        .iter()
        .find(|it| it.upper != INFINITY && (it.upper as f64) <= ratio * (it.lower as f64))
        .map(|it| it.sssp_runs)
}

fn bench_one(name: &str, graph: &Graph, seed: u64) -> Value {
    let (core, _) = largest_component(graph);
    let split = ComponentSplit::compute(&core);
    let tau = ClusterConfig::tau_for_quotient_target(core.num_nodes(), 2_000);
    let cluster = ClusterConfig::default().with_tau(tau).with_seed(seed);

    let anytime = AnytimeConfig { bounds: BoundsConfig::default(), cluster: Some(cluster.clone()) };
    let outcome = anytime_diameter_with_split(&core, &anytime, &split);

    let reference = reference_lower_bound_with_split(&core, seed, &split);
    let estimate = approximate_diameter(&core, &cluster);
    let baseline_ratio =
        if reference == 0 { 1.0 } else { estimate.upper_bound as f64 / reference as f64 };

    eprintln!(
        "[bounds_bench] {name}: engine lb={} ub={} (1.1-tight after {:?} SSSPs, {} total); \
         baseline [{reference}, {}] in {BASELINE_SSSP_EQUIVALENTS} SSSP-equivalents",
        outcome.lower,
        outcome.upper,
        sssp_to_ratio(&outcome, 1.1),
        outcome.sssp_runs,
        estimate.upper_bound,
    );

    let to_value = |n: Option<usize>| n.map_or(Value::Null, Value::from);
    object([
        ("workload", name.into()),
        ("nodes", core.num_nodes().into()),
        ("edges", core.num_edges().into()),
        (
            "anytime",
            object([
                ("lower", outcome.lower.into()),
                ("upper", outcome.upper.into()),
                ("converged", Value::Bool(outcome.converged)),
                ("sssp_total", outcome.sssp_runs.into()),
                ("sssp_to_ratio_1_1", to_value(sssp_to_ratio(&outcome, 1.1))),
                ("sssp_to_converged", to_value(outcome.converged.then_some(outcome.sssp_runs))),
            ]),
        ),
        (
            "fixed_budget",
            object([
                ("lower", reference.into()),
                ("upper", estimate.upper_bound.into()),
                ("ratio", baseline_ratio.into()),
                ("sssp_equivalents", BASELINE_SSSP_EQUIVALENTS.into()),
                ("sweep_sssp", 4usize.into()),
                ("clustering_sssp_equivalent", 1usize.into()),
                ("quotient_sssp_equivalent", 1usize.into()),
            ]),
        ),
    ])
}

fn main() {
    let mut out = "BENCH_bounds.json".to_string();
    let mut seed = 1u64;
    let mut threads = cldiam_bench::configured_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out requires a path"),
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed expects an integer")
            }
            "--threads" => {
                threads =
                    Some(args.next().and_then(|v| v.parse().ok()).expect("--threads expects N"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bounds_bench [--out PATH] [--seed K] [--threads N]");
                std::process::exit(2);
            }
        }
    }
    cldiam_bench::install_with_threads(threads, || {
        let mut rows = Vec::new();
        for spec_text in ["rmat:10", "mesh:64"] {
            let spec = GraphSpec::parse(spec_text).expect("built-in spec parses");
            let graph = spec.generate(seed);
            rows.push(bench_one(&format!("gen:{spec_text}"), &graph, seed));
        }
        if let Ok(graph) = load_graph("tests/data/roads.gr") {
            rows.push(bench_one("tests/data/roads.gr (largest component)", &graph, seed));
        } else {
            eprintln!("[bounds_bench] tests/data/roads.gr not found; skipping");
        }
        let doc = to_string_pretty(&Value::Array(rows));
        std::fs::write(&out, format!("{doc}\n")).expect("write benchmark output");
        eprintln!("[bounds_bench] wrote {out}");
    });
}
