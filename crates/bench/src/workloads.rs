//! Laptop-scale proxies for the paper's benchmark graphs (Table 1).
//!
//! Every workload is a [`GraphSpec`] whose size is controlled by a global
//! `scale` multiplier (`1.0` ≈ a few tens of thousands of nodes, comfortable
//! on a laptop; larger values stress-test the pipeline). The mapping to the
//! paper's graphs is documented per workload and in `DESIGN.md`
//! ("Substitutions").

use cldiam_gen::{GraphSpec, WeightModel};
use cldiam_graph::{largest_component, Graph};

/// A named benchmark workload: the paper's graph it stands in for, plus the
/// generator specification at the chosen scale.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The paper's name for the graph (e.g. `roads-USA`).
    pub paper_name: &'static str,
    /// Short description of the proxy.
    pub proxy: String,
    /// Generator specification.
    pub spec: GraphSpec,
    /// Weight model override (`None` uses the family's paper default).
    pub weight_model: Option<WeightModel>,
    /// Seed used for generation.
    pub seed: u64,
}

impl Workload {
    /// Generates the workload graph (largest connected component, as in the
    /// paper's experiments).
    pub fn generate(&self) -> Graph {
        let raw = match self.weight_model {
            Some(model) => self.spec.generate_with(model, self.seed),
            None => self.spec.generate(self.seed),
        };
        let (core, _) = largest_component(&raw);
        core
    }
}

/// The collections of workloads used by the different experiments.
#[derive(Clone, Debug)]
pub struct WorkloadSet;

impl WorkloadSet {
    /// The six graphs of Table 2 (and Figures 1–3), scaled by `scale`.
    pub fn table2(scale: f64, seed: u64) -> Vec<Workload> {
        let s = scale.max(0.05);
        let side = |base: f64| ((base * s.sqrt()).round() as usize).max(8);
        let nodes = |base: f64| ((base * s).round() as usize).max(64);
        let rmat_scale = |base: i32| {
            let extra = s.log2().round() as i32;
            (base + extra).clamp(8, 22) as u32
        };
        vec![
            Workload {
                paper_name: "roads-USA",
                proxy: format!("synthetic road lattice {0}x{0}", side(160.0)),
                spec: GraphSpec::RoadNetwork { rows: side(160.0), cols: side(160.0) },
                weight_model: None,
                seed,
            },
            Workload {
                paper_name: "roads-CAL",
                proxy: format!("synthetic road lattice {0}x{0}", side(90.0)),
                spec: GraphSpec::RoadNetwork { rows: side(90.0), cols: side(90.0) },
                weight_model: None,
                seed: seed + 1,
            },
            Workload {
                paper_name: "mesh",
                proxy: format!("{0}x{0} mesh, uniform (0,1] weights", side(128.0)),
                spec: GraphSpec::Mesh { side: side(128.0) },
                weight_model: None,
                seed: seed + 2,
            },
            Workload {
                paper_name: "livejournal",
                proxy: format!("preferential attachment, {} nodes", nodes(20_000.0)),
                spec: GraphSpec::PreferentialAttachment {
                    nodes: nodes(20_000.0),
                    edges_per_node: 8,
                },
                weight_model: None,
                seed: seed + 3,
            },
            Workload {
                paper_name: "twitter",
                proxy: format!("R-MAT({})", rmat_scale(14)),
                spec: GraphSpec::RMat { scale: rmat_scale(14) },
                weight_model: None,
                seed: seed + 4,
            },
            Workload {
                paper_name: "R-MAT(24)",
                proxy: format!("R-MAT({})", rmat_scale(13)),
                spec: GraphSpec::RMat { scale: rmat_scale(13) },
                weight_model: None,
                seed: seed + 5,
            },
        ]
    }

    /// The two "big graph" workloads of Table 3 (about an order of magnitude
    /// larger than their Table 2 counterparts, as in the paper).
    pub fn table3(scale: f64, seed: u64) -> Vec<Workload> {
        let s = scale.max(0.05);
        let side = |base: f64| ((base * s.sqrt()).round() as usize).max(8);
        let rmat_scale = |base: i32| {
            let extra = s.log2().round() as i32;
            (base + extra).clamp(10, 23) as u32
        };
        vec![
            Workload {
                paper_name: "R-MAT(29)",
                proxy: format!("R-MAT({})", rmat_scale(17)),
                spec: GraphSpec::RMat { scale: rmat_scale(17) },
                weight_model: None,
                seed,
            },
            Workload {
                paper_name: "roads(32)",
                proxy: format!("path(8) x road lattice {0}x{0}", side(110.0)),
                spec: GraphSpec::RoadsProduct { s: 8, rows: side(110.0), cols: side(110.0) },
                weight_model: None,
                seed: seed + 1,
            },
        ]
    }

    /// The two workloads of the scalability experiment (Figure 4).
    pub fn figure4(scale: f64, seed: u64) -> Vec<Workload> {
        let s = scale.max(0.05);
        let side = |base: f64| ((base * s.sqrt()).round() as usize).max(8);
        let rmat_scale = |base: i32| {
            let extra = s.log2().round() as i32;
            (base + extra).clamp(8, 22) as u32
        };
        vec![
            Workload {
                paper_name: "R-MAT(26)",
                proxy: format!("R-MAT({})", rmat_scale(15)),
                spec: GraphSpec::RMat { scale: rmat_scale(15) },
                weight_model: None,
                seed,
            },
            Workload {
                paper_name: "roads(3)",
                proxy: format!("path(3) x road lattice {0}x{0}", side(110.0)),
                spec: GraphSpec::RoadsProduct { s: 3, rows: side(110.0), cols: side(110.0) },
                weight_model: None,
                seed: seed + 1,
            },
        ]
    }

    /// The §5 initial-Δ workload: a mesh with the paper's bimodal weights.
    pub fn delta_experiment(scale: f64, seed: u64) -> Workload {
        let s = scale.max(0.05);
        let side = ((192.0 * s.sqrt()).round() as usize).max(16);
        Workload {
            paper_name: "mesh(2048), bimodal weights",
            proxy: format!("{side}x{side} mesh, P(w=1)=0.1, P(w=1e-6)=0.9"),
            spec: GraphSpec::Mesh { side },
            weight_model: Some(WeightModel::paper_bimodal()),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_workloads_with_unique_names() {
        let ws = WorkloadSet::table2(0.1, 1);
        assert_eq!(ws.len(), 6);
        let mut names: Vec<_> = ws.iter().map(|w| w.paper_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn workloads_generate_connected_graphs() {
        for w in WorkloadSet::table2(0.05, 3) {
            let g = w.generate();
            assert!(g.num_nodes() > 32, "{} too small: {}", w.paper_name, g.num_nodes());
            assert!(cldiam_graph::connected_components(&g).is_connected());
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = WorkloadSet::table2(0.05, 1)[2].generate();
        let large = WorkloadSet::table2(0.4, 1)[2].generate();
        assert!(large.num_nodes() > 2 * small.num_nodes());
    }

    #[test]
    fn table3_and_figure4_have_two_workloads_each() {
        assert_eq!(WorkloadSet::table3(0.05, 1).len(), 2);
        assert_eq!(WorkloadSet::figure4(0.05, 1).len(), 2);
        let delta = WorkloadSet::delta_experiment(0.05, 1);
        assert!(delta.proxy.contains("mesh") || delta.proxy.contains('x'));
    }
}
