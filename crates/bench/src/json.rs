//! Minimal JSON document model: pretty printing and parsing.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the benchmark
//! harness carries its own document model for its one serialization need —
//! exporting experiment rows ([`crate::report::to_json`]) and reading them
//! back in tests and tooling. The subset is complete for that purpose:
//! objects, arrays, strings (with escapes), numbers, booleans and null.

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy mode).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; returns [`Value::Null`] when absent.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(members) => {
                members.iter().find_map(|(k, v)| (k == key).then_some(v)).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// Element lookup; returns [`Value::Null`] when out of bounds.
    pub fn at(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.at(index)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builder sugar for objects: `object([("k", v.into()), …])`.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    // JSON has no representation for non-finite numbers; emit null rather
    // than an `inf`/`NaN` token no parser would accept (approximation ratios
    // are INFINITY when the lower bound of a degenerate instance is 0).
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) if members.is_empty() => out.push_str("{}"),
        Value::Object(members) => {
            out.push_str("{\n");
            for (i, (k, v)) in members.iter().enumerate() {
                out.push_str(&inner_pad);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_pretty(self))
    }
}

/// Pretty-prints `value` with two-space indentation (the `serde_json` layout).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

/// Parses a JSON document.
pub fn from_str(input: &str) -> Result<Value, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Value::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over the raw (unescaped) run first so multi-byte UTF-8
            // passes through untouched.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!("loop exits only on quote or backslash"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = object([
            ("name", "Δ-stepping".into()),
            ("rounds", 900u64.into()),
            ("ratio", 1.25.into()),
            ("tags", vec!["a", "b"].into()),
            ("nested", object([("ok", Value::Bool(true)), ("none", Value::Null)])),
        ]);
        let text = to_string_pretty(&doc);
        let parsed = from_str(&text).expect("parses its own output");
        assert_eq!(parsed, doc);
        assert_eq!(parsed["name"], "Δ-stepping");
        assert_eq!(parsed["rounds"], 900i64);
        assert_eq!(parsed["ratio"], 1.25f64);
        assert_eq!(parsed["tags"][1], "b");
        assert_eq!(parsed["nested"]["ok"], Value::Bool(true));
    }

    #[test]
    fn escapes_and_unescapes() {
        let doc = Value::String("line\nquote\" tab\t back\\".to_string());
        let text = to_string_pretty(&doc);
        assert_eq!(from_str(&text).unwrap(), doc);
    }

    #[test]
    fn missing_members_index_as_null() {
        let doc = object([("a", 1u64.into())]);
        assert_eq!(doc["b"], Value::Null);
        assert_eq!(doc["a"][0], Value::Null);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let doc = object([
            ("inf", f64::INFINITY.into()),
            ("neg_inf", f64::NEG_INFINITY.into()),
            ("nan", f64::NAN.into()),
        ]);
        let text = to_string_pretty(&doc);
        let parsed = from_str(&text).expect("null placeholders keep the document valid");
        assert_eq!(parsed["inf"], Value::Null);
        assert_eq!(parsed["neg_inf"], Value::Null);
        assert_eq!(parsed["nan"], Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
