//! Minimal JSON document model: pretty printing and parsing.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the benchmark
//! harness carries its own document model for its one serialization need —
//! exporting experiment rows ([`crate::report::to_json`]) and reading them
//! back in tests and tooling. The subset is complete for that purpose:
//! objects, arrays, strings (with escapes), numbers, booleans and null.

use std::fmt;
use std::ops::Index;

/// A JSON value.
///
/// Numbers are stored integer-aware: non-negative integers as [`Value::Uint`]
/// (the paper's cost counters — messages, node updates — are `u64` and can
/// legitimately exceed 2^53, where an `f64` starts dropping low bits),
/// negative integers as [`Value::Int`], and everything else as
/// [`Value::Number`]. The parser mirrors this, so any `u64` round-trips
/// losslessly through the text form. Equality compares numbers numerically
/// across the three variants.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integral (or out-of-integer-range) JSON number.
    Number(f64),
    /// A non-negative integer, stored exactly.
    Uint(u64),
    /// A negative integer, stored exactly.
    Int(i64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; returns [`Value::Null`] when absent.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(members) => {
                members.iter().find_map(|(k, v)| (k == key).then_some(v)).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// Element lookup; returns [`Value::Null`] when out of bounds.
    pub fn at(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (lossy above 2^53 for the
    /// integer variants — use [`Value::as_u64`] / [`Value::as_i64`] for exact
    /// counters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Uint(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            Value::Uint(n) => i64::try_from(*n).ok(),
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    /// Lossless for the full `u64` range (cost counters above 2^53 included).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && n.abs() < 9.0e15 => {
                Some(*n as u64)
            }
            Value::Uint(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Exact cross-variant numeric equality: `Uint(2)`, `Int(…)` holding 2 (never
/// produced, but tolerated) and `Number(2.0)` all compare equal, while
/// counters above 2^53 only ever equal their exact integer twins.
fn numbers_equal(a: &Value, b: &Value) -> bool {
    // A float equals an integer iff it is integral, inside the range where
    // the comparison cast is exact, and cast-equal. 2^63/2^64 themselves are
    // excluded: they are representable as f64 but their casts saturate.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    const TWO_64: f64 = 18_446_744_073_709_551_616.0;
    let float_eq_uint =
        |n: f64, u: u64| n.fract() == 0.0 && (0.0..TWO_64).contains(&n) && n as u64 == u;
    let float_eq_int =
        |n: f64, i: i64| n.fract() == 0.0 && (-TWO_63..TWO_63).contains(&n) && n as i64 == i;
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y,
        (Value::Uint(x), Value::Uint(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Uint(u), Value::Int(i)) | (Value::Int(i), Value::Uint(u)) => {
            u64::try_from(*i).map(|i| i == *u).unwrap_or(false)
        }
        (Value::Number(n), Value::Uint(u)) | (Value::Uint(u), Value::Number(n)) => {
            float_eq_uint(*n, *u)
        }
        (Value::Number(n), Value::Int(i)) | (Value::Int(i), Value::Number(n)) => {
            float_eq_int(*n, *i)
        }
        _ => false,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (
                a @ (Value::Number(_) | Value::Uint(_) | Value::Int(_)),
                b @ (Value::Number(_) | Value::Uint(_) | Value::Int(_)),
            ) => numbers_equal(a, b),
            _ => false,
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.at(index)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Uint(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Uint(u64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Uint(n as u64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        // Canonical form: non-negative integers are always `Uint`, so values
        // built from different integer types still compare with derived-like
        // semantics and serialize identically.
        match u64::try_from(n) {
            Ok(u) => Value::Uint(u),
            Err(_) => Value::Int(n),
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builder sugar for objects: `object([("k", v.into()), …])`.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    // JSON has no representation for non-finite numbers; emit null rather
    // than an `inf`/`NaN` token no parser would accept (approximation ratios
    // are INFINITY when the lower bound of a degenerate instance is 0).
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value_scalar(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::Uint(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(_) | Value::Object(_) => unreachable!("containers handled by write_pretty"),
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Value::Null
        | Value::Bool(_)
        | Value::Number(_)
        | Value::Uint(_)
        | Value::Int(_)
        | Value::String(_) => write_value_scalar(out, value),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) if members.is_empty() => out.push_str("{}"),
        Value::Object(members) => {
            out.push_str("{\n");
            for (i, (k, v)) in members.iter().enumerate() {
                out.push_str(&inner_pad);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_pretty(self))
    }
}

/// Pretty-prints `value` with two-space indentation (the `serde_json` layout).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

/// Parses a JSON document.
pub fn from_str(input: &str) -> Result<Value, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut integral = true;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                integral &= matches!(b, b'-' | b'0'..=b'9');
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        // Integer tokens are kept exact (a `u64` cost counter above 2^53
        // would lose low bits through an f64); fractional/exponent tokens and
        // integers too large for 64 bits fall back to f64.
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::from(i));
            }
        }
        text.parse::<f64>().map(Value::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over the raw (unescaped) run first so multi-byte UTF-8
            // passes through untouched.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!("loop exits only on quote or backslash"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = object([
            ("name", "Δ-stepping".into()),
            ("rounds", 900u64.into()),
            ("ratio", 1.25.into()),
            ("tags", vec!["a", "b"].into()),
            ("nested", object([("ok", Value::Bool(true)), ("none", Value::Null)])),
        ]);
        let text = to_string_pretty(&doc);
        let parsed = from_str(&text).expect("parses its own output");
        assert_eq!(parsed, doc);
        assert_eq!(parsed["name"], "Δ-stepping");
        assert_eq!(parsed["rounds"], 900i64);
        assert_eq!(parsed["ratio"], 1.25f64);
        assert_eq!(parsed["tags"][1], "b");
        assert_eq!(parsed["nested"]["ok"], Value::Bool(true));
    }

    #[test]
    fn large_counters_round_trip_losslessly() {
        // u64 cost counters above 2^53 must survive text round-trips exactly;
        // the old f64-backed storage returned u64::MAX as 18446744073709551616.
        let counters =
            [u64::MAX, u64::MAX - 1, (1u64 << 53) + 1, 1u64 << 53, 9_007_199_254_740_993];
        for &c in &counters {
            let doc = object([("work", c.into())]);
            let parsed = from_str(&to_string_pretty(&doc)).unwrap();
            assert_eq!(parsed["work"].as_u64(), Some(c), "counter {c}");
            assert_eq!(parsed, doc);
        }
        let text = to_string_pretty(&object([("work", u64::MAX.into())]));
        assert!(text.contains("18446744073709551615"), "{text}");
    }

    #[test]
    fn negative_integers_round_trip_exactly() {
        for &i in &[i64::MIN, i64::MIN + 1, -1i64, -(1i64 << 53) - 1] {
            let doc = object([("v", i.into())]);
            let parsed = from_str(&to_string_pretty(&doc)).unwrap();
            assert_eq!(parsed["v"].as_i64(), Some(i), "value {i}");
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn numeric_equality_spans_variants() {
        assert_eq!(Value::Uint(2), Value::Number(2.0));
        assert_eq!(Value::Number(-3.0), Value::from(-3i64));
        assert_ne!(Value::Uint(u64::MAX), Value::Number(u64::MAX as f64));
        assert_ne!(Value::Uint(2), Value::Number(2.5));
        assert_ne!(Value::Uint(0), Value::Null);
        // 2^63 and 2^64 are exactly representable as f64 but their integer
        // casts saturate; they must not alias the saturated values.
        assert_ne!(Value::Number(9_223_372_036_854_775_808.0f64 * 2.0), Value::Uint(u64::MAX));
        assert_ne!(Value::Number(-9_223_372_036_854_775_808.0f64 * 2.0), Value::Int(i64::MIN));
    }

    #[test]
    fn integer_typed_comparisons() {
        let doc = object([("big", u64::MAX.into()), ("neg", (-7i64).into())]);
        assert_eq!(doc["big"], u64::MAX);
        assert_eq!(doc["neg"], -7i64);
        assert_eq!(doc["big"].as_i64(), None);
        assert_eq!(doc["neg"].as_u64(), None);
    }

    #[test]
    fn escapes_and_unescapes() {
        let doc = Value::String("line\nquote\" tab\t back\\".to_string());
        let text = to_string_pretty(&doc);
        assert_eq!(from_str(&text).unwrap(), doc);
    }

    #[test]
    fn missing_members_index_as_null() {
        let doc = object([("a", 1u64.into())]);
        assert_eq!(doc["b"], Value::Null);
        assert_eq!(doc["a"][0], Value::Null);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let doc = object([
            ("inf", f64::INFINITY.into()),
            ("neg_inf", f64::NEG_INFINITY.into()),
            ("nan", f64::NAN.into()),
        ]);
        let text = to_string_pretty(&doc);
        let parsed = from_str(&text).expect("null placeholders keep the document valid");
        assert_eq!(parsed["inf"], Value::Null);
        assert_eq!(parsed["neg_inf"], Value::Null);
        assert_eq!(parsed["nan"], Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
