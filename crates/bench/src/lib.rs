//! Benchmark harness for the CL-DIAM reproduction.
//!
//! The [`workloads`] module maps every graph of the paper's Table 1 to a
//! laptop-scale synthetic proxy; the [`runner`] module executes `CL-DIAM` and
//! the Δ-stepping baseline with the paper's instrumentation (approximation
//! ratio against an SSSP lower bound, wall-clock time, MapReduce rounds,
//! work); the [`report`] module renders the rows as text tables and JSON.
//!
//! The `reproduce` binary regenerates every table and figure of the paper's
//! evaluation section (see `EXPERIMENTS.md` at the workspace root); the
//! Criterion benches under `benches/` provide statistically sound timings of
//! the individual pipeline stages.

#![forbid(unsafe_code)]

pub mod json;
pub mod report;
pub mod runner;
pub mod threads;
pub mod workloads;

pub use report::{render_figure, render_table, to_json, ResultRow};
pub use runner::{
    reference_lower_bound, reference_lower_bound_with_split, run_bounds, run_bounds_directed,
    run_cldiam, run_cldiam_with, run_delta_stepping_best, run_delta_stepping_with, RunResult,
};
pub use threads::{configured_threads, install_with_threads};
pub use workloads::{Workload, WorkloadSet};
