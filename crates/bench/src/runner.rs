//! Execution of the two competing algorithms with the paper's
//! instrumentation.

use std::time::Instant;

use cldiam_core::approximate_diameter;
use cldiam_core::{
    anytime_diameter_cancel, anytime_diameter_with_split_cancel, AnytimeConfig, ClusterConfig,
};
use cldiam_graph::{CancelToken, Dist, Graph, NeighborSource, NodeId, INFINITY};
use cldiam_mr::CostTracker;
use cldiam_sssp::{
    delta_stepping_with_scratch, diameter_lower_bound, diameter_lower_bound_with_split,
    suggest_delta, BoundsOutcome, ComponentSplit, SsspScratch,
};

use crate::json::{object, Value};

/// One measured run of either algorithm on one graph — the columns of
/// Table 2.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm name (`CL-DIAM` or `Δ-stepping`).
    pub algorithm: String,
    /// Diameter estimate (upper bound) produced by the run.
    pub estimate: Dist,
    /// Lower bound used to normalize the approximation ratio.
    pub lower_bound: Dist,
    /// Approximation ratio (`estimate / lower_bound`).
    pub approximation: f64,
    /// Wall-clock time, in seconds.
    pub time_s: f64,
    /// MapReduce rounds.
    pub rounds: u64,
    /// Work: node updates plus messages.
    pub work: u64,
    /// Extra detail (τ, Δ, cluster counts) for the JSON output.
    pub detail: String,
    /// Whether the run converged (the bounds engine only; `None` elsewhere).
    pub converged: Option<bool>,
    /// Whether a deadline/cancellation stopped the run early (the bounds
    /// engine only; `None` elsewhere).
    pub interrupted: Option<bool>,
    /// Per-iteration trace (the bounds engine only; `None` elsewhere).
    pub iterations: Option<Value>,
}

impl RunResult {
    /// JSON representation used by [`crate::report::to_json`].
    pub fn to_value(&self) -> Value {
        // An infinite upper bound (non-strongly-connected digraphs) has no
        // JSON number; emit null, matching the non-finite-f64 convention.
        let estimate: Value =
            if self.estimate == INFINITY { Value::Null } else { self.estimate.into() };
        let mut value = object([
            ("algorithm", self.algorithm.as_str().into()),
            ("estimate", estimate),
            ("lower_bound", self.lower_bound.into()),
            ("approximation", self.approximation.into()),
            ("time_s", self.time_s.into()),
            ("rounds", self.rounds.into()),
            ("work", self.work.into()),
            ("detail", self.detail.as_str().into()),
        ]);
        if let Value::Object(members) = &mut value {
            if let Some(converged) = self.converged {
                members.push(("converged".to_string(), converged.into()));
            }
            if let Some(interrupted) = self.interrupted {
                members.push(("interrupted".to_string(), interrupted.into()));
            }
            if let Some(iterations) = &self.iterations {
                members.push(("iterations".to_string(), iterations.clone()));
            }
        }
        value
    }
}

/// Computes the diameter lower bound the paper uses to normalize ratios:
/// iterated farthest-node SSSP sweeps.
pub fn reference_lower_bound<G: NeighborSource>(graph: &G, seed: u64) -> Dist {
    diameter_lower_bound(graph, 4, seed)
}

/// [`reference_lower_bound`] over a precomputed [`ComponentSplit`], so one
/// connectivity pass serves both the reference bound and the bounds engine.
pub fn reference_lower_bound_with_split<G: NeighborSource>(
    graph: &G,
    seed: u64,
    split: &ComponentSplit,
) -> Dist {
    diameter_lower_bound_with_split(graph, 4, seed, split)
}

/// Renders a [`BoundsOutcome`] iteration trace as a JSON array.
fn iterations_to_value(outcome: &BoundsOutcome) -> Value {
    Value::Array(
        outcome
            .iterations
            .iter()
            .map(|it| {
                let source: Value = match it.source {
                    Some(s) => s.into(),
                    None => Value::Null,
                };
                let upper: Value = if it.upper == INFINITY { Value::Null } else { it.upper.into() };
                object([
                    ("source", source),
                    ("sssp_runs", it.sssp_runs.into()),
                    ("lower", it.lower.into()),
                    ("upper", upper),
                    ("open", it.open.into()),
                ])
            })
            .collect(),
    )
}

/// Runs the anytime bounds engine (`--algo bounds`) on an undirected graph,
/// reusing the caller's [`ComponentSplit`]. Works on any [`NeighborSource`]
/// (dense or compressed CSR).
pub fn run_bounds<G: NeighborSource>(
    graph: &G,
    config: &AnytimeConfig,
    split: &ComponentSplit,
) -> RunResult {
    run_bounds_cancel(graph, config, split, &CancelToken::never())
}

/// [`run_bounds`] under a cooperative [`CancelToken`] (`--timeout-ms` /
/// `--timeout-checks`): an expired deadline stops the engine at the next
/// SSSP boundary and the result reports the best-so-far `[lb, ub]` bracket
/// with `interrupted=true`.
pub fn run_bounds_cancel<G: NeighborSource>(
    graph: &G,
    config: &AnytimeConfig,
    split: &ComponentSplit,
    cancel: &CancelToken,
) -> RunResult {
    let started = Instant::now();
    let outcome = anytime_diameter_with_split_cancel(graph, config, split, cancel);
    bounds_result(config, outcome, started.elapsed().as_secs_f64())
}

/// Runs the anytime bounds engine on a directed graph, which goes whole
/// through the forward/backward engine (dense only: it needs in-arcs).
pub fn run_bounds_directed(graph: &Graph, config: &AnytimeConfig) -> RunResult {
    run_bounds_directed_cancel(graph, config, &CancelToken::never())
}

/// [`run_bounds_directed`] under a cooperative [`CancelToken`].
pub fn run_bounds_directed_cancel(
    graph: &Graph,
    config: &AnytimeConfig,
    cancel: &CancelToken,
) -> RunResult {
    let started = Instant::now();
    let outcome = anytime_diameter_cancel(graph, config, cancel);
    bounds_result(config, outcome, started.elapsed().as_secs_f64())
}

fn bounds_result(config: &AnytimeConfig, outcome: BoundsOutcome, time_s: f64) -> RunResult {
    let approximation = if outcome.upper == INFINITY {
        f64::INFINITY
    } else if outcome.lower == 0 {
        if outcome.upper == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        outcome.upper as f64 / outcome.lower as f64
    };
    RunResult {
        algorithm: "bounds".to_string(),
        estimate: outcome.upper,
        lower_bound: outcome.lower,
        approximation,
        time_s,
        rounds: outcome.sssp_runs as u64,
        work: 0,
        detail: format!(
            "budget={} tolerance={} oracle={} converged={} interrupted={} sssp={}",
            config.bounds.max_sssp,
            config.bounds.tolerance,
            if config.cluster.is_some() { "quotient" } else { "off" },
            outcome.converged,
            outcome.interrupted,
            outcome.sssp_runs
        ),
        converged: Some(outcome.converged),
        interrupted: Some(outcome.interrupted),
        iterations: Some(iterations_to_value(&outcome)),
    }
}

/// Runs `CL-DIAM` under an explicit [`ClusterConfig`] — the entry point of
/// the `cldiam` CLI, where `τ` and the `CLUSTER2` switch come from flags.
pub fn run_cldiam_with<G: NeighborSource>(
    graph: &G,
    lower_bound: Dist,
    config: &ClusterConfig,
) -> RunResult {
    let started = Instant::now();
    let estimate = approximate_diameter(graph, config);
    let time_s = started.elapsed().as_secs_f64();
    RunResult {
        algorithm: "CL-DIAM".to_string(),
        estimate: estimate.upper_bound,
        lower_bound,
        approximation: estimate.ratio_against(lower_bound),
        time_s,
        rounds: estimate.metrics.rounds,
        work: estimate.metrics.work(),
        detail: format!(
            "tau={} decomposition={} clusters={} radius={} growing_steps={}",
            config.tau,
            if config.use_cluster2 { "CLUSTER2" } else { "CLUSTER" },
            estimate.num_clusters,
            estimate.radius,
            estimate.growing_steps
        ),
        converged: None,
        interrupted: None,
        iterations: None,
    }
}

/// Runs `CL-DIAM` with the paper's practical configuration: decomposition via
/// `CLUSTER`, initial `Δ` = average edge weight, `τ` chosen so the quotient
/// graph stays below `target_quotient` nodes.
pub fn run_cldiam<G: NeighborSource>(
    graph: &G,
    lower_bound: Dist,
    target_quotient: usize,
    seed: u64,
) -> RunResult {
    let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), target_quotient);
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    run_cldiam_with(graph, lower_bound, &config)
}

/// Runs the Δ-stepping baseline from `source` with an explicit bucket width
/// and converts the eccentricity into the 2-approximation of the diameter.
pub fn run_delta_stepping_with<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: u32,
    lower_bound: Dist,
) -> RunResult {
    let mut scratch = SsspScratch::with_capacity(graph.num_nodes());
    run_delta_stepping_scratch(graph, source, delta, lower_bound, &mut scratch)
}

/// [`run_delta_stepping_with`] over a caller-provided [`SsspScratch`], so
/// grid sweeps reuse the engine state (distances, bucket ring, touched list)
/// across every Δ candidate instead of re-allocating per run.
pub fn run_delta_stepping_scratch<G: NeighborSource>(
    graph: &G,
    source: NodeId,
    delta: u32,
    lower_bound: Dist,
    scratch: &mut SsspScratch,
) -> RunResult {
    let tracker = CostTracker::new();
    let started = Instant::now();
    let outcome = delta_stepping_with_scratch(graph, source, delta, Some(&tracker), scratch);
    let time_s = started.elapsed().as_secs_f64();
    let estimate = outcome.eccentricity().saturating_mul(2);
    RunResult {
        algorithm: "Δ-stepping".to_string(),
        estimate,
        lower_bound,
        approximation: if lower_bound == 0 { 1.0 } else { estimate as f64 / lower_bound as f64 },
        time_s,
        rounds: outcome.phases,
        work: outcome.work(),
        detail: format!("delta={delta} source={source}"),
        converged: None,
        interrupted: None,
        iterations: None,
    }
}

/// Runs the Δ-stepping baseline over a grid of `Δ` values and keeps the
/// best-performing configuration (fewest rounds, the criterion the paper used
/// to pick `Δ` on its Spark platform).
/// Source node used by the Δ-stepping baseline: a pseudo-random node derived
/// from the seed (the paper starts Δ-stepping from a random node; hashing
/// avoids always landing on node 0, which on lattice-like graphs is a corner
/// with worst-case eccentricity).
pub fn baseline_source<G: NeighborSource>(graph: &G, seed: u64) -> NodeId {
    ((seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % graph.num_nodes().max(1) as u64) as NodeId
}

pub fn run_delta_stepping_best<G: NeighborSource>(
    graph: &G,
    lower_bound: Dist,
    seed: u64,
) -> RunResult {
    let base = suggest_delta(graph);
    let source = baseline_source(graph, seed);
    let candidates =
        [base, base.saturating_mul(4), base.saturating_mul(16), base.saturating_mul(64)];
    // One engine scratch serves the whole grid: each candidate run resets in
    // O(reached) and reuses the distance cells and bucket ring.
    let mut scratch = SsspScratch::with_capacity(graph.num_nodes());
    let mut best: Option<RunResult> = None;
    for &delta in &candidates {
        let result =
            run_delta_stepping_scratch(graph, source, delta.max(1), lower_bound, &mut scratch);
        let better = match &best {
            None => true,
            Some(b) => result.rounds < b.rounds,
        };
        if better {
            best = Some(result);
        }
    }
    best.expect("at least one delta candidate was evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cldiam_gen::{mesh, WeightModel};

    #[test]
    fn cldiam_run_produces_conservative_estimate() {
        let g = mesh(20, WeightModel::UniformUnit, 3);
        let lower = reference_lower_bound(&g, 3);
        let result = run_cldiam(&g, lower, 500, 3);
        assert!(result.estimate >= lower);
        assert!(result.approximation >= 1.0);
        assert!(result.rounds > 0);
        assert!(result.work > 0);
        assert!(result.time_s >= 0.0);
    }

    #[test]
    fn delta_stepping_run_produces_conservative_estimate() {
        let g = mesh(20, WeightModel::UniformUnit, 3);
        let lower = reference_lower_bound(&g, 3);
        let result = run_delta_stepping_best(&g, lower, 3);
        assert!(result.estimate >= lower);
        assert!(result.approximation >= 1.0);
        assert!(
            result.approximation <= 2.1,
            "2-approximation bound violated: {}",
            result.approximation
        );
        assert!(result.rounds > 0);
    }

    #[test]
    fn delta_sweep_picks_fewest_rounds() {
        let g = mesh(16, WeightModel::UniformUnit, 5);
        let lower = reference_lower_bound(&g, 5);
        let best = run_delta_stepping_best(&g, lower, 5);
        let base = suggest_delta(&g);
        let fine = run_delta_stepping_with(&g, baseline_source(&g, 5), base, lower);
        assert!(best.rounds <= fine.rounds);
    }

    #[test]
    fn cldiam_uses_fewer_rounds_than_delta_stepping_on_meshes() {
        // The headline result of the paper (Figure 2): the cluster-based
        // algorithm needs far fewer rounds than Δ-stepping on high-diameter
        // graphs.
        let g = mesh(32, WeightModel::UniformUnit, 9);
        let lower = reference_lower_bound(&g, 9);
        let cl = run_cldiam(&g, lower, 500, 9);
        let ds = run_delta_stepping_best(&g, lower, 9);
        assert!(
            cl.rounds < ds.rounds,
            "CL-DIAM rounds {} not below Δ-stepping rounds {}",
            cl.rounds,
            ds.rounds
        );
    }
}
