//! Thread-count plumbing for the benchmark harness.
//!
//! The vendored rayon sizes its global pool from `CLDIAM_THREADS` (then
//! `RAYON_NUM_THREADS`, then the hardware). The helpers here make that knob —
//! and the `--threads` flag of the `reproduce` binary — explicit in the
//! harness, so scalability experiments can measure real 1→N-thread speedups
//! by installing dedicated pools instead of relying on process-wide state.

/// The thread count requested via the `CLDIAM_THREADS` environment variable,
/// if any. Values that are unset, unparsable, or zero mean "use the default".
pub fn configured_threads() -> Option<usize> {
    let raw = std::env::var("CLDIAM_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Runs `op` on a dedicated pool of `threads` workers when a count is given,
/// or directly on the caller's current pool (the global one by default)
/// otherwise.
pub fn install_with_threads<R: Send>(threads: Option<usize>, op: impl FnOnce() -> R + Send) -> R {
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .thread_name(|i| format!("cldiam-bench-{i}"))
            .build()
            .expect("failed to build benchmark thread pool")
            .install(op),
        None => op(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_with_explicit_count_controls_the_pool() {
        let seen = install_with_threads(Some(3), rayon::current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn install_without_count_keeps_the_current_pool() {
        let outer = rayon::current_num_threads();
        let seen = install_with_threads(None, rayon::current_num_threads);
        assert_eq!(seen, outer);
    }
}
