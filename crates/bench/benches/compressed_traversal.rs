//! `compressed_traversal`: the delta-varint compressed CSR versus the dense
//! CSR it mirrors, on the traversal kernels that dominate the pipeline.
//!
//! Pairs on the repo's standard mesh and R-MAT specs:
//!
//! * `delta_dense` vs `delta_compressed` — one Δ-stepping run per iteration
//!   through the shared `NeighborSource` path; the compressed run pays the
//!   per-block varint decode in the relax loop, which this bench pins
//!   (acceptance: within 1.5x of dense on rmat10).
//! * `decode_dense` vs `decode_compressed` — a pure neighbor sweep (sum of
//!   targets and weights over every arc), isolating iterator overhead from
//!   algorithmic noise.
//!
//! Results go into `BENCH_storage.json` at the repo root together with the
//! bytes/edge and cold-load numbers from the `storage_bench` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_gen::{mesh, rmat, RmatParams, WeightModel};
use cldiam_graph::{CompressedGraph, Graph, NeighborSource, NodeId};
use cldiam_sssp::{delta_stepping_with_scratch, suggest_delta, SsspScratch};

fn neighbor_sweep<G: NeighborSource>(graph: &G) -> u64 {
    let mut acc = 0u64;
    for u in graph.node_ids() {
        for (v, w) in graph.neighbors(u) {
            acc = acc.wrapping_add(u64::from(v)).wrapping_add(u64::from(w));
        }
    }
    acc
}

fn bench_compressed(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressed_traversal");
    group.sample_size(30).measurement_time(Duration::from_secs(5));

    let workloads: Vec<(String, Graph)> = vec![
        ("mesh64".to_string(), mesh(64, WeightModel::UniformUnit, 7)),
        ("rmat10".to_string(), rmat(RmatParams::paper(10), WeightModel::UniformUnit, 7)),
    ];

    for (name, dense) in &workloads {
        let compressed = CompressedGraph::from_graph(dense, 1);
        let delta = suggest_delta(dense);
        let source = (dense.num_nodes() / 2) as NodeId;

        group.bench_with_input(BenchmarkId::new("delta_dense", name), dense, |b, g| {
            let mut scratch = SsspScratch::with_capacity(g.num_nodes());
            b.iter(|| delta_stepping_with_scratch(g, source, delta, None, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("delta_compressed", name), &compressed, |b, g| {
            let mut scratch = SsspScratch::with_capacity(g.num_nodes());
            b.iter(|| delta_stepping_with_scratch(g, source, delta, None, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("decode_dense", name), dense, |b, g| {
            b.iter(|| neighbor_sweep(g))
        });
        group.bench_with_input(BenchmarkId::new("decode_compressed", name), &compressed, |b, g| {
            b.iter(|| neighbor_sweep(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compressed);
criterion_main!(benches);
