//! Micro-benchmark of the Δ-growing step (the inner kernel whose count is the
//! paper's round complexity), comparing the shared-memory fast path with the
//! literal MapReduce execution.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_core::{mr_impl::mr_partial_growth, partial_growth, GrowScratch, GrowState};
use cldiam_gen::{mesh, WeightModel};
use cldiam_graph::NodeId;
use cldiam_mr::{MrConfig, MrEngine};

fn seeded_state(n: usize, centers: &[NodeId]) -> GrowState {
    let mut state = GrowState::new(n);
    for &c in centers {
        state.set_center(c);
    }
    state
}

fn bench_growing(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_growing_step");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for side in [32usize, 64, 96] {
        let graph = mesh(side, WeightModel::UniformUnit, 7);
        let centers: Vec<NodeId> = (0..8).map(|i| (i * graph.num_nodes() / 8) as NodeId).collect();
        let threshold = 4 * u64::from(cldiam_graph::WEIGHT_SCALE);

        group.bench_with_input(BenchmarkId::new("shared_memory", side), &graph, |b, g| {
            let mut scratch = GrowScratch::with_capacity(g.num_nodes());
            b.iter(|| {
                let mut state = seeded_state(g.num_nodes(), &centers);
                partial_growth(g, threshold, threshold, &mut state, None, None, None, &mut scratch)
            })
        });
        if side <= 64 {
            group.bench_with_input(BenchmarkId::new("mapreduce_engine", side), &graph, |b, g| {
                b.iter(|| {
                    let engine = MrEngine::new(MrConfig::with_machines(8));
                    let mut state = seeded_state(g.num_nodes(), &centers);
                    mr_partial_growth(&engine, g, threshold, threshold, &mut state)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_growing);
criterion_main!(benches);
