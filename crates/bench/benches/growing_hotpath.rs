//! `growing_hotpath`: the allocation-free in-place Δ-growing hot path versus
//! the materializing two-phase reference it replaced.
//!
//! Both variants run a full `PartialGrowth` to fixpoint from the same seeded
//! centers on the repo's standard mesh and R-MAT specs. `in_place` is the
//! production path (`partial_growth` over a reused `GrowScratch`: CAS
//! relaxation into atomic cells, no proposal materialization); `materialized`
//! drives `delta_growing_step_materialized`, which builds the per-wave
//! proposal vector exactly like the pre-refactor code. Results go into
//! `BENCH_growing.json` at the repo root, alongside the host CPU count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_core::{
    delta_growing_step_materialized, partial_growth, GrowScratch, GrowState, NO_CENTER,
};
use cldiam_gen::{mesh, rmat, RmatParams, WeightModel};
use cldiam_graph::{Dist, Graph, NodeId, WEIGHT_SCALE};

fn seeded_state(n: usize, centers: &[NodeId]) -> GrowState {
    let mut state = GrowState::new(n);
    for &c in centers {
        state.set_center(c);
    }
    state
}

fn spread_centers(n: usize, k: usize) -> Vec<NodeId> {
    (0..k).map(|i| (i * n / k) as NodeId).collect()
}

/// Reference driver: the two-phase step looped to fixpoint, mirroring
/// `partial_growth` without the in-place machinery.
fn materialized_growth(graph: &Graph, threshold: Dist, light_limit: Dist, state: &mut GrowState) {
    let mut frontier: Vec<NodeId> = (0..state.len() as NodeId)
        .filter(|&u| {
            cldiam_core::eff_below_threshold(state.eff[u as usize], threshold)
                && state.center[u as usize] != NO_CENTER
        })
        .collect();
    while !frontier.is_empty() {
        let (updated, _) =
            delta_growing_step_materialized(graph, threshold, light_limit, state, &frontier);
        frontier = updated;
    }
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("growing_hotpath");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let workloads: Vec<(String, Graph)> = vec![
        ("mesh64".to_string(), mesh(64, WeightModel::UniformUnit, 7)),
        ("rmat10".to_string(), rmat(RmatParams::paper(10), WeightModel::UniformUnit, 7)),
    ];

    for (name, graph) in &workloads {
        let centers = spread_centers(graph.num_nodes(), 8);
        let threshold = 4 * Dist::from(WEIGHT_SCALE);

        group.bench_with_input(BenchmarkId::new("in_place", name), graph, |b, g| {
            let mut scratch = GrowScratch::with_capacity(g.num_nodes());
            b.iter(|| {
                let mut state = seeded_state(g.num_nodes(), &centers);
                partial_growth(g, threshold, threshold, &mut state, None, None, None, &mut scratch)
            })
        });
        group.bench_with_input(BenchmarkId::new("materialized", name), graph, |b, g| {
            b.iter(|| {
                let mut state = seeded_state(g.num_nodes(), &centers);
                materialized_growth(g, threshold, threshold, &mut state);
                state
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
