//! Benchmarks of the synthetic graph generators behind Table 1: the cost of
//! materializing each benchmark family at a fixed size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_gen::{mesh, preferential_attachment, rmat, road_network, RmatParams, WeightModel};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("mesh", 96), |b| {
        b.iter(|| mesh(96, WeightModel::UniformUnit, 1))
    });
    group.bench_function(BenchmarkId::new("road_network", 96), |b| {
        b.iter(|| road_network(96, 96, 1))
    });
    group.bench_function(BenchmarkId::new("rmat", 13), |b| {
        b.iter(|| rmat(RmatParams::paper(13), WeightModel::UniformUnit, 1))
    });
    group.bench_function(BenchmarkId::new("preferential_attachment", 10_000), |b| {
        b.iter(|| preferential_attachment(10_000, 8, WeightModel::UniformUnit, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
