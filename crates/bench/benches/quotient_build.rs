//! Benchmarks of the quotient-graph construction and of the final quotient
//! diameter computation — the "one round in local memory" stage of the paper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_core::{cluster, quotient_graph, ClusterConfig};
use cldiam_gen::{mesh, WeightModel};
use cldiam_sssp::exact_diameter;

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for side in [48usize, 96] {
        let graph = mesh(side, WeightModel::UniformUnit, 11);
        let config = ClusterConfig::default().with_tau(4).with_seed(11);
        let clustering = cluster(&graph, &config);
        group.bench_with_input(BenchmarkId::new("build", side), &graph, |b, g| {
            b.iter(|| quotient_graph(g, &clustering))
        });
        let quotient = quotient_graph(&graph, &clustering);
        group.bench_with_input(
            BenchmarkId::new("exact_diameter", side),
            &quotient.graph,
            |b, q| b.iter(|| exact_diameter(q)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quotient);
criterion_main!(benches);
