//! `sssp_engine`: the bucket-array Δ-stepping engine and the batched
//! multi-source drivers versus the subsystems they replaced.
//!
//! Two before/after pairs on the repo's standard mesh and R-MAT specs:
//!
//! * `delta_reference` vs `delta_bucket` — one Δ-stepping run per iteration;
//!   the reference allocates its `BTreeMap` buckets and distance vector per
//!   run, the engine reuses one `SsspScratch` (atomic distance cells, cyclic
//!   bucket ring, `O(reached)` resets).
//! * `ecc_per_source` vs `ecc_batched` — eccentricities of 64 spread
//!   sources; the per-source loop mirrors the pre-refactor `exact_diameter`
//!   (parallel over sources, one full Dijkstra — dist/hops/parent vectors
//!   plus a heap — allocated per source), the batched driver shares a
//!   `ScratchPool` of distance-only scratches across the workers.
//!
//! Results go into `BENCH_sssp.json` at the repo root, alongside the host
//! CPU count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;

use cldiam_gen::{mesh, rmat, RmatParams, WeightModel};
use cldiam_graph::{Dist, Graph, NodeId};
use cldiam_sssp::{
    batched_eccentricities, delta_stepping_reference, delta_stepping_with_scratch, dijkstra,
    suggest_delta, SsspScratch,
};

fn spread_sources(n: usize, k: usize) -> Vec<NodeId> {
    (0..k).map(|i| (i * n / k) as NodeId).collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp_engine");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let workloads: Vec<(String, Graph)> = vec![
        ("mesh64".to_string(), mesh(64, WeightModel::UniformUnit, 7)),
        ("rmat10".to_string(), rmat(RmatParams::paper(10), WeightModel::UniformUnit, 7)),
    ];

    for (name, graph) in &workloads {
        let delta = suggest_delta(graph);
        let source = (graph.num_nodes() / 2) as NodeId;
        let sources = spread_sources(graph.num_nodes(), 64);

        group.bench_with_input(BenchmarkId::new("delta_reference", name), graph, |b, g| {
            b.iter(|| delta_stepping_reference(g, source, delta, None))
        });
        group.bench_with_input(BenchmarkId::new("delta_bucket", name), graph, |b, g| {
            let mut scratch = SsspScratch::with_capacity(g.num_nodes());
            b.iter(|| delta_stepping_with_scratch(g, source, delta, None, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("ecc_per_source", name), graph, |b, g| {
            b.iter(|| {
                sources.par_iter().map(|&s| dijkstra(g, s).eccentricity()).collect::<Vec<Dist>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("ecc_batched", name), graph, |b, g| {
            b.iter(|| batched_eccentricities(g, &sources))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
