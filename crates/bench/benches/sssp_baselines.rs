//! Shortest-path substrate benchmarks: Dijkstra vs Bellman-Ford vs
//! Δ-stepping (for several bucket widths) on a road-like and a social-like
//! graph. The Δ tradeoff (small Δ → more phases, large Δ → more work) is the
//! mechanism the paper's baseline tunes per graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_gen::{preferential_attachment, road_network, WeightModel};
use cldiam_graph::largest_component;
use cldiam_sssp::{bellman_ford, delta_stepping, dijkstra, suggest_delta};

fn bench_sssp(c: &mut Criterion) {
    let (roads, _) = largest_component(&road_network(70, 70, 3));
    let social = preferential_attachment(6_000, 6, WeightModel::UniformUnit, 3);
    let graphs = [("roads", roads), ("social", social)];

    let mut group = c.benchmark_group("sssp_baselines");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for (name, graph) in &graphs {
        group.bench_with_input(BenchmarkId::new("dijkstra", name), graph, |b, g| {
            b.iter(|| dijkstra(g, 0))
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", name), graph, |b, g| {
            b.iter(|| bellman_ford(g, 0))
        });
        let base = suggest_delta(graph);
        for (label, delta) in [("delta_x1", base), ("delta_x16", base.saturating_mul(16))] {
            group.bench_with_input(BenchmarkId::new(label, name), graph, |b, g| {
                b.iter(|| delta_stepping(g, 0, delta.max(1), None))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
