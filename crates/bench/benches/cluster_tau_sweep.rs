//! Ablation bench: how the parameter `τ` (and the §4.1 growing-step cap)
//! shifts the cost of `CLUSTER`. Larger `τ` means more clusters, a smaller
//! radius and fewer growing steps, at the price of a larger quotient graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_core::{cluster, cluster2, ClusterConfig};
use cldiam_gen::{mesh, WeightModel};

fn bench_tau_sweep(c: &mut Criterion) {
    let graph = mesh(72, WeightModel::UniformUnit, 5);
    let mut group = c.benchmark_group("cluster_tau_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for tau in [1usize, 4, 16, 64] {
        let config = ClusterConfig::default().with_tau(tau).with_seed(5);
        group.bench_with_input(BenchmarkId::new("cluster", tau), &config, |b, cfg| {
            b.iter(|| cluster(&graph, cfg))
        });
    }

    // §4.1 step cap ablation at a fixed τ.
    for cap in [4usize, 16, 64] {
        let config = ClusterConfig::default().with_tau(4).with_seed(5).with_step_cap(cap);
        group.bench_with_input(BenchmarkId::new("cluster_capped", cap), &config, |b, cfg| {
            b.iter(|| cluster(&graph, cfg))
        });
    }

    // CLUSTER vs CLUSTER2 at the same τ.
    let config = ClusterConfig::default().with_tau(4).with_seed(5);
    group.bench_function("cluster2", |b| b.iter(|| cluster2(&graph, &config)));

    group.finish();
}

criterion_group!(benches, bench_tau_sweep);
criterion_main!(benches);
