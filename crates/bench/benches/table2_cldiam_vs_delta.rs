//! Criterion companion of Table 2 / Figures 1–3: time CL-DIAM and the
//! Δ-stepping baseline on a miniature instance of every benchmark family.
//!
//! The `reproduce table2` binary prints the full table (including rounds,
//! work and approximation ratio); this bench provides statistically sound
//! wall-clock comparisons of the same runs at a size Criterion can iterate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_bench::runner::{reference_lower_bound, run_cldiam, run_delta_stepping_best};
use cldiam_bench::workloads::WorkloadSet;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    for workload in WorkloadSet::table2(0.08, 1) {
        let graph = workload.generate();
        let lower = reference_lower_bound(&graph, 1);
        group.bench_with_input(BenchmarkId::new("cl_diam", workload.paper_name), &graph, |b, g| {
            b.iter(|| run_cldiam(g, lower, 500, 1))
        });
        group.bench_with_input(
            BenchmarkId::new("delta_stepping", workload.paper_name),
            &graph,
            |b, g| b.iter(|| run_delta_stepping_best(g, lower, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
