//! Criterion companion of Figure 4: CL-DIAM wall-clock time as a function of
//! the number of machines — real worker threads since the vendored rayon
//! became a genuine executor — on the two scalability workloads. The
//! 1-thread row is the sequential baseline; speedups at higher counts are
//! bounded by the physical cores of the host. `CLDIAM_THREADS` does not
//! apply here: each row builds its own dedicated pool, which is the
//! experiment.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cldiam_bench::workloads::WorkloadSet;
use cldiam_core::{approximate_diameter, ClusterConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scalability");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    for workload in WorkloadSet::figure4(0.08, 2) {
        let graph = workload.generate();
        let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), 500);
        let config = ClusterConfig::default().with_tau(tau).with_seed(2);
        for machines in [1usize, 2, 4, 8] {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(machines).build().expect("thread pool");
            group.bench_with_input(
                BenchmarkId::new(workload.paper_name, machines),
                &machines,
                |b, _| b.iter(|| pool.install(|| approximate_diameter(&graph, &config))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
