//! The exploration runtime: a cooperative scheduler that serializes model
//! threads, a DFS/random schedule explorer, and the happens-before engine.
//!
//! # How an exploration runs
//!
//! [`explore`] runs the model closure once per *schedule*. Within one run,
//! model threads are real OS threads, but they execute one at a time: every
//! instrumented operation (shim atomic access, fence, [`crate::cell`]
//! access, spin hint, spawn, join) is a *schedule point* where the thread
//! blocks until the scheduler grants it the turn, performs the operation
//! while serialized, and then picks which thread runs next. Because only
//! one thread runs between schedule points and all shared accesses go
//! through schedule points, each schedule is fully deterministic — which is
//! what lets the explorer *replay* a schedule prefix and branch off it.
//!
//! # Exploration strategies
//!
//! * **Exhaustive DFS** ([`Mode::Exhaustive`]): at every schedule point
//!   where more than one thread could run, a choice point is pushed;
//!   after the run finishes, the deepest choice point with an untried
//!   option is advanced and everything before it is replayed. With
//!   [`Config::preemption_bound`] set, switching away from a runnable
//!   thread costs one unit of a CHESS-style preemption budget, which
//!   keeps the space polynomial while still covering the schedules that
//!   expose almost all real bugs.
//! * **Seeded random** ([`Mode::Random`]): each iteration draws scheduler
//!   choices from a SplitMix64 stream; used to supplement DFS for 4+
//!   threads.
//!
//! # What counts as a bug
//!
//! * an assertion (panic) in any model thread,
//! * a data race on a [`crate::cell::TrackedCell`] (vector-clock detector;
//!   happens-before edges come only from the orderings the code actually
//!   uses, so relaxed publishes and dropped fences are caught),
//! * a deadlock (every live thread blocked on a join),
//! * a livelock (the per-run step cap is exceeded — e.g. a reader spinning
//!   on a seqlock whose writer never released).
//!
//! The failing schedule is reported as the sequence of thread ids chosen at
//! each step.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::clock::VectorClock;

/// One instrumented operation, as seen by the scheduler and the
/// happens-before engine.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// Atomic load with the given ordering.
    AtomicLoad { addr: usize, order: Ordering },
    /// Atomic store with the given ordering.
    AtomicStore { addr: usize, order: Ordering },
    /// Atomic read-modify-write (swap, fetch_*, compare_exchange) with the
    /// given (success) ordering.
    AtomicRmw { addr: usize, order: Ordering },
    /// `std::sync::atomic::fence`.
    Fence { order: Ordering },
    /// Non-atomic read of a [`crate::cell::TrackedCell`].
    PlainRead { addr: usize, label: &'static str },
    /// Non-atomic write of a [`crate::cell::TrackedCell`].
    PlainWrite { addr: usize, label: &'static str },
    /// `spin_loop` hint: forfeits the next scheduling step so another
    /// runnable thread (if any) makes progress.
    Yield,
}

/// How [`explore`] walks the schedule space.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Depth-first enumeration of all schedules (subject to
    /// [`Config::preemption_bound`] and [`Config::max_schedules`]).
    Exhaustive,
    /// `iterations` runs with scheduler choices drawn from a seeded
    /// SplitMix64 stream (a fresh stream per iteration).
    Random {
        /// Number of random schedules to run.
        iterations: usize,
        /// Base seed; iteration `i` uses a deterministic derivation of it.
        seed: u64,
    },
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// In exhaustive mode, the CHESS-style context-switch budget: switching
    /// away from a thread that could have continued costs one unit. `None`
    /// explores every interleaving.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; hitting it ends the exploration with
    /// [`Report::complete`] = `false`.
    pub max_schedules: usize,
    /// Per-run step cap; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// Maximum live model threads per run.
    pub max_threads: usize,
    /// Exploration strategy.
    pub mode: Mode,
}

impl Default for Config {
    fn default() -> Self {
        Config::bounded(2)
    }
}

impl Config {
    /// Full exhaustive exploration (no preemption bound). Only tractable
    /// for 2–3 threads with a handful of operations each.
    pub fn exhaustive() -> Self {
        Config {
            preemption_bound: None,
            max_schedules: 250_000,
            max_steps: 10_000,
            max_threads: 16,
            mode: Mode::Exhaustive,
        }
    }

    /// Exhaustive exploration with a preemption budget — the default and
    /// the practical choice for the real primitives (a bound of 2 covers
    /// the schedules that expose almost all known classes of concurrency
    /// bugs while keeping the space polynomial).
    pub fn bounded(preemptions: usize) -> Self {
        Config { preemption_bound: Some(preemptions), ..Config::exhaustive() }
    }

    /// Seeded random exploration for thread counts where DFS is hopeless.
    pub fn random(iterations: usize, seed: u64) -> Self {
        Config { mode: Mode::Random { iterations, seed }, ..Config::exhaustive() }
    }
}

/// A bug found by the explorer.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (assertion message, race description, deadlock…).
    pub message: String,
    /// The failing schedule: the thread id chosen at each scheduler step.
    pub schedule: Vec<usize>,
}

/// The outcome of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules that ran.
    pub schedules: usize,
    /// The first bug found, if any (exploration stops at the first bug).
    pub failure: Option<Failure>,
    /// `true` iff the schedule space was exhausted (exhaustive mode only).
    pub complete: bool,
}

#[derive(Clone, Debug)]
struct Choice {
    options: Vec<usize>,
    picked: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Forfeited the next step via a spin hint.
    Yielded,
    /// Waiting for the given thread to finish.
    Blocked(usize),
    Finished,
}

/// Per-location happens-before metadata.
#[derive(Clone, Debug, Default)]
struct Loc {
    /// Clock published by release stores (and accumulated by RMWs) to this
    /// location; acquire loads join it.
    release: VectorClock,
    /// Last plain write: `(thread, event number)`.
    write: Option<(usize, u32)>,
    /// Plain reads since the last plain write: `(thread, event number)`.
    reads: Vec<(usize, u32)>,
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

struct St {
    preemption_bound: Option<usize>,
    max_steps: usize,
    max_threads: usize,
    random: Option<SplitMix64>,
    current: usize,
    threads: Vec<TState>,
    clocks: Vec<VectorClock>,
    pending_acquire: Vec<VectorClock>,
    release_fence: Vec<VectorClock>,
    final_clocks: Vec<Option<VectorClock>>,
    joiners: Vec<Vec<usize>>,
    locs: HashMap<usize, Loc>,
    schedule: Vec<Choice>,
    sched_pos: usize,
    step: usize,
    preemptions: usize,
    live: usize,
    trace: Vec<usize>,
    failure: Option<String>,
}

impl St {
    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
    }

    /// Applies the happens-before effect of `op` (and checks plain accesses
    /// for races) *before* the operation executes.
    fn apply_sync(&mut self, tid: usize, op: &Op) {
        let is_acq =
            |o: Ordering| matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let is_rel =
            |o: Ordering| matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        match *op {
            Op::AtomicLoad { addr, order } => {
                let loc = self.locs.remove(&addr).unwrap_or_default();
                if is_acq(order) {
                    self.clocks[tid].join(&loc.release);
                } else {
                    // A relaxed load only synchronizes once a later acquire
                    // fence promotes it.
                    self.pending_acquire[tid].join(&loc.release);
                }
                self.locs.insert(addr, loc);
            }
            Op::AtomicStore { addr, order } => {
                let mut loc = self.locs.remove(&addr).unwrap_or_default();
                loc.release = if is_rel(order) {
                    self.clocks[tid].clone()
                } else {
                    // A relaxed store publishes only what a preceding
                    // release fence made publishable — and breaks any
                    // release sequence headed by an earlier store.
                    self.release_fence[tid].clone()
                };
                self.locs.insert(addr, loc);
            }
            Op::AtomicRmw { addr, order } => {
                let mut loc = self.locs.remove(&addr).unwrap_or_default();
                if is_acq(order) {
                    self.clocks[tid].join(&loc.release);
                } else {
                    self.pending_acquire[tid].join(&loc.release);
                }
                // An RMW continues the release sequence of the store it
                // replaces: the existing release clock is kept and extended.
                if is_rel(order) {
                    let vc = self.clocks[tid].clone();
                    loc.release.join(&vc);
                } else {
                    let fence_vc = self.release_fence[tid].clone();
                    loc.release.join(&fence_vc);
                }
                self.locs.insert(addr, loc);
            }
            Op::Fence { order } => {
                if is_acq(order) {
                    let pending = std::mem::take(&mut self.pending_acquire[tid]);
                    self.clocks[tid].join(&pending);
                }
                if is_rel(order) {
                    self.release_fence[tid] = self.clocks[tid].clone();
                }
            }
            Op::PlainRead { addr, label } => {
                let mut loc = self.locs.remove(&addr).unwrap_or_default();
                if let Some((wt, wc)) = loc.write {
                    if wt != tid && self.clocks[tid].get(wt) < wc {
                        self.fail(format!(
                            "data race on `{label}`: plain read is concurrent with a plain \
                             write by thread {wt} (no happens-before edge)"
                        ));
                    }
                }
                loc.reads.retain(|&(t, _)| t != tid);
                // The read is this thread's next event (the clock ticks
                // after the op), hence the +1.
                loc.reads.push((tid, self.clocks[tid].get(tid) + 1));
                self.locs.insert(addr, loc);
            }
            Op::PlainWrite { addr, label } => {
                let mut loc = self.locs.remove(&addr).unwrap_or_default();
                if let Some((wt, wc)) = loc.write {
                    if wt != tid && self.clocks[tid].get(wt) < wc {
                        self.fail(format!(
                            "data race on `{label}`: plain write is concurrent with a plain \
                             write by thread {wt} (no happens-before edge)"
                        ));
                    }
                }
                for &(rt, rc) in &loc.reads {
                    if rt != tid && self.clocks[tid].get(rt) < rc {
                        self.fail(format!(
                            "data race on `{label}`: plain write is concurrent with a plain \
                             read by thread {rt} (no happens-before edge)"
                        ));
                    }
                }
                loc.write = Some((tid, self.clocks[tid].get(tid) + 1));
                loc.reads.clear();
                self.locs.insert(addr, loc);
            }
            Op::Yield => {}
        }
    }

    /// Advances the scheduler by one step: decides which thread executes
    /// its next operation. Called by the thread that just completed one.
    fn pick_next(&mut self, from: usize) {
        if self.failure.is_some() || self.live == 0 {
            return;
        }
        self.step += 1;
        if self.step > self.max_steps {
            self.fail(format!(
                "livelock: exceeded {} scheduler steps (a spin loop is not making progress?)",
                self.max_steps
            ));
            return;
        }
        let mut enabled: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            // Only spin-yielded threads are left: revive them (a yield
            // forfeits one step, it does not park the thread).
            for (i, t) in self.threads.iter_mut().enumerate() {
                if matches!(t, TState::Yielded) {
                    *t = TState::Runnable;
                    enabled.push(i);
                }
            }
        }
        if enabled.is_empty() {
            if self.threads.iter().any(|t| matches!(t, TState::Blocked(_))) {
                self.fail("deadlock: every live thread is blocked on a join".to_string());
            }
            return; // everything finished
        }
        let from_enabled = enabled.contains(&from);
        let options: Vec<usize> = if from_enabled {
            let budget_spent = self.preemption_bound.is_some_and(|b| self.preemptions >= b);
            if budget_spent {
                vec![from]
            } else {
                // Current-first so the DFS baseline is "run to completion".
                let mut o = vec![from];
                o.extend(enabled.iter().copied().filter(|&t| t != from));
                o
            }
        } else {
            enabled
        };
        let chosen = if options.len() == 1 {
            options[0]
        } else if let Some(rng) = &mut self.random {
            options[(rng.next() % options.len() as u64) as usize]
        } else if self.sched_pos < self.schedule.len() {
            let choice = &self.schedule[self.sched_pos];
            if choice.options != options {
                self.fail(
                    "nondeterministic model closure: replay diverged from the recorded \
                     schedule (model closures must not depend on time, ambient randomness \
                     or real threads)"
                        .to_string(),
                );
                return;
            }
            let t = choice.options[choice.picked];
            self.sched_pos += 1;
            t
        } else {
            self.schedule.push(Choice { options: options.clone(), picked: 0 });
            self.sched_pos += 1;
            options[0]
        };
        if from_enabled && chosen != from {
            self.preemptions += 1;
        }
        // Yielded threads become candidates again at the following step.
        for t in self.threads.iter_mut() {
            if matches!(t, TState::Yielded) {
                *t = TState::Runnable;
            }
        }
        self.current = chosen;
        self.trace.push(chosen);
    }
}

/// Shared state of one exploration run.
pub(crate) struct Shared {
    lock: Mutex<St>,
    cv: Condvar,
    done: Condvar,
}

/// The sentinel panic payload used to unwind model threads once a bug has
/// been recorded (so they drain instead of reporting secondary failures).
struct ExplorationAbort;

fn lock_st<'a>(m: &'a Mutex<St>) -> MutexGuard<'a, St> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn new(config: &Config, prefix: Vec<Choice>, iteration_seed: u64) -> Self {
        let random = match config.mode {
            Mode::Random { .. } => Some(SplitMix64(iteration_seed)),
            Mode::Exhaustive => None,
        };
        let mut clock0 = VectorClock::new();
        clock0.tick(0);
        Shared {
            lock: Mutex::new(St {
                preemption_bound: config.preemption_bound,
                max_steps: config.max_steps,
                max_threads: config.max_threads,
                random,
                current: 0,
                threads: vec![TState::Runnable],
                clocks: vec![clock0],
                pending_acquire: vec![VectorClock::new()],
                release_fence: vec![VectorClock::new()],
                final_clocks: vec![None],
                joiners: vec![Vec::new()],
                // lint:allow(hash-determinism): address-keyed location table,
                // looked up point-wise only; never iterated toward output.
                locs: HashMap::new(),
                schedule: prefix,
                sched_pos: 0,
                step: 0,
                preemptions: 0,
                live: 1,
                trace: Vec::new(),
                failure: None,
            }),
            cv: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn wait_turn(&self, tid: usize) -> MutexGuard<'_, St> {
        let mut st = lock_st(&self.lock);
        loop {
            if st.failure.is_some() {
                drop(st);
                self.cv.notify_all();
                self.done.notify_all();
                panic::panic_any(ExplorationAbort);
            }
            if st.current == tid {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn wait_turn_allow_failure(&self, tid: usize) -> MutexGuard<'_, St> {
        let mut st = lock_st(&self.lock);
        loop {
            if st.failure.is_some() || st.current == tid {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Executes one instrumented operation under the scheduler.
    fn op<R>(&self, tid: usize, op: Op, f: impl FnOnce() -> R) -> R {
        let mut st = self.wait_turn(tid);
        st.apply_sync(tid, &op);
        if st.failure.is_some() {
            drop(st);
            self.cv.notify_all();
            self.done.notify_all();
            panic::panic_any(ExplorationAbort);
        }
        let result = f();
        st.clocks[tid].tick(tid);
        if matches!(op, Op::Yield) {
            st.threads[tid] = TState::Yielded;
        }
        st.pick_next(tid);
        drop(st);
        self.cv.notify_all();
        result
    }

    /// Registers a child thread (a schedule point for the parent) and
    /// returns its id. The spawn edge parent → child is recorded.
    pub(crate) fn spawn_entry(&self, parent: usize) -> usize {
        let mut st = self.wait_turn(parent);
        let tid = st.threads.len();
        if tid >= st.max_threads {
            let max = st.max_threads;
            st.fail(format!("spawned more than max_threads = {max} model threads"));
            drop(st);
            self.cv.notify_all();
            self.done.notify_all();
            panic::panic_any(ExplorationAbort);
        }
        st.threads.push(TState::Runnable);
        let mut child_clock = st.clocks[parent].clone();
        child_clock.tick(tid);
        st.clocks.push(child_clock);
        st.pending_acquire.push(VectorClock::new());
        st.release_fence.push(VectorClock::new());
        st.final_clocks.push(None);
        st.joiners.push(Vec::new());
        st.live += 1;
        st.clocks[parent].tick(parent);
        st.pick_next(parent);
        drop(st);
        self.cv.notify_all();
        tid
    }

    /// Blocks `me` until `target` finishes, recording the join edge.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut st = self.wait_turn(me);
        if !matches!(st.threads[target], TState::Finished) {
            st.threads[me] = TState::Blocked(target);
            st.joiners[target].push(me);
            st.pick_next(me);
            drop(st);
            self.cv.notify_all();
            st = self.wait_turn(me);
        }
        let final_clock =
            st.final_clocks[target].clone().expect("joined model thread has a final clock");
        st.clocks[me].join(&final_clock);
        st.clocks[me].tick(me);
        st.pick_next(me);
        drop(st);
        self.cv.notify_all();
    }

    /// Marks `tid` finished, wakes its joiners, hands the turn on.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.wait_turn_allow_failure(tid);
        st.threads[tid] = TState::Finished;
        st.live -= 1;
        st.final_clocks[tid] = Some(st.clocks[tid].clone());
        let joiners = std::mem::take(&mut st.joiners[tid]);
        for j in joiners {
            st.threads[j] = TState::Runnable;
        }
        st.pick_next(tid);
        drop(st);
        self.cv.notify_all();
        self.done.notify_all();
    }

    /// Records a panic from a model thread as the run's failure (the abort
    /// sentinel used to drain threads after a failure is ignored).
    pub(crate) fn record_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<ExplorationAbort>().is_some() {
            return;
        }
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".to_string());
        let mut st = lock_st(&self.lock);
        st.fail(format!("model thread {tid} panicked: {message}"));
        drop(st);
        self.cv.notify_all();
        self.done.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = lock_st(&self.lock);
        while st.live > 0 {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
    /// Set while this thread belongs to an exploration: its panics are part
    /// of the protocol (assertion = bug, sentinel = drain) and must not spam
    /// stderr through the default hook.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// The exploration context of the calling thread, if any.
pub(crate) fn current_context() -> Option<(Arc<Shared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs the exploration context on a freshly spawned model thread.
pub(crate) fn enter_thread(shared: &Arc<Shared>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(shared), tid)));
    QUIET_PANICS.with(|q| q.set(true));
}

/// Routes an instrumented operation through the active exploration, or runs
/// it directly when no exploration is active (passthrough mode).
pub(crate) fn op_current<R>(op: Op, f: impl FnOnce() -> R) -> R {
    match current_context() {
        None => f(),
        Some((shared, tid)) => shared.op(tid, op, f),
    }
}

/// Silences the default panic hook for threads that are part of an
/// exploration (their panics are recorded and reported by [`explore`]).
/// Installed once per process; panics of ordinary threads are unaffected.
fn install_quiet_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_PANICS.with(|q| q.get()) {
                return;
            }
            previous(info);
        }));
    });
}

fn backtrack(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(mut last) = schedule.pop() {
        if last.picked + 1 < last.options.len() {
            last.picked += 1;
            schedule.push(last);
            return Some(schedule);
        }
    }
    None
}

/// Runs `f` under the schedule explorer and returns what was found. See the
/// module docs; prefer [`check`] in tests that expect a clean pass.
pub fn explore(config: Config, f: impl Fn()) -> Report {
    install_quiet_panic_hook();
    assert!(current_context().is_none(), "explore() cannot be nested inside a model closure");
    let mut prefix: Vec<Choice> = Vec::new();
    let mut schedules = 0usize;
    let mut iteration_seed = match config.mode {
        Mode::Random { seed, .. } => seed,
        Mode::Exhaustive => 0,
    };
    loop {
        if schedules >= config.max_schedules {
            return Report { schedules, failure: None, complete: false };
        }
        let shared = Arc::new(Shared::new(&config, std::mem::take(&mut prefix), iteration_seed));
        iteration_seed = iteration_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), 0)));
        let was_quiet = QUIET_PANICS.with(|q| q.replace(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
        if let Err(payload) = outcome {
            shared.record_panic(0, payload);
        }
        shared.finish_thread(0);
        shared.wait_all_finished();
        QUIET_PANICS.with(|q| q.set(was_quiet));
        CURRENT.with(|c| *c.borrow_mut() = None);
        schedules += 1;
        let (failure, schedule, trace) = {
            let mut st = lock_st(&shared.lock);
            (st.failure.take(), std::mem::take(&mut st.schedule), std::mem::take(&mut st.trace))
        };
        if let Some(message) = failure {
            return Report {
                schedules,
                failure: Some(Failure { message, schedule: trace }),
                complete: false,
            };
        }
        match config.mode {
            Mode::Random { iterations, .. } => {
                if schedules >= iterations {
                    return Report { schedules, failure: None, complete: false };
                }
            }
            Mode::Exhaustive => match backtrack(schedule) {
                Some(next_prefix) => prefix = next_prefix,
                None => return Report { schedules, failure: None, complete: true },
            },
        }
    }
}

/// [`explore`], panicking with the failing schedule if a bug is found. The
/// assertion style for "this protocol is correct" model tests.
pub fn check(config: Config, f: impl Fn()) {
    let report = explore(config, f);
    if let Some(failure) = report.failure {
        panic!(
            "model checking failed after {} schedule(s): {}\nschedule (thread per step): {:?}",
            report.schedules, failure.message, failure.schedule
        );
    }
}
