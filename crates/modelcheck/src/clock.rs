//! Vector clocks for the happens-before relation.

/// A vector clock: component `t` is the number of events of thread `t`
/// known to happen-before the clock's owner. Clocks grow lazily, so a
/// missing component reads as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VectorClock {
    components: Vec<u32>,
}

impl VectorClock {
    /// The zero clock (happens-before everything).
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Component for thread `tid` (0 when never touched).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.components.get(tid).copied().unwrap_or(0)
    }

    /// Advances thread `tid`'s own component by one event.
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.components.len() <= tid {
            self.components.resize(tid + 1, 0);
        }
        self.components[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` knows everything `other` knew.
    pub(crate) fn join(&mut self, other: &VectorClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (mine, theirs) in self.components.iter_mut().zip(&other.components) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_and_get() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 0);
        assert_eq!(b.get(2), 1);
        assert_eq!(b.get(9), 0);
        assert_eq!(std::mem::take(&mut b).get(0), 2);
        assert_eq!(b.get(0), 0);
    }
}
