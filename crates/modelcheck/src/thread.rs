//! Model `spawn`/`join` with happens-before edges.
//!
//! Usable only inside an [`crate::explore`] closure (ordinary code keeps
//! using `std::thread`; nothing in the repo routes thread creation through
//! this module outside model tests). Spawn publishes the parent's clock to
//! the child; join publishes the child's final clock to the joiner — the
//! same edges `std::thread` guarantees.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rt;

/// Handle to a model thread; see [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread running `f` under the active exploration's
/// scheduler. Panics if called outside [`crate::explore`].
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (shared, parent) = rt::current_context()
        .expect("cldiam_modelcheck::thread::spawn called outside an explore() closure");
    let tid = shared.spawn_entry(parent);
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            rt::enter_thread(&shared, tid);
            match panic::catch_unwind(AssertUnwindSafe(f)) {
                Ok(value) => {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                }
                Err(payload) => shared.record_panic(tid, payload),
            }
            shared.finish_thread(tid);
        })
        .expect("failed to spawn a model OS thread");
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Unlike
    /// `std::thread`, a panicking model thread fails the whole exploration
    /// (there is no `Err` arm to observe), so this returns `T` directly.
    pub fn join(self) -> T {
        let (shared, me) =
            rt::current_context().expect("JoinHandle::join called outside an explore() closure");
        shared.join_thread(me, self.tid);
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread finished without storing a result")
    }
}
