//! Drop-in shims for `std::sync::atomic`.
//!
//! Each shim wraps the real std atomic and forwards every operation through
//! [`crate::rt`]: outside an exploration that is a direct passthrough (the
//! closure runs immediately), inside an exploration it is a schedule point
//! and a happens-before event. Code under test switches imports behind the
//! `model-check` feature:
//!
//! ```ignore
//! #[cfg(not(feature = "model-check"))]
//! use std::sync::atomic::{fence, AtomicU64, Ordering};
//! #[cfg(feature = "model-check")]
//! use cldiam_modelcheck::sync::atomic::{fence, AtomicU64, Ordering};
//! ```
//!
//! Modeling notes:
//!
//! * The serialized scheduler makes every execution sequentially
//!   consistent; *weak-memory effects are modeled in the race detector*,
//!   not in the values returned. A relaxed publish therefore returns the
//!   "right" value but still fails the exploration if a
//!   [`crate::cell::TrackedCell`] access depends on it without a
//!   happens-before edge.
//! * `compare_exchange_weak` never fails spuriously under the model; both
//!   `compare_exchange` variants count as an RMW with the *success*
//!   ordering for happens-before purposes (an over-approximation on the
//!   failure path that errs toward missing edges, i.e. toward reporting
//!   races).

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::{self, Op};

    /// Shimmed `std::sync::atomic::fence`.
    pub fn fence(order: Ordering) {
        rt::op_current(Op::Fence { order }, || std::sync::atomic::fence(order));
    }

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            /// Shimmed integer atomic; see the module docs.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$name,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(value: $ty) -> Self {
                    Self { inner: std::sync::atomic::$name::new(value) }
                }

                #[inline]
                fn addr(&self) -> usize {
                    self as *const Self as usize
                }

                /// Shimmed `load`.
                pub fn load(&self, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicLoad { addr: self.addr(), order }, || {
                        self.inner.load(order)
                    })
                }

                /// Shimmed `store`.
                pub fn store(&self, value: $ty, order: Ordering) {
                    rt::op_current(Op::AtomicStore { addr: self.addr(), order }, || {
                        self.inner.store(value, order)
                    })
                }

                /// Shimmed `swap`.
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.swap(value, order)
                    })
                }

                /// Shimmed `compare_exchange` (HB-modeled with the success
                /// ordering; see the module docs).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order: success }, || {
                        self.inner.compare_exchange(current, new, success, failure)
                    })
                }

                /// Shimmed `compare_exchange_weak` (never fails spuriously
                /// under the model).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Shimmed `fetch_add`.
                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_add(value, order)
                    })
                }

                /// Shimmed `fetch_sub`.
                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_sub(value, order)
                    })
                }

                /// Shimmed `fetch_min`.
                pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_min(value, order)
                    })
                }

                /// Shimmed `fetch_max`.
                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_max(value, order)
                    })
                }

                /// Shimmed `fetch_or`.
                pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_or(value, order)
                    })
                }

                /// Shimmed `fetch_and`.
                pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                    rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                        self.inner.fetch_and(value, order)
                    })
                }

                /// Consumes the atomic, returning the inner value (not a
                /// schedule point: requires exclusive ownership).
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicI64, i64);

    /// Shimmed `AtomicBool`; see the module docs.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(value: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(value) }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        /// Shimmed `load`.
        pub fn load(&self, order: Ordering) -> bool {
            rt::op_current(Op::AtomicLoad { addr: self.addr(), order }, || self.inner.load(order))
        }

        /// Shimmed `store`.
        pub fn store(&self, value: bool, order: Ordering) {
            rt::op_current(Op::AtomicStore { addr: self.addr(), order }, || {
                self.inner.store(value, order)
            })
        }

        /// Shimmed `swap`.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                self.inner.swap(value, order)
            })
        }

        /// Shimmed `compare_exchange` (HB-modeled with the success
        /// ordering; see the module docs).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::op_current(Op::AtomicRmw { addr: self.addr(), order: success }, || {
                self.inner.compare_exchange(current, new, success, failure)
            })
        }

        /// Shimmed `fetch_or`.
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            rt::op_current(Op::AtomicRmw { addr: self.addr(), order }, || {
                self.inner.fetch_or(value, order)
            })
        }

        /// Consumes the atomic, returning the inner value (not a schedule
        /// point: requires exclusive ownership).
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }
}
