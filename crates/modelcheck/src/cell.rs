//! Plain (non-atomic) shared data under race detection.

#![allow(unsafe_code)] // the one module of this crate that needs it; each site carries a SAFETY comment

use std::cell::UnsafeCell;

use crate::rt::{self, Op};

/// A cell of plain data shared between model threads: the modeled analogue
/// of an ordinary field that the code under test protects with *protocol*
/// rather than with atomics (a message payload published via a flag, the
/// value slots of a seqlock, a chunk of work owned by whoever claimed it).
///
/// Every [`get`](TrackedCell::get) / [`set`](TrackedCell::set) is reported
/// to the race detector as a plain read/write: two accesses from different
/// threads, at least one a write, with no happens-before edge between them
/// fail the exploration with a `data race on \`<label>\`` diagnostic. The
/// label names the cell in diagnostics.
///
/// `T: Copy` keeps accesses to plain value moves, mirroring the word-sized
/// fields the real protocols guard.
#[derive(Debug)]
pub struct TrackedCell<T: Copy> {
    label: &'static str,
    value: UnsafeCell<T>,
}

// SAFETY: `TrackedCell` is explicitly a *model* of unsynchronized shared
// data. Soundness of handing `&self` across threads comes from the
// exploration runtime: every access goes through a schedule point, so at
// most one thread touches `value` at any instant (threads are serialized),
// and the race detector reports — rather than suffers — the schedules in
// which the accesses would be unsynchronized on real hardware.
unsafe impl<T: Copy + Send> Sync for TrackedCell<T> {}

impl<T: Copy> TrackedCell<T> {
    /// Creates a cell; `label` appears in race diagnostics.
    pub const fn new(label: &'static str, value: T) -> Self {
        Self { label, value: UnsafeCell::new(value) }
    }

    #[inline]
    fn addr(&self) -> usize {
        self.value.get() as usize
    }

    /// Reads the value (a plain-read event for the race detector).
    pub fn get(&self) -> T {
        rt::op_current(Op::PlainRead { addr: self.addr(), label: self.label }, || {
            // SAFETY: inside an exploration the scheduler serializes all
            // model threads, so no other thread is mid-access; outside an
            // exploration the cell must only be used single-threaded, which
            // the `Sync` bound's documentation makes the caller's contract.
            unsafe { *self.value.get() }
        })
    }

    /// Writes the value (a plain-write event for the race detector).
    pub fn set(&self, value: T) {
        rt::op_current(Op::PlainWrite { addr: self.addr(), label: self.label }, || {
            // SAFETY: as in `get` — serialized under the exploration
            // scheduler, single-threaded otherwise.
            unsafe { *self.value.get() = value }
        })
    }
}
