//! Shimmed `std::hint` for spin loops.

use crate::rt::{self, Op};

/// Shimmed `std::hint::spin_loop`. Under the model this is a *yield*
/// schedule point: the spinning thread forfeits the next step so another
/// runnable thread makes progress — without it, a reader spinning on a
/// seqlock would monopolize the serialized scheduler forever. A protocol
/// that spins without ever being released still fails the exploration via
/// the per-run step cap (reported as a livelock).
pub fn spin_loop() {
    rt::op_current(Op::Yield, std::hint::spin_loop);
}
