//! A loom-lite schedule-exploring model checker for the workspace's
//! lock-free primitives.
//!
//! Every correctness claim the reproduction makes — bit-identical pipelines
//! at any thread count, scheduling-independent `StepStats` counters,
//! crash-safe snapshots — ultimately rests on a handful of hand-rolled
//! concurrent protocols: the seqlock fetch-min behind Δ-growing
//! (`cldiam_graph::atomic::SeqMinCells`), the single-word fetch-min behind
//! Δ-stepping (`MinDistCells`), and the chunk-claim/steal protocol of the
//! vendored executor. This crate *verifies* those protocols instead of
//! merely exercising them:
//!
//! * [`sync::atomic`] — drop-in shims for `std::sync::atomic` types. Outside
//!   an exploration they delegate straight to the real atomics (zero
//!   behavioural change); inside [`explore`] every operation becomes a
//!   *schedule point* where a deterministic scheduler decides which thread
//!   runs next.
//! * [`thread`] — model `spawn`/`join` with the matching happens-before
//!   edges.
//! * [`cell::TrackedCell`] — plain (non-atomic) shared data whose accesses
//!   are checked for data races by a vector-clock detector: two accesses to
//!   the same cell, at least one a write, with no happens-before edge
//!   between them, fail the exploration. Happens-before is derived from the
//!   memory orderings the code under test actually uses (acquire loads,
//!   release stores, fences, RMW release sequences, spawn/join) — so a
//!   dropped fence or a relaxed publish is *caught*, even though the
//!   serialized execution itself is sequentially consistent.
//! * [`explore`] / [`check`] — the drivers: bounded-exhaustive DFS over
//!   thread interleavings (optionally preemption-bounded, CHESS-style) for
//!   2–3 threads, and seeded random schedules for more.
//!
//! Behind the `model-check` feature, `cldiam_graph::atomic`,
//! `cldiam_core::atomic_state` and the vendored rayon chunk-claim protocol
//! route their atomics through these shims, so the *real* primitives — not
//! transcriptions of them — run under the explorer. The mutation suite in
//! `tests/mutants.rs` pins the checker's teeth: deliberately broken protocol
//! variants (lost-update fetch-min, skipped seqlock sequence bump,
//! non-atomic publish, relaxed completion counter, double chunk claim) must
//! all be caught.
//!
//! # Writing a model test
//!
//! ```
//! use cldiam_modelcheck as mc;
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = mc::explore(mc::Config::exhaustive(), || {
//!     let cell = Arc::new(mc::sync::atomic::AtomicU64::new(u64::MAX));
//!     let threads: Vec<_> = [3u64, 7]
//!         .into_iter()
//!         .map(|d| {
//!             let cell = Arc::clone(&cell);
//!             mc::thread::spawn(move || {
//!                 cell.fetch_min(d, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for t in threads {
//!         t.join();
//!     }
//!     assert_eq!(cell.load(Ordering::Relaxed), 3);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.schedules > 1); // several interleavings were explored
//! ```
//!
//! Model closures must be deterministic (no wall clock, no ambient
//! randomness, no real threads): the explorer replays a schedule prefix to
//! reach each new interleaving and verifies on replay that the execution
//! takes the recorded branch.

#![deny(unsafe_code)]

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

mod clock;
mod rt;

pub use rt::{check, explore, Config, Failure, Mode, Report};
