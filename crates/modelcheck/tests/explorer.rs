//! Explorer semantics: schedule enumeration, happens-before edges from
//! spawn/join and release/acquire, and passthrough behavior outside
//! explorations. The deliberately-broken-protocol catalogue lives in
//! `mutants.rs`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cldiam_modelcheck as mc;
use mc::cell::TrackedCell;
use mc::sync::atomic::{fence, AtomicBool, AtomicU64};

#[test]
fn passthrough_outside_exploration() {
    // Shims must be transparent when no exploration is active: the
    // `model-check` feature can be on for an entire crate without
    // affecting ordinary unit tests.
    let a = AtomicU64::new(10);
    assert_eq!(a.fetch_min(3, Ordering::Relaxed), 10);
    assert_eq!(a.load(Ordering::Relaxed), 3);
    let c = TrackedCell::new("cell", 7u32);
    c.set(8);
    assert_eq!(c.get(), 8);
    fence(Ordering::SeqCst);
}

#[test]
fn single_thread_is_one_schedule() {
    let report = mc::explore(mc::Config::exhaustive(), || {
        let a = AtomicU64::new(0);
        a.store(5, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 5);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert_eq!(report.schedules, 1);
    assert!(report.complete);
}

#[test]
fn fetch_min_is_linearizable() {
    // Two concurrent fetch_min proposals: every interleaving must leave
    // the true minimum — the semantics Δ-stepping's MinDistCells rely on.
    let report = mc::explore(mc::Config::exhaustive(), || {
        let cell = Arc::new(AtomicU64::new(u64::MAX));
        let threads: Vec<_> = [3u64, 7]
            .into_iter()
            .map(|d| {
                let cell = Arc::clone(&cell);
                mc::thread::spawn(move || {
                    cell.fetch_min(d, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 3);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules > 1, "expected several interleavings, got {}", report.schedules);
    assert!(report.complete);
}

#[test]
fn exhaustive_search_finds_lost_update() {
    // Increment written as load+store is not atomic; some interleaving
    // loses an update and the final assertion fires. The explorer must
    // find that interleaving and report the failing schedule.
    let report = mc::explore(mc::Config::exhaustive(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                mc::thread::spawn(move || {
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = report.failure.expect("the lost-update interleaving must be found");
    assert!(failure.message.contains("lost update"), "unexpected failure: {failure:?}");
    assert!(!failure.schedule.is_empty());
}

#[test]
fn random_mode_finds_lost_update() {
    let report = mc::explore(mc::Config::random(500, 0xC1D1A), || {
        let counter = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let counter = Arc::clone(&counter);
                mc::thread::spawn(move || {
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3, "lost update");
    });
    assert!(report.failure.is_some(), "500 random schedules should hit a lost update");
}

#[test]
fn release_acquire_publication_is_clean() {
    // The canonical message-passing idiom: plain payload published via a
    // Release store, consumed after an Acquire load observes the flag.
    let report = mc::explore(mc::Config::exhaustive(), || {
        let data = Arc::new(TrackedCell::new("payload", 0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                data.set(42);
                flag.store(true, Ordering::Release);
            })
        };
        let reader = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                if flag.load(Ordering::Acquire) {
                    assert_eq!(data.get(), 42);
                }
            })
        };
        writer.join();
        reader.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn fence_based_publication_is_clean() {
    // Same protocol, but with relaxed accesses promoted by explicit
    // fences — the shape SeqMinCells::propose uses.
    let report = mc::explore(mc::Config::exhaustive(), || {
        let data = Arc::new(TrackedCell::new("payload", 0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                data.set(42);
                fence(Ordering::Release);
                flag.store(true, Ordering::Relaxed);
            })
        };
        let reader = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                if flag.load(Ordering::Relaxed) {
                    fence(Ordering::Acquire);
                    assert_eq!(data.get(), 42);
                }
            })
        };
        writer.join();
        reader.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn spawn_and_join_are_happens_before_edges() {
    let report = mc::explore(mc::Config::exhaustive(), || {
        let data = Arc::new(TrackedCell::new("inherited", 1u64));
        data.set(2); // pre-spawn write: ordered by the spawn edge
        let child = {
            let data = Arc::clone(&data);
            mc::thread::spawn(move || {
                assert_eq!(data.get(), 2);
                data.set(3);
            })
        };
        child.join();
        assert_eq!(data.get(), 3); // post-join read: ordered by the join edge
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn preemption_bound_shrinks_the_schedule_space() {
    let run = |config: mc::Config| {
        mc::explore(config, || {
            let a = Arc::new(AtomicU64::new(0));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    mc::thread::spawn(move || {
                        a.fetch_add(1, Ordering::Relaxed);
                        a.fetch_add(1, Ordering::Relaxed);
                        a.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for t in threads {
                t.join();
            }
            assert_eq!(a.load(Ordering::Relaxed), 6);
        })
    };
    let full = run(mc::Config::exhaustive());
    let bounded = run(mc::Config::bounded(1));
    assert!(full.failure.is_none() && bounded.failure.is_none());
    assert!(full.complete && bounded.complete);
    assert!(
        bounded.schedules < full.schedules,
        "bound 1 ({}) should explore fewer schedules than unbounded ({})",
        bounded.schedules,
        full.schedules
    );
}

#[test]
fn check_panics_with_the_failing_schedule() {
    let result = std::panic::catch_unwind(|| {
        mc::check(mc::Config::exhaustive(), || {
            let a = Arc::new(AtomicU64::new(0));
            let t = {
                let a = Arc::clone(&a);
                mc::thread::spawn(move || a.store(1, Ordering::Relaxed))
            };
            // Read before the join: some schedule sees 0, some sees 1 —
            // and the assertion pins it to 1.
            let seen = a.load(Ordering::Relaxed);
            t.join();
            assert_eq!(seen, 1);
        });
    });
    let payload = result.expect_err("check() must panic on a caught failure");
    let message = payload.downcast_ref::<String>().expect("panic carries a message");
    assert!(message.contains("model checking failed"), "{message}");
    assert!(message.contains("schedule"), "{message}");
}
