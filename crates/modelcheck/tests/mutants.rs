//! Mutation suite: deliberately broken variants of the repo's concurrency
//! protocols, each of which the model checker MUST catch. These pin the
//! checker's teeth — a detector that stops flagging any of these variants
//! has lost the sensitivity the clean-pass tests in `model_atomic.rs` /
//! `model_claim.rs` (behind the `model-check` feature) depend on.
//!
//! Catalogue (each mutant mirrors a real protocol):
//!
//! | mutant                         | models a bug in                         |
//! |--------------------------------|------------------------------------------|
//! | lost-update fetch-min          | `MinDistCells::propose` CAS loop        |
//! | seqlock skipped sequence bump  | `SeqMinCells::propose` writer           |
//! | seqlock unvalidated read       | `SeqMinCells::read` reader              |
//! | non-atomic (relaxed) publish   | snapshot handoff / executor results     |
//! | dropped release fence          | `SeqMinCells` field publication         |
//! | relaxed completion counter     | executor `Batch::done` tracking         |
//! | double chunk claim             | executor `Batch::next` chunk claiming   |
//! | writer never releases seqlock  | any stuck writer (livelock detection)   |

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cldiam_modelcheck as mc;
use mc::cell::TrackedCell;
use mc::hint::spin_loop;
use mc::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

fn must_catch(report: mc::Report, needle: &str) -> mc::Failure {
    let failure = report.failure.unwrap_or_else(|| {
        panic!("mutant must be caught (explored {} schedules)", report.schedules)
    });
    assert!(
        failure.message.contains(needle),
        "expected a `{needle}` failure, got: {}",
        failure.message
    );
    assert!(!failure.schedule.is_empty(), "failure must carry its schedule");
    failure
}

/// A tiny seqlock over two u32 fields, the shape of `SeqMinCells`: even
/// sequence = consistent, writer takes it odd, bumps by 2 on release;
/// readers validate the sequence around a relaxed field read.
struct SeqPair {
    seq: AtomicU32,
    a: AtomicU32,
    b: AtomicU32,
}

impl SeqPair {
    fn new() -> Self {
        Self { seq: AtomicU32::new(0), a: AtomicU32::new(0), b: AtomicU32::new(0) }
    }

    fn write(&self, value: u32, skip_seq_bump: bool) {
        loop {
            let s = self.seq.load(Ordering::Relaxed);
            if s.is_multiple_of(2)
                && self.seq.compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed).is_ok()
            {
                if skip_seq_bump {
                    // MUTANT: fields change while the lock is released —
                    // readers can validate mid-write and see a torn pair.
                    self.seq.store(s, Ordering::Release);
                    self.a.store(value, Ordering::Relaxed);
                    self.b.store(value, Ordering::Relaxed);
                } else {
                    self.a.store(value, Ordering::Relaxed);
                    self.b.store(value, Ordering::Relaxed);
                    self.seq.store(s + 2, Ordering::Release);
                }
                return;
            }
            spin_loop();
        }
    }

    fn read(&self, validate: bool) -> (u32, u32) {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if !s.is_multiple_of(2) {
                spin_loop();
                continue;
            }
            let a = self.a.load(Ordering::Relaxed);
            let b = self.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if !validate || self.seq.load(Ordering::Relaxed) == s {
                return (a, b);
            }
            spin_loop();
        }
    }
}

fn explore_seqlock(skip_seq_bump: bool, validate: bool) -> mc::Report {
    // The retry loops make unbounded exhaustive search explode (the 250k
    // schedule cap trips after ~30s); a preemption bound of 3 terminates
    // quickly and still covers every schedule the mutants need.
    mc::explore(mc::Config::bounded(3), || {
        let pair = Arc::new(SeqPair::new());
        let writer = {
            let pair = Arc::clone(&pair);
            mc::thread::spawn(move || pair.write(7, skip_seq_bump))
        };
        let reader = {
            let pair = Arc::clone(&pair);
            mc::thread::spawn(move || {
                let (a, b) = pair.read(validate);
                assert_eq!(a, b, "torn seqlock read");
            })
        };
        writer.join();
        reader.join();
    })
}

#[test]
fn correct_seqlock_passes_exhaustively() {
    let report = explore_seqlock(false, true);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "bounded 2-thread seqlock exploration must terminate");
    assert!(report.schedules > 10);
}

#[test]
fn mutant_seqlock_skipped_sequence_bump_is_caught() {
    must_catch(explore_seqlock(true, true), "torn seqlock read");
}

#[test]
fn mutant_seqlock_unvalidated_read_is_caught() {
    must_catch(explore_seqlock(false, false), "torn seqlock read");
}

#[test]
fn mutant_fetch_min_as_load_then_store_is_caught() {
    // MUTANT of the MinDistCells fetch-min: the read-modify-write is split
    // into a load and a store, so a concurrent smaller proposal can be
    // overwritten (lost update).
    let report = mc::explore(mc::Config::exhaustive(), || {
        let cell = Arc::new(AtomicU64::new(u64::MAX));
        let threads: Vec<_> = [3u64, 7]
            .into_iter()
            .map(|d| {
                let cell = Arc::clone(&cell);
                mc::thread::spawn(move || {
                    if cell.load(Ordering::Relaxed) > d {
                        cell.store(d, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 3, "fetch-min lost update");
    });
    must_catch(report, "fetch-min lost update");
}

fn explore_publication(store_order: Ordering, load_order: Ordering) -> mc::Report {
    mc::explore(mc::Config::exhaustive(), || {
        let data = Arc::new(TrackedCell::new("published payload", 0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                data.set(42);
                flag.store(true, store_order);
            })
        };
        let reader = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            mc::thread::spawn(move || {
                if flag.load(load_order) {
                    assert_eq!(data.get(), 42);
                }
            })
        };
        writer.join();
        reader.join();
    })
}

#[test]
fn mutant_non_atomic_publish_is_caught() {
    // MUTANT: the flag is stored relaxed, so observing it gives the reader
    // no claim on the payload write — a data race, even though the
    // serialized model execution happens to read the right value.
    must_catch(explore_publication(Ordering::Relaxed, Ordering::Acquire), "data race");
    must_catch(explore_publication(Ordering::Release, Ordering::Relaxed), "data race");
}

#[test]
fn mutant_dropped_release_fence_is_caught() {
    // The fence-promoted relaxed publication from `SeqMinCells::propose`,
    // with either fence dropped: the happens-before edge disappears.
    let run = |drop_release: bool, drop_acquire: bool| {
        mc::explore(mc::Config::exhaustive(), || {
            let data = Arc::new(TrackedCell::new("fenced payload", 0u64));
            let flag = Arc::new(AtomicBool::new(false));
            let writer = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                mc::thread::spawn(move || {
                    data.set(42);
                    if !drop_release {
                        fence(Ordering::Release);
                    }
                    flag.store(true, Ordering::Relaxed);
                })
            };
            let reader = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                mc::thread::spawn(move || {
                    if flag.load(Ordering::Relaxed) {
                        if !drop_acquire {
                            fence(Ordering::Acquire);
                        }
                        assert_eq!(data.get(), 42);
                    }
                })
            };
            writer.join();
            reader.join();
        })
    };
    must_catch(run(true, false), "data race");
    must_catch(run(false, true), "data race");
}

/// Executor-shaped completion tracking: workers write their result slot
/// and bump `done`; the coordinator spins until all results are in.
fn explore_done_counter(bump_order: Ordering, read_order: Ordering) -> mc::Report {
    mc::explore(mc::Config::bounded(2), || {
        let results: Arc<[TrackedCell<u64>; 2]> =
            Arc::new([TrackedCell::new("result[0]", 0), TrackedCell::new("result[1]", 0)]);
        let done = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let (results, done) = (Arc::clone(&results), Arc::clone(&done));
                mc::thread::spawn(move || {
                    results[i].set(i as u64 + 10);
                    done.fetch_add(1, bump_order);
                })
            })
            .collect();
        // Coordinator: consume as soon as the counter says both finished
        // (before joining — exactly how `Batch::run` consumes results).
        while done.load(read_order) < 2 {
            spin_loop();
        }
        let total = results[0].get() + results[1].get();
        assert_eq!(total, 21);
        for w in workers {
            w.join();
        }
    })
}

#[test]
fn correct_done_counter_passes() {
    let report = explore_done_counter(Ordering::AcqRel, Ordering::Acquire);
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn mutant_relaxed_done_counter_is_caught() {
    // MUTANT: the completion counter is bumped/read relaxed, so the
    // coordinator's result reads race with the workers' writes.
    must_catch(explore_done_counter(Ordering::Relaxed, Ordering::Relaxed), "data race");
}

/// Executor-shaped chunk claiming over 2 chunks by 2 workers: each claimed
/// chunk is written exactly once. With the atomic `fetch_add` claim this
/// is race-free; with a load+store claim two workers can claim the same
/// chunk and their writes race.
fn explore_chunk_claim(split_claim: bool) -> mc::Report {
    mc::explore(mc::Config::exhaustive(), || {
        let chunks: Arc<[TrackedCell<u64>; 2]> =
            Arc::new([TrackedCell::new("chunk[0]", 0), TrackedCell::new("chunk[1]", 0)]);
        let next = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|worker| {
                let (chunks, next) = (Arc::clone(&chunks), Arc::clone(&next));
                mc::thread::spawn(move || loop {
                    let claimed = if split_claim {
                        // MUTANT: claim is load+store, not one RMW — both
                        // workers can claim the same chunk.
                        let i = next.load(Ordering::Relaxed);
                        next.store(i + 1, Ordering::Relaxed);
                        i
                    } else {
                        next.fetch_add(1, Ordering::Relaxed)
                    };
                    if claimed >= 2 {
                        return;
                    }
                    chunks[claimed].set(worker + 1);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert!(chunks[0].get() != 0 && chunks[1].get() != 0, "chunk never processed");
    })
}

#[test]
fn correct_chunk_claim_passes_exhaustively() {
    let report = explore_chunk_claim(false);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn mutant_double_chunk_claim_is_caught() {
    let failure = explore_chunk_claim(true).failure.expect("double claim must be caught");
    // Either symptom convicts the mutant: two unsynchronized writers on
    // one chunk (race) or a chunk skipped because `next` jumped past it.
    assert!(
        failure.message.contains("data race") || failure.message.contains("chunk never processed"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn mutant_stuck_writer_is_reported_as_livelock() {
    // MUTANT: the writer takes the sequence lock and never releases it, so
    // the reader spins forever — the step cap must convert that into a
    // reported livelock rather than a hung test.
    let config = mc::Config { max_steps: 500, ..mc::Config::bounded(1) };
    let report = mc::explore(config, || {
        let seq = Arc::new(AtomicU32::new(0));
        let writer = {
            let seq = Arc::clone(&seq);
            mc::thread::spawn(move || {
                seq.store(1, Ordering::Release); // odd = locked, never bumped back
            })
        };
        let reader = {
            let seq = Arc::clone(&seq);
            mc::thread::spawn(move || {
                while !seq.load(Ordering::Acquire).is_multiple_of(2) {
                    spin_loop();
                }
            })
        };
        writer.join();
        reader.join();
    });
    must_catch(report, "livelock");
}
