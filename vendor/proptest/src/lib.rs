//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the slice of proptest this workspace uses — the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, integer
//! range strategies, tuple strategies, and [`collection::vec`] — driven by a
//! deterministic per-test xoshiro256++ stream.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case simply panics; cases are generated
//!   deterministically (per-test seed ⊕ case index), so re-running the test
//!   reproduces the same failure exactly;
//! * **no persistence files** — determinism comes from seeding each case as
//!   `hash(test name) ⊕ case index`;
//! * `prop_assert!` / `prop_assert_eq!` are hard assertions.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic per-case RNG.

    use rand::SeedableRng;
    pub use rand_xoshiro::Xoshiro256PlusPlus as TestRng;

    /// Subset of proptest's `Config` that the workspace uses.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// FNV-1a, used to derive a per-test seed from the test name.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Deterministic RNG for one test case: seeded from the test name and the
    /// case index, independent of execution order and platform.
    pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
        TestRng::seed_from_u64(fnv1a(test_name) ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns for
        /// it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! `Vec` strategies.

    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "vec strategy: empty size range");
            SizeRange { lo: range.start, hi: range.end }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset upstream proptest accepts that this
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn property(x in 0u32..10, v in collection::vec(0u64..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for __proptest_case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::rng_for_case(stringify!($name), __proptest_case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);
                )+
                $body
            }
        }
    )*};
}

/// Hard assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Hard equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Hard inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(v in collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_dependent_values(pair in (2usize..8).prop_flat_map(|n| {
            collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use rand::Rng;
        let mut a = crate::test_runner::rng_for_case("t", 3);
        let mut b = crate::test_runner::rng_for_case("t", 3);
        assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
    }
}
